"""The ``repro-fuzz`` console entry point: a budgeted counterexample hunt.

Usage::

    repro-fuzz --seed 1 --budget 15 --scale smoke --workers 2 \
               --archive tests/fuzz_corpus

Runs one deterministic campaign (see
:func:`~repro.fuzz.executor.run_campaign`), prints one verdict line per
candidate plus a summary, optionally archives every counterexample found,
and exits 0.  With ``--expect-counterexample`` the exit code is 1 when the
campaign found nothing — the CI smoke job uses this to assert the fuzzer
still finds its pinned failures.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.config import ExperimentScale
from repro.fuzz.adversaries import adversary_kinds
from repro.fuzz.corpus import archive_counterexamples
from repro.fuzz.executor import run_campaign
from repro.fuzz.oracle import FailureThresholds
from repro.obs.telemetry import configure_cli_logging

logger = logging.getLogger("repro.fuzz")

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "benchmark": ExperimentScale.benchmark,
    "paper": ExperimentScale.paper,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="hunt adaptive-load-control failures with adversarial workloads",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed; same seed + budget = same candidates")
    parser.add_argument("--budget", type=int, default=10,
                        help="number of distinct candidates to run (default: 10)")
    parser.add_argument("--scale", default="smoke", choices=sorted(_SCALES),
                        help="experiment scale preset (default: smoke)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0/1 = in-process serial)")
    parser.add_argument("--service", default=None, metavar="HOST:PORT",
                        help="route cells through a running repro-svc control "
                             "address (repeat candidates hit its result cache)")
    parser.add_argument("--kinds", nargs="+", default=None, metavar="KIND",
                        choices=adversary_kinds(),
                        help=f"restrict adversary kinds (default: all of {', '.join(adversary_kinds())})")
    parser.add_argument("--archive", type=Path, default=None, metavar="DIR",
                        help="write every counterexample found to DIR as replayable JSON")
    parser.add_argument("--rescue-fraction", type=float, default=0.35,
                        help="fail a run below this fraction of the analytic peak (default: 0.35)")
    parser.add_argument("--livelock-ratio", type=float, default=3.0,
                        help="fail when displaced > ratio * commits (default: 3)")
    parser.add_argument("--min-commit-rate", type=float, default=0.5,
                        help="fail below this commit rate per simulated second (default: 0.5)")
    parser.add_argument("--expect-counterexample", action="store_true",
                        help="exit 1 if the campaign finds no counterexample")
    parser.add_argument("--quiet", action="store_true",
                        help="log warnings and errors only")
    parser.add_argument("--verbose", action="store_true",
                        help="log debug diagnostics")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one fuzz campaign from the command line."""
    args = _build_parser().parse_args(argv)
    configure_cli_logging(verbose=args.verbose, quiet=args.quiet)
    thresholds = FailureThresholds(
        rescue_fraction=args.rescue_fraction,
        livelock_ratio=args.livelock_ratio,
        min_commit_rate=args.min_commit_rate,
    )
    # progress diagnostics go through logging; the verdict lines, summary
    # and archive paths below are the CLI's contract and stay on stdout
    logger.info("seed=%d budget=%d scale=%s workers=%d service=%s",
                args.seed, args.budget, args.scale, args.workers, args.service)
    report = run_campaign(
        seed=args.seed,
        budget=args.budget,
        scale=_SCALES[args.scale](),
        workers=args.workers,
        thresholds=thresholds,
        kinds=args.kinds,
        service_address=args.service,
    )
    for verdict in report.verdicts:
        status = f"FAIL({','.join(verdict.reasons)})" if verdict.failed else "ok"
        print(f"  {verdict.cell_id:<40} tput={verdict.throughput:8.2f} "
              f"peak-fraction={verdict.throughput_fraction:6.3f} "
              f"[{verdict.reference}] {status}")
    print(f"{report.found} counterexample(s) in {len(report.verdicts)} candidates")
    if args.archive is not None and report.counterexamples:
        paths = archive_counterexamples(report.counterexamples, args.archive)
        for path in paths:
            print(f"archived {path}")
    if args.expect_counterexample and report.found == 0:
        print("expected at least one counterexample, found none", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI convenience
    sys.exit(main())
