"""Executing one experiment cell inside a worker process.

:func:`execute_run_spec` is the single entry point every executor maps over
the cells of a :class:`~repro.runner.specs.SweepSpec`.  It is a module-level
function (so ``multiprocessing`` can pickle it by reference), builds all
stateful objects locally, and returns a :class:`CellResult` whose payload
and metrics are plain picklable data.

The experiment modules are imported lazily inside the function:
``repro.experiments`` delegates sweep execution *to* the runner, so a
module-level import in either direction would be circular.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict

from repro.runner.specs import KIND_STATIONARY, KIND_TRACKING, RunSpec
from repro.sim.random_streams import RandomStreams

#: fraction of the tracking horizon discarded as the start-up transient when
#: computing the cell-level mean_abs_error / throughput_ratio summaries.
#: This is the runner's *standard* window for cross-scenario aggregate
#: comparisons; individual benchmarks may evaluate their own windows (e.g.
#: the sinusoid benchmark uses 0.2) for their specific assertions.
TRACKING_METRICS_TRANSIENT_FRACTION = 0.15


@dataclass
class CellResult:
    """Outcome of one cell run: summary metrics plus the full result object.

    ``metrics`` holds the scalar quantities the replication layer can
    aggregate (mean ± confidence interval); ``payload`` is the full
    :class:`~repro.experiments.stationary.StationaryPoint` or
    :class:`~repro.experiments.dynamic.TrackingResult` for callers that need
    the complete series.
    """

    cell_id: str
    kind: str
    replicate: int
    label: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)
    payload: object = None
    #: name of the scheme-aware analytic reference ("TayModel"/"OccModel");
    #: set only when the spec asked for scheme diagnostics, so the golden
    #: fixtures of cells that never requested it are untouched
    model_reference: str = ""


def replicate_streams(seed: int, replicate: int) -> RandomStreams:
    """The random streams of one replicate of a run.

    Replicate 0 uses the root streams directly, so a single-replicate runner
    cell is bitwise identical to the corresponding direct serial run; higher
    replicates branch off via :meth:`RandomStreams.spawn`.
    """
    streams = RandomStreams(seed)
    if replicate:
        streams = streams.spawn(replicate)
    return streams


def execute_run_spec(spec: RunSpec) -> CellResult:
    """Run one cell and summarise it (the executor-mapped worker function).

    When a telemetry sink is active (:mod:`repro.obs.telemetry`) the call is
    wrapped in a ``cell_execute`` span attributing the cell's wall-clock
    execute time to this worker process; the clock is only read when a sink
    is installed, so untelemetered runs pay a single ``None`` check.
    """
    from repro.obs import telemetry

    sink = telemetry.active_sink()
    if sink is None:
        return _execute_cell(spec)
    started = time.monotonic()
    result = _execute_cell(spec)
    telemetry.emit(
        "cell_execute",
        cell_id=spec.cell_id,
        replicate=spec.replicate,
        kind=spec.kind,
        duration=time.monotonic() - started,
    )
    return result


def _execute_cell(spec: RunSpec) -> CellResult:
    if spec.kind == KIND_STATIONARY:
        return _execute_stationary(spec)
    if spec.kind == KIND_TRACKING:
        return _execute_tracking(spec)
    raise ValueError(f"unknown run kind {spec.kind!r}")


def _execute_stationary(spec: RunSpec) -> CellResult:
    from repro.experiments.stationary import run_stationary_point

    point = run_stationary_point(
        spec.params,
        controller_factory=spec.controller_factory(),
        horizon=spec.scale.stationary_horizon,
        warmup=spec.scale.warmup,
        measurement_interval=spec.scale.measurement_interval,
        streams=replicate_streams(spec.params.seed, spec.replicate),
        workload_classes=spec.workload_classes,
        cc=spec.cc,
        isolation_diagnostics=spec.isolation_diagnostics,
        probes=spec.probes,
        arrivals=spec.arrivals,
    )
    metrics = {
        "throughput": point.throughput,
        "mean_response_time": point.mean_response_time,
        "restart_ratio": point.restart_ratio,
        "mean_concurrency": point.mean_concurrency,
        "cpu_utilisation": point.cpu_utilisation,
        "commits": float(point.commits),
        "final_limit": point.final_limit,
    }
    model_reference = ""
    if spec.scheme_diagnostics:
        from repro.analytic.references import reference_model_name

        # per-reason abort counts: all reasons, so the metric schema of a
        # diagnostics sweep is stable whether or not a reason occurred
        for reason, count in sorted(point.aborts_by_reason.items()):
            metrics[f"aborts_{reason}"] = float(count)
        model_reference = reference_model_name(spec.cc)
    if spec.isolation_diagnostics:
        from repro.cc.history import ANOMALY_KINDS

        # per-kind anomaly counts: all kinds, so the metric schema of an
        # isolation sweep is stable whether or not an anomaly occurred
        for anomaly_kind in ANOMALY_KINDS:
            metrics[f"anomalies_{anomaly_kind}"] = float(
                point.anomalies.get(anomaly_kind, 0))
    if spec.arrivals is not None:
        # SLO metrics only for cells that opted into an arrival model, so
        # the metric schema (and every pre-existing golden) of closed cells
        # is untouched; the per-tenant keys are enumerated from the spec's
        # class names inside run_stationary_point
        metrics["p95_response_time"] = point.p95_response_time
        metrics["p99_response_time"] = point.p99_response_time
        metrics["shed"] = float(point.shed)
        metrics.update(point.tenant_metrics)
    # probe readouts arrive already probe_-prefixed with a schema that is a
    # pure function of the enabled probes, so they fold through the
    # replicate aggregation like any other metric
    metrics.update(point.probe_metrics)
    return CellResult(
        cell_id=spec.cell_id,
        kind=spec.kind,
        replicate=spec.replicate,
        label=spec.label,
        metrics=metrics,
        payload=point,
        model_reference=model_reference,
    )


def _execute_tracking(spec: RunSpec) -> CellResult:
    from repro.experiments.dynamic import run_tracking_experiment
    from repro.experiments.tracking import compute_tracking_metrics

    # the policy objects accumulate run state; copying per execution keeps
    # cells independent however often a process executes one (serial
    # executor, replicate expansion, multiprocessing worker reuse)
    displacement = copy.deepcopy(spec.displacement)
    result = run_tracking_experiment(
        spec.build_controller(),
        spec.scenario,
        base_params=spec.params,
        scale=spec.scale,
        displacement=displacement,
        interval_tuner=copy.deepcopy(spec.interval_tuner),
        streams=replicate_streams(spec.params.seed, spec.replicate),
        cc=spec.cc,
    )
    horizon = spec.scale.tracking_horizon
    metrics = {
        "throughput": result.total_commits / horizon if horizon > 0 else 0.0,
        "mean_response_time": result.mean_response_time,
        "restart_ratio": result.restart_ratio,
        "commits": float(result.total_commits),
    }
    if displacement is not None:
        # only cells that carry a policy report this, so the metrics of all
        # displacement-free cells (and their goldens) are unchanged
        metrics["displaced"] = float(displacement.total_displaced)
    try:
        tracking = compute_tracking_metrics(
            result,
            evaluate_after=TRACKING_METRICS_TRANSIENT_FRACTION * spec.scale.tracking_horizon,
        )
        metrics["mean_abs_error"] = tracking.mean_absolute_error
        metrics["throughput_ratio"] = tracking.throughput_ratio
    except ValueError:
        # degenerate traces (no samples after the transient) still produce a
        # usable cell; only the tracking-error metrics are omitted
        pass
    return CellResult(
        cell_id=spec.cell_id,
        kind=spec.kind,
        replicate=spec.replicate,
        label=spec.label,
        metrics=metrics,
        payload=result,
    )
