"""Unit tests of the snapshot-isolation scheme (:mod:`repro.cc.mvcc`).

The closed-system behaviour of the scheme (conservation, rise-then-fall,
certification at its declared level) is covered by the cross-scheme suites;
these tests pin the mechanism itself: snapshot visibility, non-blocking
reads, first-committer-wins validation, and bounded version storage.
"""

import pytest

from repro.cc import AbortReason, CCSpec, SnapshotIsolation
from repro.sim.engine import Simulator
from repro.tp.transaction import Transaction, TransactionClass


def txn_record(txn_id, items=(), writes=()):
    """A bare transaction record for driving the scheme by hand."""
    items = tuple(items)
    flags = tuple(item in writes for item in items)
    return Transaction(
        txn_id=txn_id, terminal_id=0,
        txn_class=(TransactionClass.UPDATER if any(flags)
                   else TransactionClass.QUERY),
        items=items, write_flags=flags)


@pytest.fixture
def si():
    return SnapshotIsolation(Simulator())


class TestRegistryIntegration:
    def test_registry_builds_the_scheme(self):
        sim = Simulator()
        scheme = CCSpec.make("snapshot_isolation").build(sim)
        assert isinstance(scheme, SnapshotIsolation)
        assert scheme.multiversion is True


class TestSnapshotVisibility:
    def test_reader_sees_the_version_of_its_snapshot(self, si):
        writer = txn_record(1, items=[5], writes=[5])
        si.begin(writer)
        si.access(writer, 5, is_write=True)
        assert si.try_commit(writer)
        si.finish(writer)

        late = txn_record(2, items=[5])
        si.begin(late)
        si.access(late, 5, is_write=False)
        assert si.observed_version(late, 5) == 1

    def test_old_snapshot_keeps_seeing_the_old_version(self, si):
        early = txn_record(2, items=[5])
        si.begin(early)  # snapshot taken BEFORE the writer commits

        writer = txn_record(1, items=[5], writes=[5])
        si.begin(writer)
        si.access(writer, 5, is_write=True)
        assert si.try_commit(writer)
        si.finish(writer)

        si.access(early, 5, is_write=False)
        assert si.observed_version(early, 5) is None  # the initial version

    def test_reads_never_block(self, si):
        writer = txn_record(1, items=[5], writes=[5])
        si.begin(writer)
        si.access(writer, 5, is_write=True)  # uncommitted write in flight
        reader = txn_record(2, items=[5])
        si.begin(reader)
        assert si.access(reader, 5, is_write=False) is None
        assert si.access(writer, 5, is_write=True) is None

    def test_versions_read_reset_per_execution(self, si):
        txn = txn_record(1, items=[5])
        si.begin(txn)
        si.access(txn, 5, is_write=False)
        assert 5 in txn.cc_state["versions_read"]
        si.abort(txn, AbortReason.CERTIFICATION)
        si.begin(txn)  # the restart takes a fresh, empty snapshot state
        assert txn.cc_state["versions_read"] == {}


class TestFirstCommitterWins:
    def test_concurrent_writer_of_same_granule_fails_certification(self, si):
        first = txn_record(1, items=[5], writes=[5])
        second = txn_record(2, items=[5], writes=[5])
        si.begin(first)
        si.begin(second)
        si.access(first, 5, is_write=True)
        si.access(second, 5, is_write=True)
        assert si.try_commit(first)
        si.finish(first)

        assert not si.try_commit(second)
        assert second.last_conflicts == 1
        assert si.certifications == 2
        assert si.certification_failures == 1
        assert si.failure_fraction == pytest.approx(0.5)

    def test_disjoint_write_sets_both_commit(self, si):
        # the write-skew shape: each reads what the other writes — SI
        # certifies both because first-committer-wins only compares writes
        left = txn_record(1, items=[5, 6], writes=[6])
        right = txn_record(2, items=[5, 6], writes=[5])
        si.begin(left)
        si.begin(right)
        for txn, read, write in ((left, 5, 6), (right, 6, 5)):
            si.access(txn, read, is_write=False)
            si.access(txn, write, is_write=True)
        assert si.try_commit(left)
        si.finish(left)
        assert si.try_commit(right)
        si.finish(right)
        assert si.certification_failures == 0

    def test_certifying_without_begin_fails_loudly(self, si):
        orphan = txn_record(9, items=[1], writes=[1])
        with pytest.raises(RuntimeError, match="without begin"):
            si.try_commit(orphan)


class TestLifecycleAndGarbageCollection:
    def test_active_count_tracks_begin_finish_abort(self, si):
        a, b = txn_record(1, items=[5], writes=[5]), txn_record(2, items=[6])
        si.begin(a)
        si.begin(b)
        assert si.active_count() == 2
        si.abort(b, AbortReason.DISPLACEMENT)
        assert si.active_count() == 1
        assert si.try_commit(a)
        si.finish(a)
        assert si.active_count() == 0

    def test_version_store_stays_bounded_without_old_snapshots(self, si):
        for txn_id in range(1, 50):
            txn = txn_record(txn_id, items=[5], writes=[5])
            si.begin(txn)
            si.access(txn, 5, is_write=True)
            assert si.try_commit(txn)
            si.finish(txn)
        # no active snapshot pins history: only the latest version survives
        assert si.version_count(5) == 1

    def test_gc_never_collects_what_an_active_snapshot_sees(self, si):
        pinner = txn_record(99, items=[5])
        si.begin(pinner)  # snapshot 0 stays active throughout
        for txn_id in range(1, 10):
            txn = txn_record(txn_id, items=[5], writes=[5])
            si.begin(txn)
            si.access(txn, 5, is_write=True)
            assert si.try_commit(txn)
            si.finish(txn)
        assert si.version_count(5) == 9  # all pinned by snapshot 0
        si.access(pinner, 5, is_write=False)
        assert si.observed_version(pinner, 5) is None  # still the initial one
        si.finish(pinner)
        # releasing the snapshot lets the next GC pass collapse the chain
        closer = txn_record(100, items=[5], writes=[5])
        si.begin(closer)
        si.access(closer, 5, is_write=True)
        assert si.try_commit(closer)
        si.finish(closer)
        assert si.version_count(5) == 1

    def test_reset_forgets_versions_snapshots_and_statistics(self, si):
        txn = txn_record(1, items=[5], writes=[5])
        si.begin(txn)
        si.access(txn, 5, is_write=True)
        assert si.try_commit(txn)
        si.finish(txn)
        si.begin(txn_record(2, items=[5]))
        si.reset()
        assert si.version_count(5) == 0
        assert si.active_count() == 0
        assert si.certifications == 0
        assert si.failure_fraction == 0.0
