"""The concurrency control registry: schemes as picklable sweep data.

The paper claims its load-control results hold across concurrency control
classes (blocking and non-blocking, Section 1); to *test* that claim the
scheme must be a first-class dimension of the experiment grid.  Like
controllers (:class:`~repro.runner.specs.ControllerSpec`), stateful CC
objects cannot travel to worker processes — a :class:`CCSpec` names a
scheme from this registry plus its constructor options, and the scheme
instance is built inside the worker that runs the cell, bound to that
cell's simulator.

Six schemes are registered out of the box, spanning the two *families* the
paper's Section 1 distinguishes plus the multiversion family production
engines actually run:

* ``timestamp_cert`` (optimistic) — the paper's backward-oriented timestamp
  certification (:class:`~repro.cc.timestamp_cert.TimestampCertification`),
  the default of every run that does not name a scheme;
* ``occ_forward`` (optimistic) — optimistic with *forward* validation
  against the read sets of running transactions
  (:class:`~repro.cc.occ_forward.OccForwardValidation`);
* ``two_phase_locking`` (locking) — strict 2PL with waits-for deadlock
  detection (:class:`~repro.cc.two_phase_locking.TwoPhaseLocking`);
  accepts ``victim_policy`` (``youngest`` / ``oldest`` / ``fewest_locks``);
* ``wound_wait`` (locking) — deadlock-avoiding timestamp-priority 2PL:
  older requesters wound younger lock owners
  (:class:`~repro.cc.two_phase_locking.WoundWaitLocking`);
* ``wait_die`` (locking) — deadlock-avoiding timestamp-priority 2PL:
  younger requesters abort themselves instead of waiting
  (:class:`~repro.cc.two_phase_locking.WaitDieLocking`);
* ``snapshot_isolation`` (multiversion) — versioned store, snapshot reads
  that never block, first-committer-wins write validation
  (:class:`~repro.cc.mvcc.SnapshotIsolation`).

The family (:func:`cc_family`) is what the analytic layer keys on: locking
schemes are referenced against Tay's mean-value blocking model, optimistic
and multiversion schemes against the OCC fixed point (see
:func:`repro.analytic.references.reference_model_for`).

Every kind also declares an **isolation level** (:func:`cc_level`): the
strongest guarantee the isolation oracle
(:func:`repro.cc.history.check_isolation`) certifies its histories
against.  The five single-version schemes declare ``"serializable"``;
``snapshot_isolation`` declares ``"snapshot_isolation"`` — write skew is
admitted, anything weaker is a bug.

``register_cc`` extends the registry the same way ``register_controller``
and ``register_scenario`` do; pass ``family="locking"`` for blocking
schemes or ``family="multiversion"`` for snapshot schemes (the default,
``"optimistic"``, keeps the OCC reference), and ``level=`` for schemes
that guarantee less than serializability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.cc.base import ConcurrencyControl
from repro.cc.history import ISOLATION_LEVELS
from repro.cc.mvcc import SnapshotIsolation
from repro.cc.occ_forward import OccForwardValidation
from repro.cc.timestamp_cert import TimestampCertification
from repro.cc.two_phase_locking import (
    TwoPhaseLocking,
    WaitDieLocking,
    WoundWaitLocking,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Simulator

#: a CC builder receives the cell's simulator plus the spec's options
CCBuilder = Callable[..., ConcurrencyControl]

#: the scheme families the analytic references distinguish
CC_FAMILIES = ("optimistic", "locking", "multiversion")

_CC_BUILDERS: Dict[str, CCBuilder] = {}
_CC_FAMILIES: Dict[str, str] = {}
_CC_LEVELS: Dict[str, str] = {}


def register_cc(kind: str, family: str = "optimistic",
                level: str = "serializable") -> Callable[[CCBuilder], CCBuilder]:
    """Register a concurrency control builder under ``kind`` (decorator).

    ``family`` classifies the scheme for the analytic layer: ``"locking"``
    schemes are compared against Tay's blocking model, ``"optimistic"``
    and ``"multiversion"`` ones against the OCC fixed point.  ``level``
    declares the isolation level the scheme guarantees (one of
    :data:`repro.cc.history.ISOLATION_LEVELS`); the isolation oracle
    certifies every registered scheme's histories against it.
    """
    if family not in CC_FAMILIES:
        raise ValueError(
            f"unknown cc family {family!r}; expected one of {CC_FAMILIES}")
    if level not in ISOLATION_LEVELS:
        raise ValueError(
            f"unknown isolation level {level!r}; "
            f"expected one of {ISOLATION_LEVELS}")

    def decorator(builder: CCBuilder) -> CCBuilder:
        if kind in _CC_BUILDERS:
            raise ValueError(f"cc kind {kind!r} is already registered")
        _CC_BUILDERS[kind] = builder
        _CC_FAMILIES[kind] = family
        _CC_LEVELS[kind] = level
        return builder

    return decorator


def cc_kinds() -> Tuple[str, ...]:
    """All registered concurrency control kinds."""
    return tuple(sorted(_CC_BUILDERS))


def cc_family(kind: str) -> str:
    """The family (``"locking"`` / ``"optimistic"`` / ``"multiversion"``)."""
    family = _CC_FAMILIES.get(kind)
    if family is None:
        raise KeyError(
            f"unknown cc kind {kind!r}; available: {', '.join(cc_kinds())}")
    return family


def cc_level(kind: str) -> str:
    """The isolation level a registered kind declares."""
    level = _CC_LEVELS.get(kind)
    if level is None:
        raise KeyError(
            f"unknown cc kind {kind!r}; available: {', '.join(cc_kinds())}")
    return level


def declared_level(cc: Optional[object]) -> str:
    """The isolation level a run's ``cc`` field declares.

    ``None`` is the system default (timestamp certification) and ad-hoc
    factories are presumed serializable — the strictest reading, so the
    oracle errs on the side of rejecting, never of excusing.
    """
    if isinstance(cc, CCSpec):
        return cc.level
    return "serializable"


@dataclass(frozen=True)
class CCSpec:
    """A picklable description of a CC scheme: registry kind + options.

    ``options`` is stored as a sorted tuple of ``(name, value)`` pairs so
    specs are hashable and two specs with the same options compare equal
    regardless of keyword order — the same contract as
    :class:`~repro.runner.specs.ControllerSpec`.  Use :meth:`make` to build
    one from keyword arguments.
    """

    kind: str
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **options) -> "CCSpec":
        """Build a spec from keyword options."""
        return cls(kind=kind, options=tuple(sorted(options.items())))

    @property
    def level(self) -> str:
        """The isolation level the named kind declares (registry metadata)."""
        return cc_level(self.kind)

    def build(self, sim: "Simulator") -> ConcurrencyControl:
        """Construct a fresh scheme instance bound to one run's simulator."""
        builder = _CC_BUILDERS.get(self.kind)
        if builder is None:
            raise KeyError(
                f"unknown cc kind {self.kind!r}; "
                f"available: {', '.join(cc_kinds())}"
            )
        return builder(sim, **dict(self.options))


def resolve_cc(cc: Optional[object], sim: "Simulator") -> Optional[ConcurrencyControl]:
    """Build the scheme instance of one run (``None`` = the system default).

    ``cc`` may be ``None``, a :class:`CCSpec`, or a picklable callable
    ``factory(sim) -> ConcurrencyControl`` (lambdas/closures work with the
    serial executor only).  Ready instances are rejected: a scheme carries
    per-run state (lock tables, committed timestamps), so sharing one
    object across cells or replicates would corrupt the runs.
    """
    if cc is None:
        return None
    if isinstance(cc, CCSpec):
        return cc.build(sim)
    if isinstance(cc, ConcurrencyControl):
        raise TypeError(
            "pass a CCSpec or a factory, not a ConcurrencyControl instance: "
            "schemes hold per-run state and must be built fresh inside each run"
        )
    if callable(cc):
        return cc(sim)
    raise TypeError(
        f"cc must be None, a CCSpec or a callable, got {type(cc).__name__}"
    )


# ----------------------------------------------------------------------
# built-in schemes
# ----------------------------------------------------------------------
@register_cc("timestamp_cert", family="optimistic")
def _build_timestamp_cert(sim: "Simulator", **options) -> ConcurrencyControl:
    return TimestampCertification(sim, **options)


@register_cc("occ_forward", family="optimistic")
def _build_occ_forward(sim: "Simulator", **options) -> ConcurrencyControl:
    return OccForwardValidation(sim, **options)


@register_cc("two_phase_locking", family="locking")
def _build_two_phase_locking(sim: "Simulator", **options) -> ConcurrencyControl:
    return TwoPhaseLocking(sim, **options)


@register_cc("wound_wait", family="locking")
def _build_wound_wait(sim: "Simulator", **options) -> ConcurrencyControl:
    return WoundWaitLocking(sim, **options)


@register_cc("wait_die", family="locking")
def _build_wait_die(sim: "Simulator", **options) -> ConcurrencyControl:
    return WaitDieLocking(sim, **options)


@register_cc("snapshot_isolation", family="multiversion",
             level="snapshot_isolation")
def _build_snapshot_isolation(sim: "Simulator", **options) -> ConcurrencyControl:
    return SnapshotIsolation(sim, **options)
