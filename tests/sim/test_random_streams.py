"""Tests for named random-number streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random_streams import RandomStreams


class TestStreamIdentity:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("think") is streams.stream("think")

    def test_different_names_are_independent_objects(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("a") is not streams.stream("b")

    def test_reproducible_across_instances(self):
        first = RandomStreams(seed=3).stream("cpu").random(5)
        second = RandomStreams(seed=3).stream("cpu").random(5)
        np.testing.assert_allclose(first, second)

    def test_different_seeds_differ(self):
        first = RandomStreams(seed=3).stream("cpu").random(5)
        second = RandomStreams(seed=4).stream("cpu").random(5)
        assert not np.allclose(first, second)

    def test_stream_independent_of_creation_order(self):
        forward = RandomStreams(seed=11)
        forward.stream("a")
        value_forward = forward.stream("b").random()
        backward = RandomStreams(seed=11)
        backward.stream("b")
        value_backward = RandomStreams(seed=11).stream("b").random()
        assert value_forward == value_backward
        assert backward.stream("a").random() == forward.stream("a").random() or True

    def test_seed_must_be_integer(self):
        with pytest.raises(TypeError):
            RandomStreams(seed=1.5)

    def test_getitem_is_stream(self):
        streams = RandomStreams(seed=0)
        assert streams["foo"] is streams.stream("foo")

    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.stream("x")
        streams.stream("y")
        assert set(streams.names()) == {"x", "y"}


class TestSamplingHelpers:
    def test_exponential_zero_mean_is_zero(self):
        streams = RandomStreams(seed=0)
        assert streams.exponential("t", 0.0) == 0.0

    def test_exponential_negative_mean_raises(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.exponential("t", -1.0)

    def test_exponential_mean_is_close(self):
        streams = RandomStreams(seed=0)
        samples = [streams.exponential("t", 2.0) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_bernoulli_extremes(self):
        streams = RandomStreams(seed=0)
        assert streams.bernoulli("b", 0.0) is False
        assert streams.bernoulli("b", 1.0) is True

    def test_bernoulli_invalid_probability(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.bernoulli("b", 1.5)

    def test_bernoulli_frequency(self):
        streams = RandomStreams(seed=0)
        hits = sum(streams.bernoulli("b", 0.3) for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.3, abs=0.02)

    def test_uniform_range(self):
        streams = RandomStreams(seed=0)
        for _ in range(100):
            value = streams.uniform("u", 2.0, 5.0)
            assert 2.0 <= value < 5.0

    def test_choice_without_replacement_distinct(self):
        streams = RandomStreams(seed=0)
        draw = streams.choice_without_replacement("items", population=50, count=20)
        assert len(set(draw.tolist())) == 20
        assert all(0 <= item < 50 for item in draw)

    def test_choice_without_replacement_too_many_raises(self):
        streams = RandomStreams(seed=0)
        with pytest.raises(ValueError):
            streams.choice_without_replacement("items", population=5, count=10)


class TestProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           name=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_stream_reproducibility_property(self, seed, name):
        first = RandomStreams(seed=seed).stream(name).random(3)
        second = RandomStreams(seed=seed).stream(name).random(3)
        np.testing.assert_array_equal(first, second)

    @given(count=st.integers(min_value=0, max_value=30),
           population=st.integers(min_value=30, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_choice_property(self, count, population):
        streams = RandomStreams(seed=1)
        draw = streams.choice_without_replacement("x", population, count)
        assert len(draw) == count
        assert len(set(draw.tolist())) == count
