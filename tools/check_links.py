#!/usr/bin/env python
"""Check the repository's markdown for broken relative links and anchors.

Scans README.md and ``docs/*.md`` for inline markdown links
``[text](target)`` and verifies that

* **relative file links** point at files or directories that exist
  (relative to the file containing the link),
* **anchor links** (``#section`` or ``file.md#section``) name a heading
  that actually exists in the target file, using GitHub's slug rules
  (lowercase, spaces to dashes, punctuation dropped),

and exits non-zero listing every broken link.  External links
(``http://`` / ``https://`` / ``mailto:``) are *not* fetched — CI must not
depend on the network — only their syntax is accepted.

Run it directly::

    python tools/check_links.py

or point it somewhere else::

    python tools/check_links.py --root /path/to/repo
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Tuple

#: inline markdown links: [text](target) — images share the syntax
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings, used to build the anchor inventory of a page
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)

#: link schemes that are accepted without local verification
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, dashes, no punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)       # drop code ticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> their text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(page: Path) -> set:
    """Every heading anchor a page exposes."""
    slugs: dict = {}
    found = set()
    for match in _HEADING.finditer(page.read_text(encoding="utf-8")):
        slug = github_slug(match.group(1))
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        found.add(slug if count == 0 else f"{slug}-{count}")
    return found


def markdown_files(root: Path) -> List[Path]:
    """The files this checker covers: README.md plus docs/*.md."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def _strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks: links inside them are examples, not links."""
    return re.sub(r"^```.*?^```", "", text, flags=re.MULTILINE | re.DOTALL)


def check_file(page: Path, root: Path) -> List[Tuple[Path, str, str]]:
    """All broken links of one page as (page, target, reason) tuples."""
    broken = []
    text = _strip_code_blocks(page.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (page.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((page, target, f"no such file: {path_part}"))
                continue
            if not str(resolved).startswith(str(root.resolve())):
                broken.append((page, target, "link escapes the repository"))
                continue
        else:
            resolved = page
        if anchor:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                broken.append((page, target, "anchor into a non-markdown target"))
            elif anchor not in anchors_of(resolved):
                broken.append((page, target, f"no heading with anchor #{anchor}"))
    return broken


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's parent)")
    args = parser.parse_args(argv)

    files = markdown_files(args.root)
    if not files:
        print(f"no markdown files found under {args.root}", file=sys.stderr)
        return 2

    broken = []
    checked = 0
    for page in files:
        text = _strip_code_blocks(page.read_text(encoding="utf-8"))
        checked += sum(1 for match in _LINK.finditer(text)
                       if not match.group(1).startswith(_EXTERNAL))
        broken.extend(check_file(page, args.root))

    for page, target, reason in broken:
        print(f"{page.relative_to(args.root)}: broken link ({target}): {reason}",
              file=sys.stderr)
    print(f"{len(files)} files, {checked} local links checked, "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main())
