"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    Timeout,
)


class TestSimulatorBasics:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_clock_starts_at_custom_time(self):
        sim = Simulator(start_time=42.0)
        assert sim.now == 42.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_in_the_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_step_on_empty_queue_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek_empty_queue_is_infinite(self):
        sim = Simulator()
        assert sim.peek() == float("inf")

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_in(3.0, lambda: order.append("late"))
        sim.call_in(1.0, lambda: order.append("early"))
        sim.call_in(2.0, lambda: order.append("middle"))
        sim.run(until=5.0)
        assert order == ["early", "middle", "late"]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.call_in(1.0, lambda: order.append("first"))
        sim.call_in(1.0, lambda: order.append("second"))
        sim.run(until=2.0)
        assert order == ["first", "second"]

    def test_run_stops_exactly_at_until(self):
        sim = Simulator()
        fired = []
        sim.call_in(10.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert not fired
        sim.run(until=20.0)
        assert fired

    def test_call_at_in_the_past_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.call_at(5.0, lambda: None)

    def test_stop_halts_the_run_loop(self):
        sim = Simulator()
        sim.call_in(1.0, sim.stop)
        sim.call_in(2.0, lambda: pytest.fail("event after stop should not run"))
        sim.run(until=10.0)
        assert sim.now == pytest.approx(10.0)


class TestEvent:
    def test_succeed_sets_value(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(99)
        sim.run(until=0.0)
        assert event.ok
        assert event.value == 99

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_double_succeed_raises(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_records_exception(self):
        sim = Simulator()
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        sim.run(until=0.0)
        assert not event.ok
        assert event.exception is error
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_fail_requires_exception_instance(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callback_after_processed_runs_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        sim.run(until=0.0)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_timeout_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Timeout(sim, -1.0)

    def test_timeout_fires_at_the_right_time(self):
        sim = Simulator()
        times = []
        timeout = sim.timeout(2.5)
        timeout.add_callback(lambda _e: times.append(sim.now))
        sim.run(until=5.0)
        assert times == [pytest.approx(2.5)]


class TestProcess:
    def test_process_runs_and_returns_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return "done"

        process = sim.process(worker())
        sim.run(until=10.0)
        assert not process.is_alive
        assert process.value == "done"
        assert sim.now == 10.0

    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            Process(sim, lambda: None)

    def test_processes_interleave_by_time(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((name, sim.now))

        sim.process(worker("fast", 1.0))
        sim.process(worker("slow", 2.5))
        sim.run(until=10.0)
        assert log == [
            ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
            ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
        ]

    def test_process_can_wait_on_another_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(3.0)
            return 7

        def parent():
            value = yield sim.process(child())
            return value * 2

        parent_process = sim.process(parent())
        sim.run(until=10.0)
        assert parent_process.value == 14

    def test_yielding_non_event_fails_process(self):
        sim = Simulator(raise_process_errors=False)

        def bad():
            yield 42

        process = sim.process(bad())
        sim.run(until=1.0)
        assert not process.is_alive
        assert isinstance(process.exception, SimulationError)

    def test_yielding_foreign_event_fails_process(self):
        sim = Simulator(raise_process_errors=False)
        other = Simulator()

        def bad():
            yield other.timeout(1.0)

        process = sim.process(bad())
        sim.run(until=1.0)
        assert isinstance(process.exception, SimulationError)

    def test_exception_in_process_propagates_by_default(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("inner failure")

        sim.process(bad())
        with pytest.raises(ValueError, match="inner failure"):
            sim.run(until=2.0)

    def test_exception_recorded_when_errors_suppressed(self):
        sim = Simulator(raise_process_errors=False)

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("inner failure")

        process = sim.process(bad())
        sim.run(until=2.0)
        assert isinstance(process.exception, ValueError)

    def test_failed_event_is_thrown_into_process(self):
        sim = Simulator()
        trigger = sim.event()
        caught = []

        def worker():
            try:
                yield trigger
            except RuntimeError as error:
                caught.append(str(error))

        sim.process(worker())
        sim.call_in(1.0, lambda: trigger.fail(RuntimeError("failed event")))
        sim.run(until=2.0)
        assert caught == ["failed event"]


class TestInterrupt:
    def test_interrupt_wakes_process_with_cause(self):
        sim = Simulator()
        causes = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)

        process = sim.process(sleeper())
        sim.call_in(1.0, lambda: process.interrupt("wake up"))
        sim.run(until=5.0)
        assert causes == ["wake up"]
        assert sim.now == 5.0

    def test_interrupt_terminated_process_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        process = sim.process(quick())
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_unhandled_interrupt_fails_the_process(self):
        sim = Simulator()

        def sleeper():
            yield sim.timeout(100.0)

        process = sim.process(sleeper())
        sim.call_in(1.0, lambda: process.interrupt("no handler"))
        sim.run(until=5.0)
        assert not process.is_alive
        assert isinstance(process.exception, Interrupt)

    def test_process_continues_after_handling_interrupt(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield sim.timeout(2.0)
            log.append(("resumed", sim.now))

        process = sim.process(sleeper())
        sim.call_in(3.0, lambda: process.interrupt())
        sim.run(until=10.0)
        assert log == [("interrupted", 3.0), ("resumed", 5.0)]

    def test_kill_terminates_without_running_more_code(self):
        sim = Simulator(raise_process_errors=False)
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            finally:
                log.append("cleanup")

        process = sim.process(sleeper())
        sim.call_in(1.0, lambda: process.kill("shutdown"))
        sim.run(until=5.0)
        assert not process.is_alive
        assert isinstance(process.exception, ProcessKilled)
        assert log == ["cleanup"]


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        done_times = []

        def waiter():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(4.0), sim.timeout(2.0)])
            done_times.append(sim.now)

        sim.process(waiter())
        sim.run(until=10.0)
        assert done_times == [4.0]

    def test_any_of_fires_on_first_event(self):
        sim = Simulator()
        done_times = []

        def waiter():
            yield sim.any_of([sim.timeout(5.0), sim.timeout(1.5)])
            done_times.append(sim.now)

        sim.process(waiter())
        sim.run(until=10.0)
        assert done_times == [1.5]

    def test_all_of_empty_list_succeeds_immediately(self):
        sim = Simulator()
        done = []

        def waiter():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(waiter())
        sim.run(until=1.0)
        assert done == [0.0]


class TestTieBreakContract:
    """The documented equal-timestamp ordering contract.

    Heap entries are ``(time, sequence, event)`` with a monotonic sequence
    counter assigned at scheduling time: events scheduled at the same
    simulation time process strictly in schedule order.  This is an explicit
    contract (not an accident of list insertion order) and the golden
    trajectories depend on it.
    """

    def test_two_events_at_same_time_process_in_schedule_order(self):
        sim = Simulator()
        order = []
        first = sim.event()
        second = sim.event()
        # triggered (= scheduled) in this order, both at t=0
        first.succeed("first")
        second.succeed("second")
        first.add_callback(lambda e: order.append(e.value))
        second.add_callback(lambda e: order.append(e.value))
        sim.run(until=0.0)
        assert order == ["first", "second"]

    def test_mixed_event_kinds_share_one_sequence(self):
        """Timeouts, plain events and process wakeups obey one global order."""
        sim = Simulator()
        order = []

        def proc():
            order.append("process-bootstrap")
            yield sim.timeout(1.0)
            order.append("process-timeout")

        timeout_a = sim.timeout(1.0)          # scheduled 1st for t=1
        sim.process(proc())                   # bootstrap scheduled 2nd for t=0
        event = sim.event().succeed(None)     # scheduled 3rd for t=0
        timeout_b = sim.timeout(1.0)          # scheduled 4th for t=1
        timeout_a.add_callback(lambda _e: order.append("timeout-a"))
        event.add_callback(lambda _e: order.append("plain-event"))
        timeout_b.add_callback(lambda _e: order.append("timeout-b"))
        sim.run(until=2.0)
        # t=0: bootstrap precedes the plain event (scheduled earlier).
        # t=1: timeout-a first, then timeout-b, then the process's nap --
        # the nap was only scheduled when the bootstrap ran at t=0, which is
        # after both timeouts had already been created.
        assert order == ["process-bootstrap", "plain-event",
                         "timeout-a", "timeout-b", "process-timeout"]

    def test_sequence_counter_is_monotonic(self):
        sim = Simulator()
        before = sim._sequence
        sim.timeout(0.5)
        sim.timeout(0.5)
        sim.event().succeed()
        assert sim._sequence == before + 3

    def test_schedule_order_preserved_across_heap_reshuffles(self):
        """Many equal timestamps interleaved with earlier/later events."""
        sim = Simulator()
        fired = []
        # build a deliberately adversarial creation order for the heap
        for index, delay in enumerate([5.0, 1.0, 5.0, 3.0, 5.0, 1.0, 5.0]):
            sim.call_in(delay, lambda i=index, d=delay: fired.append((d, i)))
        sim.run(until=10.0)
        assert fired == [(1.0, 1), (1.0, 5), (3.0, 3),
                         (5.0, 0), (5.0, 2), (5.0, 4), (5.0, 6)]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(name, delay):
                while sim.now < 20.0:
                    yield sim.timeout(delay)
                    trace.append((name, round(sim.now, 9)))

            sim.process(worker("a", 0.7))
            sim.process(worker("b", 1.3))
            sim.run(until=25.0)
            return trace

        assert build_and_run() == build_and_run()
