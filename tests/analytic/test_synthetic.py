"""Tests for the synthetic overload function and the synthetic plant."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.synthetic import (
    DynamicOptimumScenario,
    SyntheticOverloadFunction,
    SyntheticSystem,
)
from repro.core.static import FixedLimit
from repro.tp.workload import ConstantSchedule, JumpSchedule, SinusoidSchedule


class TestOverloadFunction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticOverloadFunction(optimum_position=0.0, peak_performance=10.0)
        with pytest.raises(ValueError):
            SyntheticOverloadFunction(optimum_position=10.0, peak_performance=-1.0)
        with pytest.raises(ValueError):
            SyntheticOverloadFunction(optimum_position=10.0, peak_performance=1.0,
                                      overload_decay=-0.5)

    def test_zero_load_zero_performance(self):
        function = SyntheticOverloadFunction(50.0, 100.0)
        assert function.value(0.0) == 0.0
        assert function.value(-5.0) == 0.0

    def test_peak_at_optimum(self):
        function = SyntheticOverloadFunction(50.0, 100.0)
        assert function.value(50.0) == pytest.approx(100.0)

    def test_monotone_increase_before_optimum(self):
        function = SyntheticOverloadFunction(50.0, 100.0)
        values = [function.value(load) for load in range(0, 51, 5)]
        assert values == sorted(values)

    def test_monotone_decrease_after_optimum(self):
        function = SyntheticOverloadFunction(50.0, 100.0, overload_decay=1.5)
        values = [function.value(load) for load in range(50, 200, 10)]
        assert values == sorted(values, reverse=True)

    def test_performance_clipped_at_zero_in_deep_overload(self):
        function = SyntheticOverloadFunction(50.0, 100.0, overload_decay=2.0)
        assert function.value(1000.0) == 0.0

    def test_callable(self):
        function = SyntheticOverloadFunction(50.0, 100.0)
        assert function(25.0) == function.value(25.0)

    @given(position=st.floats(min_value=1.0, max_value=500.0),
           peak=st.floats(min_value=0.0, max_value=1000.0),
           load=st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=100, deadline=None)
    def test_unimodal_and_bounded_property(self, position, peak, load):
        function = SyntheticOverloadFunction(position, peak)
        value = function.value(load)
        assert 0.0 <= value <= peak + 1e-9


class TestDynamicScenario:
    def test_constant_scenario(self):
        scenario = DynamicOptimumScenario.constant(position=40.0, height=80.0)
        assert scenario.optimum_at(0.0) == 40.0
        assert scenario.optimum_at(1e6) == 40.0
        assert scenario.peak_at(3.0) == 80.0

    def test_jump_scenario_moves_optimum(self):
        scenario = DynamicOptimumScenario(
            position=JumpSchedule(40.0, 100.0, jump_time=10.0),
            height=ConstantSchedule(80.0))
        assert scenario.optimum_at(5.0) == 40.0
        assert scenario.optimum_at(15.0) == 100.0
        before = scenario.function_at(5.0)
        after = scenario.function_at(15.0)
        assert before.optimum_position == 40.0
        assert after.optimum_position == 100.0

    def test_height_schedule_changes_peak(self):
        scenario = DynamicOptimumScenario(
            position=ConstantSchedule(40.0),
            height=SinusoidSchedule(mean=100.0, amplitude=20.0, period=100.0))
        peaks = [scenario.peak_at(t) for t in range(0, 100, 5)]
        assert max(peaks) > 115.0
        assert min(peaks) < 85.0


class TestSyntheticSystem:
    def test_validation(self):
        scenario = DynamicOptimumScenario.constant(40.0, 80.0)
        with pytest.raises(ValueError):
            SyntheticSystem(scenario, FixedLimit(10), interval=0.0)
        with pytest.raises(ValueError):
            SyntheticSystem(scenario, FixedLimit(10), noise_std=-1.0)

    def test_load_clipped_at_threshold(self):
        scenario = DynamicOptimumScenario.constant(40.0, 80.0)
        plant = SyntheticSystem(scenario, FixedLimit(25, upper_bound=100),
                                offered_load=1000.0)
        plant.run(10)
        assert all(load <= 25.0 + 1e-9 for load in plant.trace.concurrency)

    def test_load_limited_by_offered_load(self):
        scenario = DynamicOptimumScenario.constant(40.0, 80.0)
        plant = SyntheticSystem(scenario, FixedLimit(500, upper_bound=1000),
                                offered_load=15.0)
        plant.run(10)
        assert all(load == pytest.approx(15.0) for load in plant.trace.concurrency)

    def test_noise_free_run_is_exact(self):
        scenario = DynamicOptimumScenario.constant(40.0, 80.0)
        plant = SyntheticSystem(scenario, FixedLimit(40, upper_bound=100))
        plant.run(5)
        assert all(value == pytest.approx(80.0) for value in plant.trace.throughput)

    def test_reference_optima_recorded(self):
        scenario = DynamicOptimumScenario(
            position=JumpSchedule(40.0, 100.0, jump_time=5.0),
            height=ConstantSchedule(80.0))
        plant = SyntheticSystem(scenario, FixedLimit(40, upper_bound=200), interval=1.0)
        plant.run(10)
        assert plant.reference_optima[0] == 40.0
        assert plant.reference_optima[-1] == 100.0

    def test_negative_steps_rejected(self):
        scenario = DynamicOptimumScenario.constant(40.0, 80.0)
        plant = SyntheticSystem(scenario, FixedLimit(40, upper_bound=100))
        with pytest.raises(ValueError):
            plant.run(-1)

    def test_seeded_noise_is_reproducible(self):
        scenario = DynamicOptimumScenario.constant(40.0, 80.0)
        first = SyntheticSystem(scenario, FixedLimit(40, upper_bound=100),
                                noise_std=5.0, seed=3)
        second = SyntheticSystem(scenario, FixedLimit(40, upper_bound=100),
                                 noise_std=5.0, seed=3)
        first.run(20)
        second.run(20)
        assert first.trace.throughput == second.trace.throughput
