"""Golden-trajectory regression tests for the simulation core.

The fixtures under ``tests/golden/`` pin the exact behavior of the
discrete-event engine through every registry scenario at smoke scale:
per-transaction lifecycle event logs (via a digest over their canonical
serialisation, plus a verbatim head) and the runner's summary metrics.
The original five were generated with ``tools/regen_goldens.py`` *before*
the hot-path rewrite of the engine and act as the bit-for-bit contract the
optimised engine must honour; later scenarios (``mixed_classes``,
``cc_compare``, ``displacement_policies``, ``deadlock_resolution``,
``isolation_tradeoff``, ``probe_calibration``, and the open-system pair
``open_diurnal``/``flash_crowd``) were pinned the moment they were
introduced.

Two assertions per scenario:

* **serial** — re-capturing the scenario in-process reproduces the golden
  file bitwise (canonical JSON string equality, covering every event
  timestamp and every metric);
* **workers=2** — running the same sweep through the multiprocessing
  executor reproduces the golden metrics of every cell bitwise (the
  tracer is process-local, so the parallel path is checked through the
  deterministic summary metrics).

The scenarios that carry the sweep dimensions added after the distributed
subsystem landed (concurrency control schemes and displacement policies)
are additionally asserted over a 2-worker localhost cluster, so the new
spec fields provably survive the wire protocol with bit-identical results.

A failure here means a change altered simulated trajectories.  Never
"fix" it by regenerating the goldens unless the semantic change is
intentional and documented; see ``tools/regen_goldens.py``.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentScale
from repro.runner.api import run_sweep
from repro.runner.registry import build_sweep

GOLDEN_DIR = Path(__file__).resolve().parent
_TOOL_PATH = GOLDEN_DIR.parent.parent / "tools" / "regen_goldens.py"

# single source of truth for capture + canonicalisation: the regen tool
_spec = importlib.util.spec_from_file_location("regen_goldens", _TOOL_PATH)
regen_goldens = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("regen_goldens", regen_goldens)
_spec.loader.exec_module(regen_goldens)

SCENARIOS = regen_goldens.GOLDEN_SCENARIOS


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", SCENARIOS)
def test_golden_file_exists_and_is_canonical(name):
    """The checked-in fixture itself must be in canonical form."""
    text = _golden_path(name).read_text(encoding="utf-8")
    payload = json.loads(text)
    assert payload["scenario"] == name
    assert payload["scale"] == "smoke"
    assert payload["format"] == regen_goldens.GOLDEN_FORMAT
    assert regen_goldens.canonical_json(payload) + "\n" == text


@pytest.mark.parametrize("name", SCENARIOS)
def test_serial_trajectories_bitwise_identical(name):
    """Serial re-capture reproduces event logs and metrics bit for bit."""
    golden_text = _golden_path(name).read_text(encoding="utf-8")
    fresh = regen_goldens.capture_scenario(name)
    fresh_text = regen_goldens.canonical_json(fresh) + "\n"
    if fresh_text != golden_text:
        golden = json.loads(golden_text)
        _explain_mismatch(golden, fresh)
    assert fresh_text == golden_text


@pytest.mark.parametrize("name", SCENARIOS)
def test_workers2_metrics_bitwise_identical(name):
    """The multiprocessing executor reproduces every cell's metrics exactly."""
    golden = json.loads(_golden_path(name).read_text(encoding="utf-8"))
    spec = build_sweep(name, scale=ExperimentScale.smoke())
    result = run_sweep(spec, workers=2)
    _assert_metrics_match_golden(result, golden)


#: scenarios exercising the post-dist sweep dimensions (CCSpec on the cell
#: specs, DisplacementPolicy/VictimCriterion, scheme_diagnostics): these
#: must round-trip the wire protocol, so they are asserted over a real
#: localhost cluster too
DIST_PINNED_SCENARIOS = ("cc_compare", "displacement_policies",
                         "deadlock_resolution", "isolation_tradeoff",
                         "probe_calibration", "open_diurnal", "flash_crowd")


@pytest.mark.parametrize("name", DIST_PINNED_SCENARIOS)
def test_dist_cluster_metrics_bitwise_identical(name):
    """A 2-worker localhost cluster reproduces every cell's metrics exactly."""
    from repro.dist.cluster import launch_local_cluster

    golden = json.loads(_golden_path(name).read_text(encoding="utf-8"))
    spec = build_sweep(name, scale=ExperimentScale.smoke())
    with launch_local_cluster(workers=2) as cluster:
        result = run_sweep(spec, executor=cluster)
    _assert_metrics_match_golden(result, golden)


def _assert_metrics_match_golden(result, golden):
    assert len(result.results) == len(golden["cells"])
    for golden_cell, cell in zip(golden["cells"], result.results):
        assert cell.cell_id == golden_cell["cell_id"]
        assert (regen_goldens.canonical_json(dict(cell.metrics))
                == regen_goldens.canonical_json(golden_cell["metrics"]))
        # diagnostics cells label their analytic reference; the label must
        # survive the executor / wire protocol unchanged
        assert cell.model_reference == golden_cell.get("model_reference", "")


class TestRegenOnlyFlag:
    """``--only`` is the guard that keeps existing fixtures untouched."""

    def test_only_writes_exactly_the_named_fixture(self, tmp_path):
        assert regen_goldens.main(["--only", "thrashing",
                                   "--out", str(tmp_path)]) == 0
        assert [path.name for path in tmp_path.iterdir()] == ["thrashing.json"]
        fresh = json.loads((tmp_path / "thrashing.json").read_text())
        golden = json.loads(_golden_path("thrashing").read_text())
        assert fresh == golden

    def test_positional_scenarios_are_not_accepted(self, tmp_path):
        """--only is the single subset spelling; bare names are an error."""
        with pytest.raises(SystemExit):
            regen_goldens.main(["thrashing", "--out", str(tmp_path)])
        assert list(tmp_path.iterdir()) == []

    def test_only_rejects_unknown_scenarios(self, tmp_path):
        with pytest.raises(SystemExit):
            regen_goldens.main(["--only", "no_such_scenario",
                                "--out", str(tmp_path)])
        assert list(tmp_path.iterdir()) == []


def _explain_mismatch(golden: dict, fresh: dict) -> None:
    """Fail with the first diverging cell/event instead of a wall of JSON."""
    for golden_cell, fresh_cell in zip(golden["cells"], fresh["cells"]):
        cell_id = golden_cell["cell_id"]
        assert fresh_cell["cell_id"] == cell_id, (
            f"cell order changed: expected {cell_id!r}, got {fresh_cell['cell_id']!r}"
        )
        golden_head = golden_cell["events_head"]
        fresh_head = regen_goldens.sanitize(fresh_cell["events_head"])
        for index, (expected, actual) in enumerate(zip(golden_head, fresh_head)):
            assert actual == expected, (
                f"{cell_id}: first diverging trajectory event at index {index}: "
                f"expected {expected}, got {actual}"
            )
        assert fresh_cell["n_events"] == golden_cell["n_events"], (
            f"{cell_id}: event count changed "
            f"({golden_cell['n_events']} -> {fresh_cell['n_events']})"
        )
        assert fresh_cell["events_digest"] == golden_cell["events_digest"], (
            f"{cell_id}: trajectory diverged after the stored head "
            f"(first {len(golden_head)} events identical, digest differs)"
        )
        golden_metrics = regen_goldens.canonical_json(golden_cell["metrics"])
        fresh_metrics = regen_goldens.canonical_json(fresh_cell["metrics"])
        assert fresh_metrics == golden_metrics, (
            f"{cell_id}: metrics changed: expected {golden_metrics}, got {fresh_metrics}"
        )
