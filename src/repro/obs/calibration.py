"""Closing the loop: probe measurements calibrate the Tay reference.

Tay's mean-value blocking model needs one behavioural constant the static
workload parameters cannot supply: the **waiting share** ``w`` — the
fraction of a transaction's residence time a blocked transaction loses per
blocking wait.  The repo has historically used the literature default of
0.5 (:data:`DEFAULT_WAITING_SHARE`), which is exactly the number the
``lock_wait`` probe (:mod:`repro.obs.probes`) can *measure*: the mean
blocking-wait duration over the mean committed-execution residence time is
the observed waiting share of the very system the model is asked to
explain.

:func:`measured_wait_share` extracts that ratio from a cell's
``probe_<name>`` metrics; :func:`calibrated_tay_model` builds a
:class:`~repro.analytic.tay.TayThroughputModel` around it.  Both degrade
gracefully: metrics without lock-wait data (probes off, or a run with no
blocking waits) fall back to the default, so calibration can be layered
onto any result dict.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analytic.tay import TayThroughputModel
from repro.tp.params import SystemParams, WorkloadParams

#: the literature default waiting share Tay's model falls back to
DEFAULT_WAITING_SHARE = 0.5


def measured_wait_share(metrics: Mapping[str, float],
                        default: float = DEFAULT_WAITING_SHARE) -> float:
    """The waiting share measured by the ``lock_wait`` probe, or ``default``.

    ``metrics`` is any mapping carrying ``probe_<name>`` keys — a
    :attr:`~repro.runner.cells.CellResult.metrics` dict, a
    :attr:`~repro.experiments.stationary.StationaryPoint.probe_metrics`
    dict, or a replicate aggregate's per-metric means.  The probe reports
    the ratio directly (``probe_lock_wait_share``); when only the raw
    means are present the ratio is recomputed from
    ``probe_lock_wait_mean / probe_lock_wait_residence_mean``.  A missing
    or degenerate measurement (no waits observed, zero residence) yields
    ``default``; the result is clamped into ``(0, 1]`` as
    :class:`~repro.analytic.tay.TayModel` requires.
    """
    share = metrics.get("probe_lock_wait_share")
    if share is None:
        wait_mean = metrics.get("probe_lock_wait_mean")
        residence_mean = metrics.get("probe_lock_wait_residence_mean")
        if wait_mean is not None and residence_mean:
            share = wait_mean / residence_mean
    if share is None or share <= 0:
        return default
    return min(1.0, float(share))


def calibrated_tay_model(params: SystemParams,
                         metrics: Mapping[str, float],
                         workload: Optional[WorkloadParams] = None,
                         ) -> TayThroughputModel:
    """A Tay throughput reference calibrated from measured lock waits.

    Equivalent to ``TayThroughputModel(params, workload=workload)`` except
    that the waiting share comes from :func:`measured_wait_share` over
    ``metrics`` — so a reference built from a probed run explains *that*
    system's blocking behaviour rather than the literature default's.
    """
    return TayThroughputModel(
        params,
        workload=workload,
        waiting_share=measured_wait_share(metrics),
    )
