"""Crash-recovery: a service killed mid-job loses no cached work.

A real ``repro-svc serve`` subprocess is armed with the test-only
``--exit-after-fills N`` fault injection (the service-side mirror of the
worker's ``--fail-after-cells``): it hard-exits (``os._exit(17)``, no
shutdown courtesies) the moment the Nth result lands in the cache — mid
job, with results in flight.  A second service is then started on the
*same cache directory*: resubmitting the job must re-simulate only the
cells the crash lost (exact hit/miss accounting), and the final results
document must be byte-identical to an uninterrupted in-process run.

With one worker, cells complete in submission order, so exactly the first
N cells are cached at the moment of death — the assertions below are
deterministic, not statistical.
"""

import subprocess
import sys

import pytest

from repro.canonical import canonical_json
from repro.dist.cluster import _worker_env
from repro.runner.cells import execute_run_spec
from repro.runner.executor import SerialExecutor
from repro.runner.specs import run_spec_fingerprint
from repro.svc.cache import ResultCache
from repro.svc.client import ServiceClient
from repro.svc.service import results_document, scenario_cells

SCENARIO = "thrashing"  # 3 cells: crash after 2 fills, recover the third
FILLS_BEFORE_CRASH = 2


def _start_serve(cache_dir, *extra_args):
    """Launch ``repro-svc serve`` and scrape its bound addresses."""
    argv = [sys.executable, "-m", "repro.svc.cli", "serve",
            "--cache", str(cache_dir), "--local-workers", "1",
            *extra_args]
    process = subprocess.Popen(argv, env=_worker_env(),
                               stdout=subprocess.PIPE, text=True)
    addresses = {}
    for _ in range(2):  # "worker address: ..." then "control address: ..."
        line = process.stdout.readline()
        name, separator, value = line.strip().partition(" address: ")
        assert separator, f"unexpected serve output line: {line!r}"
        addresses[name] = value
    return process, addresses


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def test_crash_mid_job_then_recovery_completes_byte_identically(cache_dir):
    cells = scenario_cells(SCENARIO)
    assert len(cells) == 3

    # --- phase 1: the service dies mid-job after exactly 2 cache fills
    crashing, addresses = _start_serve(
        cache_dir, "--exit-after-fills", str(FILLS_BEFORE_CRASH))
    try:
        ServiceClient(addresses["control"]).submit_scenario(SCENARIO)
        assert crashing.wait(timeout=120) == 17  # the injected hard exit
    finally:
        if crashing.poll() is None:
            crashing.kill()
            crashing.wait()

    # the atomic cache holds exactly the first N cells, nothing torn
    cache = ResultCache(cache_dir)
    assert cache.entries() == FILLS_BEFORE_CRASH
    for cell in cells[:FILLS_BEFORE_CRASH]:
        assert cache.path_for(run_spec_fingerprint(cell)).exists()
    assert not cache.path_for(run_spec_fingerprint(cells[-1])).exists()

    # --- phase 2: a fresh service on the same cache directory recovers
    recovered, addresses = _start_serve(cache_dir)
    try:
        client = ServiceClient(addresses["control"])
        job_id = client.submit_scenario(SCENARIO)
        status = client.wait(job_id, timeout=120.0)
        assert status["state"] == "done"
        # only the cell the crash lost is re-simulated
        assert status["cache_hits"] == FILLS_BEFORE_CRASH
        assert status["cache_misses"] == len(cells) - FILLS_BEFORE_CRASH
        document = client.results(job_id)

        # byte-identical to an uninterrupted (never-crashed) serial run
        uninterrupted = results_document(
            SCENARIO, SerialExecutor().execute(execute_run_spec, cells))
        assert canonical_json(document) == canonical_json(uninterrupted)

        client.shutdown()
        assert recovered.wait(timeout=60) == 0  # clean exit this time
    finally:
        if recovered.poll() is None:
            recovered.kill()
            recovered.wait()
