"""Concurrency control schemes.

The paper's simulation uses an optimistic *timestamp certification* scheme
(Bernstein, Hadzilacos & Goodman 1987) because, for a non-blocking protocol,
data contention is resolved by additional resource contention (restarts) and
thrashing emerges naturally once the physical resources saturate.

Two-phase locking with deadlock detection is also provided so that the
blocking-CC class discussed in Section 1 (and by the Tay/Iyer rules of thumb)
can be exercised by the same transaction model.

The registry (:mod:`repro.cc.registry`) makes the scheme a sweepable
dimension of the experiment grid: a picklable :class:`CCSpec` names a
registered kind (``timestamp_cert``, ``two_phase_locking``) plus its
options, and the runner builds the scheme inside the worker that runs the
cell — exactly like controllers.
"""

from repro.cc.base import (
    AbortReason,
    ConcurrencyControl,
    TransactionAborted,
)
from repro.cc.registry import CCSpec, cc_kinds, register_cc, resolve_cc
from repro.cc.timestamp_cert import TimestampCertification
from repro.cc.two_phase_locking import LockMode, TwoPhaseLocking

__all__ = [
    "AbortReason",
    "ConcurrencyControl",
    "TransactionAborted",
    "TimestampCertification",
    "TwoPhaseLocking",
    "LockMode",
    "CCSpec",
    "cc_kinds",
    "register_cc",
    "resolve_cc",
]
