"""Workload generation and dynamic parameter schedules.

The paper drives its dynamic experiments by changing one of three workload
parameters during the run (Section 7):

* ``k`` -- the number of granules accessed per transaction,
* the fraction of read-only queries,
* the fraction of write accesses of the updaters,

in either a *jump-like* fashion (abrupt change, Figures 13/14) or a
*sinusoidal* fashion (smooth, gradual change).  All of these move the height
and the position of the throughput optimum.

:class:`ParameterSchedule` and its implementations describe one scalar
parameter as a function of simulated time; :class:`Workload` bundles the
three schedules, samples concrete transactions at submission time, and
exposes the *current* :class:`~repro.tp.params.WorkloadParams` so analytic
reference models can compute the true optimum at any instant.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

from repro.sim.random_streams import RandomStreams
from repro.tp.database import Database
from repro.tp.params import WorkloadParams
from repro.tp.transaction import Transaction, TransactionClass


class ParameterSchedule(ABC):
    """A scalar workload parameter as a function of simulated time."""

    @abstractmethod
    def value(self, time: float) -> float:
        """Parameter value in effect at ``time``."""

    def __call__(self, time: float) -> float:
        return self.value(time)


class ConstantSchedule(ParameterSchedule):
    """A parameter that never changes."""

    def __init__(self, value: float):
        self._value = float(value)

    def value(self, time: float) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self._value})"


class JumpSchedule(ParameterSchedule):
    """Abrupt change from ``before`` to ``after`` at ``jump_time``.

    Models the jump-like workload variation of Figures 13/14.  Multiple jumps
    can be expressed with :class:`StepSchedule`.
    """

    def __init__(self, before: float, after: float, jump_time: float):
        self.before = float(before)
        self.after = float(after)
        self.jump_time = float(jump_time)

    def value(self, time: float) -> float:
        return self.after if time >= self.jump_time else self.before

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Jump({self.before}->{self.after} at t={self.jump_time})"


class StepSchedule(ParameterSchedule):
    """Piecewise-constant schedule given as (time, value) breakpoints."""

    def __init__(self, initial: float, steps: Sequence[Tuple[float, float]]):
        self.initial = float(initial)
        self.steps = sorted((float(t), float(v)) for t, v in steps)

    def value(self, time: float) -> float:
        current = self.initial
        for step_time, step_value in self.steps:
            if time >= step_time:
                current = step_value
            else:
                break
        return current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Steps(initial={self.initial}, steps={self.steps})"


class SinusoidSchedule(ParameterSchedule):
    """Smooth periodic variation around a mean value.

    ``value(t) = mean + amplitude * sin(2*pi*(t - phase)/period)`` -- the
    "sinusoidal variation modelling more smooth and gradual changes" of
    Section 9.
    """

    def __init__(self, mean: float, amplitude: float, period: float, phase: float = 0.0):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.mean = float(mean)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def value(self, time: float) -> float:
        return self.mean + self.amplitude * math.sin(
            2.0 * math.pi * (time - self.phase) / self.period
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sinusoid(mean={self.mean}, amplitude={self.amplitude}, "
            f"period={self.period})"
        )


def _as_schedule(value) -> ParameterSchedule:
    """Coerce a number into a ConstantSchedule, pass schedules through."""
    if isinstance(value, ParameterSchedule):
        return value
    return ConstantSchedule(float(value))


class Workload:
    """Samples transactions according to (possibly time-varying) parameters."""

    def __init__(self,
                 base: WorkloadParams,
                 streams: RandomStreams,
                 database: Optional[Database] = None,
                 accesses_schedule: Optional[ParameterSchedule] = None,
                 query_fraction_schedule: Optional[ParameterSchedule] = None,
                 write_fraction_schedule: Optional[ParameterSchedule] = None):
        self.base = base
        self.streams = streams
        self.database = database or Database(base.db_size, streams)
        self._accesses = accesses_schedule or ConstantSchedule(base.accesses_per_txn)
        self._query_fraction = query_fraction_schedule or ConstantSchedule(base.query_fraction)
        self._write_fraction = write_fraction_schedule or ConstantSchedule(base.write_fraction)
        self._next_txn_id = 0
        # (k, query_fraction, write_fraction) -> WorkloadParams of the last
        # call; params_at is invoked per submission and the values are
        # piecewise constant, so the frozen result is almost always reusable
        self._params_cache: Optional[Tuple[Tuple[float, float, float], WorkloadParams]] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, params: WorkloadParams, streams: RandomStreams) -> "Workload":
        """Workload with all parameters fixed (stationary experiments)."""
        return cls(params, streams)

    @classmethod
    def with_schedules(cls, params: WorkloadParams, streams: RandomStreams,
                       accesses=None, query_fraction=None, write_fraction=None) -> "Workload":
        """Workload where any subset of parameters follows a schedule.

        Each of ``accesses``, ``query_fraction`` and ``write_fraction`` may be
        a number (constant) or a :class:`ParameterSchedule`.
        """
        return cls(
            params,
            streams,
            accesses_schedule=_as_schedule(accesses) if accesses is not None else None,
            query_fraction_schedule=(
                _as_schedule(query_fraction) if query_fraction is not None else None
            ),
            write_fraction_schedule=(
                _as_schedule(write_fraction) if write_fraction is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # time-varying parameter access
    # ------------------------------------------------------------------
    def params_at(self, time: float) -> WorkloadParams:
        """The workload parameters in effect at ``time``."""
        k = int(round(self._accesses.value(time)))
        k = max(1, min(k, self.base.db_size))
        query_fraction = min(1.0, max(0.0, self._query_fraction.value(time)))
        write_fraction = min(1.0, max(0.0, self._write_fraction.value(time)))
        key = (k, query_fraction, write_fraction)
        cached = self._params_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        params = self.base.with_changes(
            accesses_per_txn=k,
            query_fraction=query_fraction,
            write_fraction=write_fraction,
        )
        self._params_cache = (key, params)
        return params

    # ------------------------------------------------------------------
    # transaction sampling
    # ------------------------------------------------------------------
    def next_transaction(self, time: float, terminal_id: int) -> Transaction:
        """Sample the next transaction submitted by ``terminal_id`` at ``time``."""
        params = self.params_at(time)
        is_query = self.streams.bernoulli("txn-class", params.query_fraction)
        k = params.accesses_per_txn
        items = tuple(self.database.sample_access_set(k).tolist())
        if is_query:
            txn_class = TransactionClass.QUERY
            write_flags = (False,) * k
        else:
            txn_class = TransactionClass.UPDATER
            rng = self.streams.stream("write-marks")
            write_fraction = params.write_fraction
            # one vectorised draw of k uniforms consumes the stream exactly
            # like k scalar draws (pinned by the golden-trajectory harness)
            flags = rng.random(k) < write_fraction
            if not flags.any() and write_fraction > 0.0:
                # an updater always performs at least one write, otherwise it
                # would silently degrade into a query and dilute the class mix
                flags[int(rng.integers(0, k))] = True
            write_flags = tuple(flags.tolist())
        txn = Transaction(
            txn_id=self._next_txn_id,
            terminal_id=terminal_id,
            txn_class=txn_class,
            items=items,
            write_flags=write_flags,
            submitted_at=time,
        )
        self._next_txn_id += 1
        return txn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Workload k={self._accesses!r} query={self._query_fraction!r} "
            f"write={self._write_fraction!r}>"
        )
