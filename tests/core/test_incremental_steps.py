"""Tests for the Method of Incremental Steps (IS) controller."""

import pytest

from repro.analytic.synthetic import (
    DynamicOptimumScenario,
    SyntheticOverloadFunction,
    SyntheticSystem,
)
from repro.core.incremental_steps import IncrementalStepsController, signum
from repro.core.types import IntervalMeasurement
from repro.tp.workload import ConstantSchedule, JumpSchedule


def measurement(throughput, concurrency, limit, time=1.0):
    return IntervalMeasurement(
        time=time,
        interval_length=1.0,
        throughput=throughput,
        mean_concurrency=concurrency,
        concurrency_at_sample=concurrency,
        current_limit=limit,
        commits=int(throughput),
    )


class TestSignum:
    def test_positive(self):
        assert signum(2.5) == 1

    def test_zero_is_negative_branch(self):
        # the paper defines signum(0) = -1
        assert signum(0.0) == -1

    def test_negative(self):
        assert signum(-3.0) == -1


class TestParameterValidation:
    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            IncrementalStepsController(beta=-1.0)
        with pytest.raises(ValueError):
            IncrementalStepsController(gamma=-1.0)
        with pytest.raises(ValueError):
            IncrementalStepsController(delta=-1.0)
        with pytest.raises(ValueError):
            IncrementalStepsController(min_step=-1.0)

    def test_bounds_respected(self):
        controller = IncrementalStepsController(initial_limit=10, lower_bound=5, upper_bound=20)
        assert controller.lower_bound == 5
        assert controller.upper_bound == 20


class TestUpdateRule:
    def test_first_update_probes_upward(self):
        controller = IncrementalStepsController(initial_limit=10, gamma=3)
        new_limit = controller.update(measurement(50.0, 10.0, 10.0))
        assert new_limit > 10.0

    def test_keeps_direction_while_performance_improves(self):
        controller = IncrementalStepsController(initial_limit=10, beta=1.0, delta=100)
        first = controller.update(measurement(50.0, 10.0, 10.0))   # bootstrap, moves up
        second = controller.update(measurement(60.0, first, first))  # improved -> keep going up
        assert second > first
        third = controller.update(measurement(70.0, second, second))
        assert third > second

    def test_reverses_direction_when_performance_drops(self):
        controller = IncrementalStepsController(initial_limit=10, beta=1.0, delta=100)
        first = controller.update(measurement(50.0, 10.0, 10.0))
        second = controller.update(measurement(60.0, first, first))
        assert second > first
        # performance got worse after moving up -> next step must go down
        third = controller.update(measurement(40.0, second, second))
        assert third < second

    def test_step_size_proportional_to_performance_change(self):
        small = IncrementalStepsController(initial_limit=10, beta=1.0, delta=100, max_step=1000)
        large = IncrementalStepsController(initial_limit=10, beta=1.0, delta=100, max_step=1000)
        small.update(measurement(50.0, 10.0, 10.0))
        large.update(measurement(50.0, 10.0, 10.0))
        small_step = small.update(measurement(52.0, 11.0, 11.0)) - small.current_limit
        # note: current_limit is already the new one, so recompute via deltas
        small_limit_before = 11.0
        large_limit_before = 11.0
        small_new = small.current_limit
        large_new = large.update(measurement(70.0, 11.0, 11.0))
        assert abs(large_new - large_limit_before) > abs(small_new - small_limit_before)

    def test_min_step_keeps_exploring_on_flat_performance(self):
        controller = IncrementalStepsController(initial_limit=10, beta=1.0, delta=100, min_step=1.0)
        first = controller.update(measurement(50.0, 10.0, 10.0))
        second = controller.update(measurement(50.0, first, first))
        assert second != first

    def test_max_step_caps_single_move(self):
        controller = IncrementalStepsController(initial_limit=10, beta=10.0, delta=1000,
                                                max_step=5.0, upper_bound=1000)
        first = controller.update(measurement(50.0, 10.0, 10.0))
        second = controller.update(measurement(500.0, first, first))
        assert abs(second - first) <= 5.0

    def test_recoupling_when_load_below_threshold(self):
        # threshold far above the actual load: pull it down by gamma
        controller = IncrementalStepsController(initial_limit=100, gamma=7, delta=5)
        controller.update(measurement(50.0, 99.0, 100.0))  # bootstrap
        limit_before = controller.current_limit
        new_limit = controller.update(measurement(50.0, 20.0, limit_before))
        assert new_limit == pytest.approx(limit_before - 7)

    def test_recoupling_when_load_above_threshold(self):
        controller = IncrementalStepsController(initial_limit=10, gamma=7, delta=5,
                                                upper_bound=500)
        controller.update(measurement(50.0, 10.0, 10.0))
        limit_before = controller.current_limit
        new_limit = controller.update(measurement(50.0, limit_before + 50, limit_before))
        assert new_limit == pytest.approx(limit_before + 7)

    def test_respects_static_bounds(self):
        controller = IncrementalStepsController(initial_limit=5, lower_bound=2, upper_bound=8,
                                                beta=100.0, delta=100)
        for throughput in (10.0, 100.0, 1.0, 200.0, 5.0):
            limit = controller.update(measurement(throughput, controller.current_limit,
                                                  controller.current_limit))
            assert 2 <= limit <= 8

    def test_reset_forgets_history(self):
        controller = IncrementalStepsController(initial_limit=10)
        controller.update(measurement(50.0, 10.0, 10.0))
        controller.update(measurement(60.0, 11.0, 11.0))
        controller.reset()
        assert controller.current_limit == 10
        assert controller._previous_performance is None


class TestClosedLoopOnSyntheticPlant:
    def test_climbs_to_static_optimum(self):
        scenario = DynamicOptimumScenario.constant(position=60.0, height=100.0)
        controller = IncrementalStepsController(
            initial_limit=10, beta=1.0, gamma=4, delta=10, min_step=2.0,
            lower_bound=2, upper_bound=200)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=0.5, seed=1)
        plant.run(300)
        final_limits = plant.trace.limits[-50:]
        mean_limit = sum(final_limits) / len(final_limits)
        assert 40 <= mean_limit <= 85

    def test_follows_jump_of_the_optimum(self):
        scenario = DynamicOptimumScenario(
            position=JumpSchedule(40.0, 120.0, jump_time=150.0),
            height=ConstantSchedule(100.0),
        )
        controller = IncrementalStepsController(
            initial_limit=10, beta=1.0, gamma=4, delta=10, min_step=2.0,
            lower_bound=2, upper_bound=300)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=0.5, seed=2)
        plant.run(500)
        before_jump = plant.trace.limits[120:150]
        after_jump = plant.trace.limits[-60:]
        assert sum(before_jump) / len(before_jump) < 90
        assert sum(after_jump) / len(after_jump) > 85

    def test_stays_within_bounds_under_noise(self):
        scenario = DynamicOptimumScenario.constant(position=50.0, height=100.0)
        controller = IncrementalStepsController(
            initial_limit=25, beta=2.0, gamma=5, delta=10,
            lower_bound=5, upper_bound=150)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=10.0, seed=3)
        plant.run(400)
        assert all(5 <= limit <= 150 for limit in plant.trace.limits)
