"""Experiment harness shared by the examples and the benchmarks.

Each experiment of the paper's evaluation (Section 9) is represented by a
function that runs the necessary simulations and returns a plain result
object carrying the same data series the corresponding figure shows:

* :func:`repro.experiments.stationary.sweep_offered_load` -- the stationary
  load/throughput curves with and without control (Figures 1 and 12);
* :func:`repro.experiments.dynamic.run_tracking_experiment` -- the
  trajectory of the load threshold under jump-like or sinusoidal workload
  changes (Figures 13 and 14 and the sinusoidal study);
* :mod:`repro.experiments.tracking` -- tracking-error metrics used to
  compare IS and PA quantitatively;
* :mod:`repro.experiments.report` -- plain-text tables for printing the
  series in benchmark output and examples.

Scale: every experiment takes an :class:`ExperimentScale` so the full,
paper-sized runs and quick smoke-test runs share one code path.
"""

from repro.experiments.config import (
    ExperimentScale,
    contention_bound_params,
    default_system_params,
)
from repro.experiments.dynamic import (
    TrackingResult,
    jump_scenario,
    run_synthetic_tracking,
    run_tracking_experiment,
    run_tracking_suite,
    sinusoid_scenario,
    tracking_sweep_spec,
)
from repro.experiments.stationary import (
    StationaryPoint,
    StationarySweep,
    run_stationary_point,
    stationary_sweep_spec,
    sweep_offered_load,
)
from repro.experiments.tracking import TrackingMetrics, compute_tracking_metrics
from repro.experiments.report import (
    format_aggregate_table,
    format_comparison,
    format_series_table,
    format_sweep_table,
    format_table,
)

__all__ = [
    "ExperimentScale",
    "default_system_params",
    "contention_bound_params",
    "StationaryPoint",
    "StationarySweep",
    "run_stationary_point",
    "stationary_sweep_spec",
    "sweep_offered_load",
    "TrackingResult",
    "run_tracking_experiment",
    "run_tracking_suite",
    "tracking_sweep_spec",
    "run_synthetic_tracking",
    "jump_scenario",
    "sinusoid_scenario",
    "TrackingMetrics",
    "compute_tracking_metrics",
    "format_aggregate_table",
    "format_comparison",
    "format_series_table",
    "format_sweep_table",
    "format_table",
]
