"""``repro-obs``: summarise a structured-telemetry JSONL file.

Reads the span stream written by :mod:`repro.obs.telemetry` (export
``REPRO_TELEMETRY=/path/to/file.jsonl`` around any runner, coordinator or
worker invocation) and prints two fixed-width tables in the style of
:mod:`repro.experiments.report`:

* a **span summary** — one row per span name with the record count and,
  for spans that carry a ``duration``, total / mean / max seconds;
* a **worker summary** — one row per emitting worker with its cell count
  and execute-time statistics, so a parallel or distributed run shows at
  a glance how evenly work was spread.

Malformed lines are counted and reported on stderr, not fatal: a telemetry
file a crashed worker was writing to mid-line must still summarise.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.obs.telemetry import configure_cli_logging

logger = logging.getLogger("repro.obs")


class _SpanStats(object):
    """Count / total / max accumulator for one summary row."""

    __slots__ = ("count", "timed", "total", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.timed = 0
        self.total = 0.0
        self.maximum = 0.0

    def add(self, duration: Optional[float]) -> None:
        """Record one span occurrence, with its duration when it has one."""
        self.count += 1
        if duration is not None:
            self.timed += 1
            self.total += duration
            self.maximum = max(self.maximum, duration)

    def row(self, name: str) -> List[object]:
        """The table row of this accumulator."""
        if self.timed:
            return [name, self.count, self.total, self.total / self.timed,
                    self.maximum]
        return [name, self.count, "-", "-", "-"]


def read_spans(path: str) -> tuple:
    """Parse a telemetry JSONL file into ``(records, malformed_count)``."""
    records: List[dict] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                malformed += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                malformed += 1
    return records, malformed


def summarize(records: Sequence[dict]) -> str:
    """Render the span and worker summary tables of a record stream."""
    by_span: Dict[str, _SpanStats] = {}
    by_worker: Dict[str, _SpanStats] = {}
    for record in records:
        span = str(record.get("span", "?"))
        duration = record.get("duration")
        if not isinstance(duration, (int, float)):
            duration = None
        by_span.setdefault(span, _SpanStats()).add(duration)
        if span == "cell_execute":
            worker = str(record.get("worker", "?"))
            by_worker.setdefault(worker, _SpanStats()).add(duration)

    sections = []
    headers = ["span", "n", "total [s]", "mean [s]", "max [s]"]
    rows = [by_span[name].row(name) for name in sorted(by_span)]
    if not rows:
        return "no telemetry spans"
    sections.append(format_table(headers, rows, float_format="{:.3f}"))
    if by_worker:
        worker_headers = ["worker", "cells", "total [s]", "mean [s]", "max [s]"]
        worker_rows = [by_worker[name].row(name) for name in sorted(by_worker)]
        sections.append(format_table(worker_headers, worker_rows,
                                     float_format="{:.3f}"))
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-obs`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="summarise a structured-telemetry JSONL file "
                    "(written when REPRO_TELEMETRY is exported)",
    )
    parser.add_argument("telemetry", help="path to the telemetry JSONL file")
    parser.add_argument("--quiet", action="store_true",
                        help="log warnings and errors only")
    parser.add_argument("--verbose", action="store_true",
                        help="log debug diagnostics")
    options = parser.parse_args(argv)
    configure_cli_logging(verbose=options.verbose, quiet=options.quiet)
    try:
        records, malformed = read_spans(options.telemetry)
    except OSError as error:
        print(f"repro-obs: {error}", file=sys.stderr)
        return 1
    if malformed:
        logger.warning("skipped %d malformed line(s)", malformed)
    print(summarize(records))
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
