"""Tests for the versioned archive artifacts of replicated sweep runs."""

import json

import pytest

from repro.dist.archive import (
    ARCHIVE_FORMAT,
    archive_filename,
    archive_sweep,
    build_archive,
    format_archive_table,
    load_archive,
    write_archive,
)
from repro.experiments.config import ExperimentScale
from repro.runner.api import run_sweep
from repro.runner.registry import build_sweep


@pytest.fixture(scope="module")
def replicated_result():
    spec = build_sweep("thrashing", scale=ExperimentScale.smoke())
    return run_sweep(spec, replicates=2)


@pytest.fixture(scope="module")
def archive(replicated_result):
    return build_archive(replicated_result, scenario="thrashing",
                         scale_name="smoke")


class TestBuildArchive:
    def test_run_coordinates(self, archive, replicated_result):
        assert archive["format"] == ARCHIVE_FORMAT
        assert archive["scenario"] == "thrashing"
        assert archive["scale"] == "smoke"
        assert archive["replicates"] == 2
        assert archive["confidence"] == 0.95
        assert archive["n_cells"] == len(replicated_result.aggregates)

    def test_cell_metrics_carry_full_aggregates(self, archive, replicated_result):
        for cell, aggregate in zip(archive["cells"], replicated_result.aggregates):
            assert cell["cell_id"] == aggregate.cell_id
            assert cell["replicates"] == 2
            throughput = cell["metrics"]["throughput"]
            summary = aggregate.metric("throughput")
            assert throughput["mean"] == summary.mean
            assert throughput["std"] == summary.std
            assert throughput["ci_half_width"] == summary.ci_half_width
            assert throughput["ci_lower"] == summary.lower
            assert throughput["ci_upper"] == summary.upper
            assert throughput["count"] == 2

    def test_non_finite_metrics_are_tagged(self, archive):
        # the uncontrolled thrashing cells report final_limit = inf; the
        # artifact must stay strict JSON
        final_limits = [cell["metrics"]["final_limit"]["mean"]
                        for cell in archive["cells"]]
        assert all(value == "__inf__" for value in final_limits)
        json.dumps(archive, allow_nan=False)  # must not raise

    def test_cc_dimension_lands_in_artifacts(self, tmp_path):
        """A 2PL-vs-OCC sweep archives exactly like any other scenario.

        The cells carry :class:`~repro.cc.registry.CCSpec` descriptors; the
        archive pipeline must keep the per-scheme series apart (label +
        cell id) so paper-scale ``cc_compare`` runs on a dist cluster
        produce a readable artifact with no special-casing.
        """
        path = archive_sweep("cc_compare", out_dir=tmp_path, scale="smoke",
                             replicates=1, workers=0)
        archive = load_archive(path)
        assert archive["scenario"] == "cc_compare"
        labels = {cell["label"] for cell in archive["cells"]}
        assert labels == {"OCC without control", "OCC IS control",
                          "2PL without control", "2PL IS control"}
        table = format_archive_table(archive)
        assert "2PL IS control" in table
        json.dumps(archive, allow_nan=False)  # must not raise


class TestWriteAndLoad:
    def test_roundtrip_and_versioned_name(self, archive, tmp_path):
        path = write_archive(archive, tmp_path)
        assert path.name == archive_filename("thrashing", "smoke", 2)
        assert f"v{ARCHIVE_FORMAT}" in path.name
        assert load_archive(path) == archive

    def test_writes_are_deterministic(self, archive, tmp_path):
        first = write_archive(archive, tmp_path / "a").read_bytes()
        second = write_archive(archive, tmp_path / "b").read_bytes()
        assert first == second

    def test_unsupported_format_rejected(self, archive, tmp_path):
        stale = dict(archive, format=ARCHIVE_FORMAT + 1)
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(stale))
        with pytest.raises(ValueError, match="not supported"):
            load_archive(path)


class TestArchiveTable:
    def test_table_lists_cells_with_ci(self, archive):
        table = format_archive_table(archive)
        for cell in archive["cells"]:
            assert cell["cell_id"] in table
        assert "T [txn/s]" in table
        # two replicates with spread must render as mean ± half-width
        assert "±" in table

    def test_non_numeric_summaries_render_as_dash(self, archive):
        table = format_archive_table(
            archive, columns=(("final_limit", "limit"),))
        assert "-" in table.splitlines()[-1]


class TestArchiveSweep:
    def test_one_call_archival_run(self, tmp_path):
        path = archive_sweep("thrashing", out_dir=tmp_path, scale="smoke",
                             replicates=2)
        archive = load_archive(path)
        assert archive["scenario"] == "thrashing"
        assert archive["replicates"] == 2
        assert archive["cells"]

    def test_unknown_scale_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="scale"):
            archive_sweep("thrashing", out_dir=tmp_path, scale="huge")
