"""Coordinator side of distributed sweep execution.

:class:`DistributedExecutor` implements the same two-method executor
interface as :class:`~repro.runner.executor.SerialExecutor` and
:class:`~repro.runner.executor.ParallelExecutor` — ``map`` streams results
back in the items' order, ``execute`` collects them — but fans the cells
out over *networked* workers instead of local processes:

* it binds a TCP address and accepts ``repro-dist-worker`` connections at
  any time, including mid-sweep (late workers simply start pulling cells);
* each connected worker pulls one cell at a time (``ready`` -> ``task``),
  so fast hosts naturally take more cells than slow ones;
* results are reassembled into the items' submission order, so a sweep's
  result stream is deterministic regardless of worker count, join order or
  which worker finished first;
* a worker that dies or goes silent (no heartbeat within
  ``heartbeat_timeout``) has its in-flight cell re-queued at the *front*
  of the work queue — the ordered result stream is usually blocked on
  exactly that cell — and re-assigned to a surviving worker.  The sweep
  completes as long as one worker survives.

Determinism contract: a cell's result depends only on its spec, never on
the worker that ran it, so the reassembled results are bit-identical to a
:class:`~repro.runner.executor.SerialExecutor` run of the same spec — the
same guarantee the multiprocessing executor gives, extended across hosts
and asserted against the golden trajectories in ``tests/dist/``.

A cell that *raises* (as opposed to a worker that *dies*) is not retried:
the error — a :class:`~repro.runner.errors.CellExecutionError` naming the
cell — is forwarded to the coordinator and re-raised out of ``map``.
Retrying a deterministic failure would loop forever; dying workers, by
contrast, are environmental and their cells are safely re-run.

``main`` is the ``repro-dist-coordinator`` console entry point: it runs a
named registry scenario over the cluster, prints the replicate-aggregate
table, and optionally writes a versioned archive artifact
(:mod:`repro.dist.archive`).
"""

from __future__ import annotations

import argparse
import collections
import logging
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, TypeVar

from repro.dist import protocol
from repro.obs import telemetry
from repro.dist.protocol import (
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_READY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    MSG_TASK_ERROR,
    ConnectionClosed,
    ProtocolError,
)

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

logger = logging.getLogger("repro.dist.coordinator")


class _WorkerState:
    """Coordinator-side bookkeeping for one connected worker."""

    __slots__ = ("name", "sock", "send_lock", "in_flight", "cells_done",
                 "dispatched_at", "last_recv", "max_gap")

    def __init__(self, name: str, sock: socket.socket):
        self.name = name
        self.sock = sock
        #: serialises frames when close() races the serving thread
        self.send_lock = threading.Lock()
        #: (generation, item index) while a task is out, else None
        self.in_flight = None
        self.cells_done = 0
        #: monotonic dispatch time of the in-flight cell (telemetry)
        self.dispatched_at = 0.0
        #: monotonic time of the last message received from this worker
        self.last_recv = time.monotonic()
        #: largest observed silence between two messages (heartbeat gap)
        self.max_gap = 0.0

    def observe_recv(self) -> None:
        """A message arrived: update the heartbeat-gap statistics."""
        now = time.monotonic()
        self.max_gap = max(self.max_gap, now - self.last_recv)
        self.last_recv = now

    def send(self, message) -> None:
        with self.send_lock:
            protocol.send_message(self.sock, message)


class _SweepState:
    """One ``map`` call: the work queue and the reassembly buffer."""

    __slots__ = ("generation", "function", "items", "pending", "results",
                 "error", "last_progress", "queued_since")

    def __init__(self, generation: int, function, items, prefilled=None):
        self.generation = generation
        self.function = function
        self.items = items
        #: item index -> result, drained in order by the consumer;
        #: cache hits arrive pre-filled and are never queued at all
        self.results = dict(prefilled) if prefilled else {}
        self.pending = collections.deque(
            index for index in range(len(items)) if index not in self.results
        )
        self.error: Optional[BaseException] = None
        self.last_progress = time.monotonic()
        #: item index -> monotonic time it (re-)entered the queue; the
        #: dispatch telemetry span reports the difference as queue_wait
        now = self.last_progress
        self.queued_since = {index: now for index in self.pending}


class DistributedExecutor:
    """Serve sweep cells to networked workers; reassemble ordered results.

    ``address`` is ``"host:port"``; port 0 binds an ephemeral port (read
    the actual one back from :attr:`bound_address` — this is how the local
    cluster helper and the tests wire workers up).  ``heartbeat_timeout``
    is how long a silent worker is trusted before its in-flight cell is
    re-queued; ``worker_timeout`` bounds how long a sweep waits with *zero*
    connected workers before giving up.

    ``cell_cache`` (a :class:`~repro.svc.cache.ResultCache`, or anything
    with its ``lookup``/``store`` seam) makes the executor consult a
    content-addressed result cache before queueing each cell: hits are
    pre-filled into the ordered result stream without ever reaching a
    worker — a sweep whose every cell hits completes with zero workers
    connected — and every fresh worker result fills the cache.  Errors
    are never cached.  Soundness rests on cells being bit-deterministic;
    the cache itself only engages for the canonical cell entry point
    (see :mod:`repro.svc.cache`).
    """

    def __init__(self, address: str = "127.0.0.1:0", *,
                 heartbeat_timeout: float = 30.0,
                 worker_timeout: float = 600.0,
                 cell_cache=None):
        if heartbeat_timeout <= 0:
            raise ValueError(f"heartbeat_timeout must be positive, got {heartbeat_timeout}")
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {worker_timeout}")
        host, port = protocol.parse_address(address)
        self._listener = socket.create_server((host, port))
        self._heartbeat_timeout = float(heartbeat_timeout)
        self._worker_timeout = float(worker_timeout)
        self._cell_cache = cell_cache
        #: one lock+condition guards _workers, _sweep, _closed, _generation
        self._state = threading.Condition()
        self._workers: set = set()
        self._closed = False
        self._generation = 0
        self._sweep: Optional[_SweepState] = None
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # executor interface
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of currently connected workers."""
        with self._state:
            return len(self._workers)

    @property
    def bound_address(self) -> str:
        """The actual ``host:port`` workers should connect to."""
        host, port = self._listener.getsockname()[:2]
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        return protocol.format_address(host, port)

    def map(self, function: Callable[[ItemT], ResultT],
            items: Iterable[ItemT]) -> Iterator[ResultT]:
        """Serve ``items`` to the cluster, yielding results in item order."""
        materialised = list(items)

        def stream() -> Iterator[ResultT]:
            if not materialised:
                return
            # cache reads happen before the sweep is installed (no lock
            # held, workers idle): hits never enter the work queue
            prefilled = {}
            if self._cell_cache is not None:
                for index, item in enumerate(materialised):
                    cached = self._cell_cache.lookup(function, item)
                    if cached is not None:
                        prefilled[index] = cached
            with self._state:
                if self._closed:
                    raise RuntimeError("the executor is closed")
                if self._sweep is not None:
                    raise RuntimeError(
                        "another sweep is already running on this executor"
                    )
                self._generation += 1
                sweep = _SweepState(self._generation, function, materialised,
                                    prefilled=prefilled)
                self._sweep = sweep
                self._state.notify_all()
            try:
                for index in range(len(materialised)):
                    with self._state:
                        while sweep.error is None and index not in sweep.results:
                            self._check_stalled(sweep)
                            self._state.wait(timeout=0.5)
                        if sweep.error is not None:
                            raise sweep.error
                        value = sweep.results.pop(index)
                    yield value
            finally:
                with self._state:
                    self._sweep = None
                    self._state.notify_all()

        return stream()

    def execute(self, function: Callable[[ItemT], ResultT],
                items: Iterable[ItemT]) -> List[ResultT]:
        """Apply ``function`` to every item and return the ordered results."""
        return list(self.map(function, items))

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> int:
        """Block until ``count`` workers are connected; return the count."""
        deadline = time.monotonic() + timeout
        with self._state:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"only {len(self._workers)} of {count} workers joined "
                        f"{self.bound_address} within {timeout:.0f}s"
                    )
                self._state.wait(timeout=min(remaining, 0.5))
            return len(self._workers)

    def close(self) -> None:
        """Stop accepting workers, tell connected ones to shut down."""
        with self._state:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._state.notify_all()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass
        for worker in workers:
            try:
                worker.send((MSG_SHUTDOWN,))
            except OSError:
                pass
            try:
                # wakes a serving thread blocked in recv with a clean EOF
                worker.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistributedExecutor(address={self.bound_address!r}, workers={self.workers})"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_stalled(self, sweep: _SweepState) -> None:
        # caller holds self._state
        if self._closed:
            raise RuntimeError(
                "the executor was closed with "
                f"{len(sweep.items) - len(sweep.results)} cells outstanding"
            )
        if self._workers:
            return
        waited = time.monotonic() - sweep.last_progress
        if waited > self._worker_timeout:
            raise RuntimeError(
                f"sweep stalled: no workers connected for {waited:.0f}s "
                f"({len(sweep.results)} of {len(sweep.items)} cells buffered); "
                f"start workers with: repro-dist-worker --connect {self.bound_address}"
            )

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, address = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_worker, args=(sock,),
                name=f"dist-serve-{address[0]}:{address[1]}", daemon=True,
            ).start()

    def _serve_worker(self, sock: socket.socket) -> None:
        worker = None
        try:
            sock.settimeout(self._heartbeat_timeout)
            hello = protocol.recv_message(sock)
            if not (isinstance(hello, tuple) and hello and hello[0] == MSG_HELLO):
                raise ProtocolError(f"expected hello, got {hello!r}")
            name = str(hello[1]) if len(hello) > 1 else "worker"
            worker = _WorkerState(name=name, sock=sock)
            with self._state:
                if self._closed:
                    raise ConnectionClosed("executor is closed")
                self._workers.add(worker)
                if self._sweep is not None:
                    self._sweep.last_progress = time.monotonic()
                self._state.notify_all()
            logger.info("worker %s joined", worker.name)
            telemetry.emit("worker_join", peer=worker.name)
            self._worker_loop(worker)
        except (ConnectionClosed, ProtocolError, OSError, EOFError):
            # a vanished or misbehaving worker is an expected event; its
            # in-flight cell is re-queued below and the sweep carries on
            pass
        finally:
            with self._state:
                if worker is not None:
                    self._workers.discard(worker)
                    self._requeue_in_flight(worker)
                self._state.notify_all()
            if worker is not None:
                logger.info("worker %s left after %d cell(s)",
                            worker.name, worker.cells_done)
                telemetry.emit("worker_leave", peer=worker.name,
                               cells=worker.cells_done,
                               max_heartbeat_gap=worker.max_gap)
            try:
                sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    def _requeue_in_flight(self, worker: _WorkerState) -> None:
        # caller holds self._state
        if worker.in_flight is None:
            return
        generation, index = worker.in_flight
        worker.in_flight = None
        sweep = self._sweep
        if (sweep is not None and sweep.generation == generation
                and index not in sweep.results):
            # front of the queue: the ordered result stream is most likely
            # blocked on precisely this orphaned cell
            sweep.pending.appendleft(index)
            # the re-queue is progress: the zero-worker stall timer must
            # measure from this hand-back, not from the last *result* —
            # otherwise losing the only worker deep into a long cell makes
            # the timer fire before a replacement had its full grace period
            sweep.last_progress = time.monotonic()
            sweep.queued_since[index] = sweep.last_progress
            logger.warning("requeued cell %d from lost worker %s",
                           index, worker.name)
            telemetry.emit("requeue", peer=worker.name, index=index)

    def _next_task(self, worker: _WorkerState):
        """Block until a cell can be assigned; None means shut down."""
        with self._state:
            while True:
                if self._closed:
                    return None
                sweep = self._sweep
                if sweep is not None and sweep.error is None and sweep.pending:
                    index = sweep.pending.popleft()
                    worker.in_flight = (sweep.generation, index)
                    queued_at = sweep.queued_since.pop(index, time.monotonic())
                    return (sweep.generation, index, sweep.function,
                            sweep.items[index], queued_at)
                self._state.wait()

    def _worker_loop(self, worker: _WorkerState) -> None:
        sock = worker.sock
        while True:
            # the worker announces readiness promptly after hello/result,
            # so the heartbeat timeout applies here too
            sock.settimeout(self._heartbeat_timeout)
            message = protocol.recv_message(sock)
            worker.observe_recv()
            kind = message[0]
            if kind == MSG_HEARTBEAT:
                continue
            if kind != MSG_READY:
                raise ProtocolError(f"expected ready, got {kind!r}")
            task = self._next_task(worker)
            if task is None:
                worker.send((MSG_SHUTDOWN,))
                raise ConnectionClosed("executor closed")
            generation, index, function, item, queued_at = task
            worker.dispatched_at = time.monotonic()
            worker.send((MSG_TASK, generation, index, function, item))
            telemetry.emit("dispatch", peer=worker.name, index=index,
                           queue_wait=worker.dispatched_at - queued_at)
            # await the result; heartbeats keep the connection trusted
            # while the (possibly minutes-long) cell executes remotely
            while True:
                sock.settimeout(self._heartbeat_timeout)
                message = protocol.recv_message(sock)
                worker.observe_recv()
                kind = message[0]
                if kind == MSG_HEARTBEAT:
                    continue
                if kind == MSG_RESULT:
                    _, generation, index, payload = message
                    fill = None
                    with self._state:
                        worker.in_flight = None
                        worker.cells_done += 1
                        sweep = self._sweep
                        if sweep is not None and sweep.generation == generation:
                            sweep.results[index] = payload
                            sweep.last_progress = time.monotonic()
                            if self._cell_cache is not None:
                                fill = (sweep.function, sweep.items[index])
                        # a stale generation means the sweep this cell
                        # belonged to is gone; drop the payload silently
                        self._state.notify_all()
                    if fill is not None:
                        # disk write outside the lock: filling the cache
                        # must never stall dispatch to other workers
                        self._cell_cache.store(fill[0], fill[1], payload)
                    telemetry.emit(
                        "cell_result", peer=worker.name, index=index,
                        duration=time.monotonic() - worker.dispatched_at)
                    break
                if kind == MSG_TASK_ERROR:
                    _, generation, index, error = message
                    if not isinstance(error, BaseException):
                        error = RuntimeError(str(error))
                    with self._state:
                        worker.in_flight = None
                        sweep = self._sweep
                        if (sweep is not None and sweep.generation == generation
                                and sweep.error is None):
                            sweep.error = error
                        self._state.notify_all()
                    break
                raise ProtocolError(
                    f"unexpected message while awaiting a result: {kind!r}"
                )


# ----------------------------------------------------------------------
# console entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """``repro-dist-coordinator``: run a registry scenario over a cluster."""
    parser = argparse.ArgumentParser(
        prog="repro-dist-coordinator",
        description=(
            "Serve a named experiment sweep to repro-dist-worker processes "
            "and print the replicate-aggregate (mean ± CI) table."
        ),
    )
    parser.add_argument("scenario", help="registry scenario name (e.g. fig12_stationary)")
    parser.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="address to listen on (default: 127.0.0.1:0, ephemeral port)")
    parser.add_argument("--scale", default="benchmark",
                        choices=("smoke", "benchmark", "paper"),
                        help="experiment scale preset (default: benchmark)")
    parser.add_argument("--replicates", type=int, default=1,
                        help="independent replicates per cell (default: 1)")
    parser.add_argument("--min-workers", type=int, default=1,
                        help="wait for this many workers before starting (default: 1)")
    parser.add_argument("--worker-wait", type=float, default=300.0, metavar="SECONDS",
                        help="how long to wait for workers (default: 300)")
    parser.add_argument("--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
                        help="declare a silent worker dead after this long (default: 30)")
    parser.add_argument("--local-workers", type=int, default=0, metavar="N",
                        help="also spawn N worker subprocesses on this host")
    parser.add_argument("--archive", type=Path, default=None, metavar="DIR",
                        help="write a versioned JSON archive artifact into DIR")
    parser.add_argument("--confidence", type=float, default=0.95,
                        help="confidence level of the CI aggregation (default: 0.95)")
    parser.add_argument("--quiet", action="store_true",
                        help="log warnings and errors only")
    parser.add_argument("--verbose", action="store_true",
                        help="log debug diagnostics")
    args = parser.parse_args(argv)
    telemetry.configure_cli_logging(verbose=args.verbose, quiet=args.quiet)

    from repro.experiments.config import ExperimentScale
    from repro.experiments.report import format_aggregate_table
    from repro.runner.api import run_sweep

    scale = {
        "smoke": ExperimentScale.smoke,
        "benchmark": ExperimentScale.benchmark,
        "paper": ExperimentScale.paper,
    }[args.scale]()

    executor = DistributedExecutor(
        args.bind,
        heartbeat_timeout=args.heartbeat_timeout,
        worker_timeout=args.worker_wait,
    )
    logger.info("coordinator listening on %s", executor.bound_address)
    local_processes = []
    try:
        if args.local_workers:
            from repro.dist.cluster import spawn_local_workers

            local_processes = spawn_local_workers(
                executor.bound_address, args.local_workers
            )
        executor.wait_for_workers(max(args.min_workers, 1),
                                  timeout=args.worker_wait)
        logger.info("%d worker(s) connected; running %r at %s scale, "
                    "replicates=%d", executor.workers, args.scenario,
                    args.scale, args.replicates)
        started = time.monotonic()
        result = run_sweep(args.scenario, scale=scale,
                           replicates=args.replicates, executor=executor,
                           confidence=args.confidence)
        elapsed = time.monotonic() - started
        cells = len(result.results)
        if elapsed > 0:
            logger.info("%d cells in %.1fs (%.2f cells/s)",
                        cells, elapsed, cells / elapsed)
        else:
            logger.info("%d cells", cells)
        print(format_aggregate_table(result.aggregates))
        if args.archive is not None:
            from repro.dist.archive import build_archive, write_archive

            archive = build_archive(result, scenario=args.scenario,
                                    scale_name=args.scale,
                                    confidence=args.confidence)
            path = write_archive(archive, args.archive)
            logger.info("archive written to %s", path)
    finally:
        executor.close()
        for process in local_processes:
            try:
                process.wait(timeout=15)
            except Exception:
                process.kill()
                process.wait()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI CLI smoke
    raise SystemExit(main())
