"""Worker side of distributed sweep execution.

A :class:`Worker` connects to a coordinator, pulls one cell at a time
(``ready`` -> ``task``), executes it, and streams the result back.  While
a cell executes — seconds to minutes of pure simulation — a background
thread sends heartbeats so the coordinator keeps trusting the connection;
a worker that stops heartbeating (killed host, severed network) has its
in-flight cell re-queued there.

Cell failures go through the same
:func:`~repro.runner.errors.run_with_cell_context` path the
multiprocessing executor uses: the coordinator receives a
:class:`~repro.runner.errors.CellExecutionError` naming the failing cell,
not a bare remote traceback.  A worker survives its own cell errors — it
reports them and keeps serving.

``main`` is the ``repro-dist-worker`` console entry point (also runnable
as ``python -m repro.dist.worker``, which is how
:func:`~repro.dist.cluster.launch_local_cluster` spawns local workers).
``--fail-after-cells N`` is deliberate fault injection for the
fault-tolerance tests: the worker accepts its ``N+1``-th cell and then
dies abruptly (``os._exit``), exactly like a crashed host with a cell in
flight.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import threading
import time
from typing import Optional

from repro.dist import protocol
from repro.obs import telemetry
from repro.dist.protocol import (
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_READY,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    MSG_TASK_ERROR,
    ConnectionClosed,
    ProtocolError,
)
from repro.runner.errors import CellExecutionError, run_with_cell_context

logger = logging.getLogger("repro.dist.worker")


class Worker:
    """One cell-executing loop bound to a coordinator address."""

    def __init__(self, address: str, *,
                 name: Optional[str] = None,
                 heartbeat_interval: float = 1.0,
                 connect_retry: float = 0.0,
                 fail_after_cells: Optional[int] = None):
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        self.address = address
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.heartbeat_interval = float(heartbeat_interval)
        self.connect_retry = float(connect_retry)
        self.fail_after_cells = fail_after_cells
        #: cells executed over the worker's lifetime (successes and errors)
        self.cells_executed = 0

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        host, port = protocol.parse_address(self.address)
        deadline = time.monotonic() + self.connect_retry
        while True:
            try:
                return socket.create_connection((host, port))
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)

    def _heartbeat_loop(self, send, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                send((MSG_HEARTBEAT,))
            except OSError:
                return

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve cells until the coordinator shuts the connection down.

        Returns the number of cells executed.  A vanished coordinator ends
        the loop cleanly (the results it missed are simply lost — it is
        the coordinator that owns re-queueing, not the worker).
        """
        # telemetry spans emitted while executing cells (cell_execute) carry
        # the worker's announced name, matching the coordinator's logs
        telemetry.set_worker_name(self.name)
        sock = self._connect()
        send_lock = threading.Lock()

        def send(message) -> None:
            # the heartbeat thread shares the socket with the main loop;
            # the lock keeps frames whole on the wire
            with send_lock:
                protocol.send_message(sock, message)

        try:
            send((MSG_HELLO, self.name))
            while True:
                send((MSG_READY,))
                sock.settimeout(None)  # idle waits between sweeps are unbounded
                message = protocol.recv_message(sock)
                kind = message[0]
                if kind == MSG_SHUTDOWN:
                    return self.cells_executed
                if kind != MSG_TASK:
                    raise ProtocolError(f"expected a task, got {kind!r}")
                _, generation, index, function, item = message
                if (self.fail_after_cells is not None
                        and self.cells_executed >= self.fail_after_cells):
                    # fault injection: die like a crashed host, cell in flight
                    os._exit(17)
                stop = threading.Event()
                heartbeats = threading.Thread(
                    target=self._heartbeat_loop, args=(send, stop),
                    name="dist-heartbeat", daemon=True,
                )
                heartbeats.start()
                error = None
                payload = None
                try:
                    try:
                        payload = run_with_cell_context(function, item)
                    except CellExecutionError as exc:
                        error = exc
                finally:
                    stop.set()
                    heartbeats.join()
                if error is not None:
                    send((MSG_TASK_ERROR, generation, index, error))
                else:
                    send((MSG_RESULT, generation, index, payload))
                self.cells_executed += 1
        except (ConnectionClosed, ConnectionError, OSError):
            return self.cells_executed
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass


# ----------------------------------------------------------------------
# console entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """``repro-dist-worker``: join a coordinator and execute cells."""
    parser = argparse.ArgumentParser(
        prog="repro-dist-worker",
        description="Connect to a repro-dist-coordinator and execute sweep cells.",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to join")
    parser.add_argument("--name", default=None,
                        help="worker name shown by the coordinator (default: host-pid)")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="heartbeat period while executing a cell (default: 1)")
    parser.add_argument("--retry", type=float, default=0.0, metavar="SECONDS",
                        help="keep retrying the initial connection this long "
                             "(lets workers start before the coordinator)")
    # fault injection for the fault-tolerance tests; hidden from --help
    parser.add_argument("--fail-after-cells", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--quiet", action="store_true",
                        help="log warnings and errors only")
    parser.add_argument("--verbose", action="store_true",
                        help="log debug diagnostics")
    args = parser.parse_args(argv)
    telemetry.configure_cli_logging(verbose=args.verbose, quiet=args.quiet)

    worker = Worker(
        args.connect,
        name=args.name,
        heartbeat_interval=args.heartbeat_interval,
        connect_retry=args.retry,
        fail_after_cells=args.fail_after_cells,
    )
    cells = worker.run()
    logger.info("worker %s: executed %d cell(s)", worker.name, cells)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    raise SystemExit(main())
