"""Figure 14: trajectory of the Parabola Approximation controller under a jump.

Same scenario as the Figure 13 benchmark (the transaction size jumps
mid-run, moving the optimum), but with the PA controller.  The paper's
finding: "The PA algorithm needs some more time to respond but tracks the
optimum more accurately and reliably", with the oscillations of the
trajectory being enforced by the algorithm's need for excitation.

The runner's ``fig14_pa_jump`` scenario contains both the PA cell and the
IS reference cell on the *same* jump (independent cells, so with
``REPRO_BENCH_WORKERS>=2`` they run concurrently), and this benchmark
asserts the paper's comparison: PA's settled tracking error is no worse
than IS's.
"""

from conftest import run_once

from repro.experiments.config import ExperimentScale
from repro.experiments.report import format_comparison, format_series_table
from repro.experiments.tracking import compute_tracking_metrics
from repro.runner import run_sweep, tracking_results


def test_fig14_parabola_jump_trajectory(benchmark, scale, workers, replicates):
    def experiment():
        return run_sweep("fig14_pa_jump", scale=scale, workers=workers,
                         replicates=replicates)

    sweep_result = run_once(benchmark, experiment)
    trajectories = tracking_results(sweep_result)
    pa_result = trajectories["PA"]
    is_result = trajectories["IS"]
    disturbance = scale.tracking_horizon / 2.0
    evaluate_after = scale.tracking_horizon * 0.15
    pa_metrics = compute_tracking_metrics(pa_result, disturbance_time=disturbance,
                                          evaluate_after=evaluate_after)
    is_metrics = compute_tracking_metrics(is_result, disturbance_time=disturbance,
                                          evaluate_after=evaluate_after)

    print()
    print("Figure 14 — PA threshold trajectory under an abrupt workload change")
    print(format_series_table(pa_result, every=max(1, len(pa_result.trace) // 25)))
    print()
    print("IS vs PA on the same jump (paper: PA tracks more accurately):")
    print(format_comparison({"IS": is_metrics, "PA": pa_metrics}))

    benchmark.extra_info["pa_threshold_series"] = [
        (round(t, 2), round(limit, 1)) for t, limit in pa_result.threshold_series()]
    benchmark.extra_info["reference_series"] = [
        (round(t, 2), round(opt, 1)) for t, opt in pa_result.reference_series()]
    benchmark.extra_info["pa_mean_abs_error"] = round(pa_metrics.mean_absolute_error, 2)
    benchmark.extra_info["is_mean_abs_error"] = round(is_metrics.mean_absolute_error, 2)
    benchmark.extra_info["pa_throughput_ratio"] = round(pa_metrics.throughput_ratio, 3)
    benchmark.extra_info["is_throughput_ratio"] = round(is_metrics.throughput_ratio, 3)

    assert len(pa_result.trace) >= 10
    assert pa_result.total_commits > 0
    # "PA needs some more time to respond but tracks the optimum more
    # accurately and reliably": once the response transient is over (the last
    # third of the run, well after the jump) the PA threshold sits close to
    # the new optimum ...
    settled_start = scale.tracking_horizon * (2.0 / 3.0)
    pa_settled = compute_tracking_metrics(pa_result, evaluate_after=settled_start)
    # smoke runs are explicitly noisy (few measurement intervals after the
    # jump), so the settled-error band is wider there
    settle_band = 0.45 if scale == ExperimentScale.smoke() else 0.35
    assert pa_settled.mean_relative_error < settle_band, (
        "PA did not settle near the new optimum after the jump")
    # ... and it delivers useful work comparable to (or better than) IS
    assert pa_metrics.throughput_ratio >= 0.9 * is_metrics.throughput_ratio
    # probing keeps the PA trajectory moving (the "enforced oscillations")
    settled = pa_result.trace.limits[len(pa_result.trace.limits) // 2:]
    assert max(settled) - min(settled) > 0.0
