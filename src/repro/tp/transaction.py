"""Transaction records and lifecycle bookkeeping.

A :class:`Transaction` is a passive record describing one unit of work as it
circulates through the closed model: the granules it will access (with their
read/write modes), its class (query or updater) and the timestamps of the
interesting lifecycle events.  The *behaviour* lives in
:mod:`repro.tp.system`, which runs each transaction as a simulation process;
keeping the record passive makes it trivial to inspect in tests and to hand
to the concurrency control and displacement policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple


class TransactionClass(enum.Enum):
    """Workload classes of the paper: read-only queries and updaters."""

    QUERY = "query"
    UPDATER = "updater"


@dataclass
class Transaction:
    """One circulating transaction of the closed model."""

    #: unique identifier (stable across restarts of the same submission)
    txn_id: int
    #: terminal that submitted the transaction
    terminal_id: int
    #: query or updater
    txn_class: TransactionClass
    #: granules to access, in access order
    items: Tuple[int, ...]
    #: parallel to ``items``: True where the access is a write
    write_flags: Tuple[bool, ...]
    #: tenant (transaction class name) the submission belongs to; empty for
    #: the single-class workload — per-tenant admission quotas and SLO
    #: metrics key off this
    tenant: str = ""
    #: time the transaction was submitted to the admission gate
    submitted_at: float = 0.0
    #: time the transaction was admitted into the processing system
    admitted_at: Optional[float] = None
    #: time the current execution started
    execution_started_at: Optional[float] = None
    #: time the transaction committed (None while in progress)
    committed_at: Optional[float] = None
    #: number of times the execution was restarted (certification/deadlock)
    restarts: int = 0
    #: conflicts detected at the most recent certification attempt
    last_conflicts: int = 0
    #: read set of the current execution (maintained by the CC scheme)
    read_set: set = field(default_factory=set)
    #: write set of the current execution (maintained by the CC scheme)
    write_set: set = field(default_factory=set)
    #: scratch space for the concurrency control scheme (timestamps, ...)
    cc_state: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.items) != len(self.write_flags):
            raise ValueError(
                "items and write_flags must have the same length "
                f"({len(self.items)} vs {len(self.write_flags)})"
            )
        if self.txn_class is TransactionClass.QUERY and any(self.write_flags):
            raise ValueError("a read-only query cannot contain write accesses")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of data accesses (``k`` for this transaction)."""
        return len(self.items)

    @property
    def write_count(self) -> int:
        """Number of write accesses."""
        return sum(1 for flag in self.write_flags if flag)

    @property
    def is_read_only(self) -> bool:
        """True if the transaction performs no writes."""
        return self.write_count == 0

    @property
    def accesses(self) -> Sequence[Tuple[int, bool]]:
        """The (granule, is_write) pairs in access order."""
        return tuple(zip(self.items, self.write_flags))

    def response_time(self) -> Optional[float]:
        """Submission-to-commit latency, or None if not yet committed."""
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at

    def waiting_time(self) -> Optional[float]:
        """Time spent in the admission queue, or None if never admitted."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    # ------------------------------------------------------------------
    def start_execution(self, now: float) -> None:
        """Mark the beginning of a (re-)execution and clear per-run state."""
        self.execution_started_at = now
        self.read_set = set()
        self.write_set = set()
        self.cc_state = {}
        self.last_conflicts = 0

    def record_restart(self) -> None:
        """Count one abandoned execution."""
        self.restarts += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Transaction {self.txn_id} {self.txn_class.value} k={self.size} "
            f"writes={self.write_count} restarts={self.restarts}>"
        )
