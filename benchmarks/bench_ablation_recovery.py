"""Ablation (Section 5.2, Figures 7-8): upward-parabola recovery policies.

When the fitted parabola opens upward -- a flat hump (Figure 7) or an abrupt
shape change that leaves the system deep in the thrashing region (Figure 8)
-- the PA estimate is useless and the controller must apply a
countermeasure.  The paper lists several options without evaluating them;
this ablation compares the four implemented policies (HOLD, STEP, RESET,
BOUND) on a scenario engineered to produce upward parabolas: the optimum
jumps downward sharply, so the controller suddenly sits far beyond the new
optimum where the performance function is convex.
"""

from conftest import run_once

from repro.analytic.synthetic import DynamicOptimumScenario, SyntheticSystem
from repro.core.parabola import ParabolaController, RecoveryPolicy
from repro.experiments.report import format_table
from repro.tp.workload import ConstantSchedule, JumpSchedule


def _run_policy(policy, steps, seed):
    scenario = DynamicOptimumScenario(
        position=JumpSchedule(200.0, 50.0, jump_time=float(steps // 2)),
        height=ConstantSchedule(100.0),
        overload_decay=2.5)
    controller = ParabolaController(initial_limit=60, forgetting=0.85, probe_amplitude=4.0,
                                    max_move=40.0, recovery=policy, recovery_step=10.0,
                                    lower_bound=2, upper_bound=500)
    plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=2.0, seed=seed)
    plant.run(steps)
    post_jump = range(steps // 2, steps)
    errors = [abs(plant.trace.limits[i] - plant.reference_optima[i]) for i in post_jump]
    throughput = [plant.trace.throughput[i] for i in post_jump]
    return {
        "mean_error": sum(errors) / len(errors),
        "mean_throughput": sum(throughput) / len(throughput),
        "upward_events": controller.upward_parabola_events,
    }


def test_ablation_upward_parabola_recovery(benchmark, scale):
    steps = max(scale.synthetic_steps, 200)

    def experiment():
        return {policy.value: _run_policy(policy, steps, seed=53) for policy in RecoveryPolicy}

    results = run_once(benchmark, experiment)

    print()
    print("Ablation — recovery policies for upward-opening parabolas (Figures 7-8)")
    print(format_table(
        ["policy", "mean |n*-n_opt| after jump", "mean throughput after jump", "upward events"],
        [[name, row["mean_error"], row["mean_throughput"], row["upward_events"]]
         for name, row in results.items()]))

    for name, row in results.items():
        benchmark.extra_info[f"{name}_mean_error"] = round(row["mean_error"], 2)
        benchmark.extra_info[f"{name}_mean_throughput"] = round(row["mean_throughput"], 2)

    # the STEP policy (the default) must walk back out of the dead zone and
    # recover a substantial share of the achievable peak throughput
    assert results["step"]["mean_throughput"] > 0.4 * 100.0, "STEP recovery failed"
    # the BOUND policy ends up at the static lower bound: safe but slow, so it
    # recovers *some* throughput but clearly less than the adaptive policies
    assert 0.0 < results["bound"]["mean_throughput"] < results["step"]["mean_throughput"]
    # the scenario actually triggered the pathological case somewhere
    assert any(row["upward_events"] > 0 for row in results.values())
