"""Run-level metrics for the transaction processing model.

The measurement layer of the load controller (Section 5) works on *interval
deltas*: commits, aborts and response times observed since the previous
sample.  :class:`RunMetrics` therefore keeps monotone counters plus
per-interval accumulators that the measurement process resets after each
sample; the run totals remain available for final reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cc.base import AbortReason
from repro.sim.engine import Simulator
from repro.sim.stats import ObservationStats, P2Quantile, TimeWeightedStats


@dataclass(slots=True)
class IntervalCounters:
    """Deltas accumulated since the last measurement sample."""

    commits: int = 0
    aborts: int = 0
    restarts: int = 0
    conflicts: int = 0
    response_time_sum: float = 0.0
    response_time_count: int = 0

    def mean_response_time(self) -> float:
        """Mean response time of the commits in this interval (0 if none)."""
        if self.response_time_count == 0:
            return 0.0
        return self.response_time_sum / self.response_time_count


class RunMetrics:
    """Counters and statistics for one simulation run."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        # run totals
        self.commits = 0
        self.submitted = 0
        self.restarts = 0
        self.conflicts = 0
        self.aborts_by_reason: Dict[AbortReason, int] = {reason: 0 for reason in AbortReason}
        self.response_times = ObservationStats()
        self.waiting_times = ObservationStats()
        # streaming SLO percentiles of the response-time distribution; pure
        # functions of the commit sequence (no RNG), so accumulating them
        # unconditionally leaves every trajectory untouched
        self.response_p95 = P2Quantile(0.95)
        self.response_p99 = P2Quantile(0.99)
        #: per-tenant commit counts and SLO percentiles (tenant = class name;
        #: the single-class workload books everything under "")
        self.commits_by_tenant: Dict[str, int] = {}
        self.tenant_response_p95: Dict[str, P2Quantile] = {}
        self.tenant_response_p99: Dict[str, P2Quantile] = {}
        #: arrivals rejected outright by a tenant queue quota
        self.shed = 0
        self.shed_by_tenant: Dict[str, int] = {}
        self.concurrency = TimeWeightedStats(sim.now, 0.0)
        self.admission_queue = TimeWeightedStats(sim.now, 0.0)
        # interval accumulators for the measurement process
        self._interval = IntervalCounters()
        self._measurement_start = sim.now
        #: start of the run-level measured window: construction time, rebound
        #: by :meth:`reset` (the end of warm-up).  Rate metrics divide by
        #: ``now - measured_from`` — the same origin the counters use, so a
        #: caller can no longer pair the post-reset commit count with a
        #: mismatched window of their own choosing.
        self.measured_from = sim.now

    # ------------------------------------------------------------------
    # event recording (called by the transaction system)
    # ------------------------------------------------------------------
    def record_submission(self) -> None:
        """A terminal submitted a new transaction to the gate."""
        self.submitted += 1

    def record_admission(self, waiting_time: float) -> None:
        """A transaction left the admission queue and entered the system."""
        self.waiting_times.add(waiting_time)

    def record_commit(self, response_time: float, conflicts: int = 0,
                      tenant: str = "") -> None:
        """A transaction committed with the given submission-to-commit latency."""
        self.commits += 1
        self.response_times.add(response_time)
        self.response_p95.add(response_time)
        self.response_p99.add(response_time)
        self.commits_by_tenant[tenant] = self.commits_by_tenant.get(tenant, 0) + 1
        p95 = self.tenant_response_p95.get(tenant)
        if p95 is None:
            p95 = self.tenant_response_p95[tenant] = P2Quantile(0.95)
            self.tenant_response_p99[tenant] = P2Quantile(0.99)
        p95.add(response_time)
        self.tenant_response_p99[tenant].add(response_time)
        interval = self._interval
        interval.commits += 1
        interval.response_time_sum += response_time
        interval.response_time_count += 1
        interval.conflicts += conflicts
        self.conflicts += conflicts

    def record_shed(self, tenant: str = "") -> None:
        """An arrival was rejected outright by a tenant queue quota."""
        self.shed += 1
        self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1

    def record_abort(self, reason: AbortReason, conflicts: int = 0) -> None:
        """An execution was abandoned (it may restart afterwards)."""
        self.aborts_by_reason[reason] += 1
        interval = self._interval
        interval.aborts += 1
        if reason is not AbortReason.DISPLACEMENT:
            self.restarts += 1
            interval.restarts += 1
        self.conflicts += conflicts
        interval.conflicts += conflicts

    def record_concurrency(self, level: float) -> None:
        """The number of admitted (in-system) transactions changed."""
        self.concurrency.update(self.sim.now, level)

    def record_admission_queue(self, length: float) -> None:
        """The admission queue length changed."""
        self.admission_queue.update(self.sim.now, length)

    # ------------------------------------------------------------------
    # interval handling for the measurement process
    # ------------------------------------------------------------------
    def snapshot_interval(self) -> IntervalCounters:
        """Return and reset the per-interval accumulators."""
        interval = self._interval
        self._interval = IntervalCounters()
        self._measurement_start = self.sim.now
        return interval

    @property
    def interval_start(self) -> float:
        """Start time of the currently accumulating interval."""
        return self._measurement_start

    # ------------------------------------------------------------------
    # derived run-level quantities
    # ------------------------------------------------------------------
    def throughput(self) -> float:
        """Committed transactions per second over the measured window.

        The window runs from :attr:`measured_from` (construction, or the
        last :meth:`reset`) to now — exactly the span over which
        :attr:`commits` has been counting.
        """
        horizon = self.sim.now - self.measured_from
        if horizon <= 0:
            return 0.0
        return self.commits / horizon

    @property
    def total_aborts(self) -> int:
        """Abandoned executions of any kind."""
        return sum(self.aborts_by_reason.values())

    @property
    def restart_ratio(self) -> float:
        """Abandoned executions per commit (wasted work indicator)."""
        if self.commits == 0:
            return 0.0
        return self.restarts / self.commits

    @property
    def conflict_ratio(self) -> float:
        """Certification conflicts per commit."""
        if self.commits == 0:
            return 0.0
        return self.conflicts / self.commits

    def mean_response_time(self) -> float:
        """Mean submission-to-commit latency over the run."""
        return self.response_times.mean

    @property
    def p95_response_time(self) -> float:
        """Streaming 95th-percentile submission-to-commit latency."""
        return self.response_p95.value

    @property
    def p99_response_time(self) -> float:
        """Streaming 99th-percentile submission-to-commit latency.

        The two percentiles are tracked by *independent* P² estimators,
        and their approximations can cross slightly under heavy-tailed
        overload; the reported tail is clamped to the 95th so the
        ``p95 <= p99`` invariant holds for consumers.
        """
        return max(self.response_p99.value, self.response_p95.value)

    def mean_concurrency(self) -> float:
        """Time-averaged number of admitted transactions."""
        return self.concurrency.mean(self.sim.now)

    def reset(self) -> None:
        """Forget everything recorded so far (end of warm-up)."""
        current_concurrency = self.concurrency.current
        current_queue = self.admission_queue.current
        self.__init__(self.sim)
        self.concurrency.update(self.sim.now, current_concurrency)
        self.admission_queue.update(self.sim.now, current_queue)
        self.concurrency.reset(self.sim.now)
        self.admission_queue.reset(self.sim.now)
