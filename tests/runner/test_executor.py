"""Executor tests, including the serial/parallel determinism guarantee."""

import pickle

import pytest

from repro.experiments.config import ExperimentScale, default_system_params
from repro.experiments.dynamic import jump_scenario
from repro.runner.cells import execute_run_spec
from repro.runner.errors import (
    CellExecutionError,
    describe_item,
    run_with_cell_context,
)
from repro.runner.executor import ParallelExecutor, SerialExecutor, make_executor
from repro.runner.specs import (
    KIND_STATIONARY,
    KIND_TRACKING,
    ControllerSpec,
    RunSpec,
    SweepSpec,
)

#: a scale small enough that a whole determinism sweep runs in seconds
TINY = ExperimentScale(
    stationary_horizon=2.0,
    warmup=0.5,
    offered_loads=(10, 30),
    tracking_horizon=12.0,
    measurement_interval=2.0,
    synthetic_steps=30,
)


def _mixed_sweep() -> SweepSpec:
    """Stationary and tracking cells, controlled and uncontrolled."""
    base = default_system_params()
    cells = [
        RunSpec(kind=KIND_STATIONARY, cell_id=f"mix/none/N={load}",
                params=base.with_changes(n_terminals=load), scale=TINY,
                controller=None, label="none")
        for load in TINY.offered_loads
    ]
    cells.extend(
        RunSpec(kind=KIND_STATIONARY, cell_id=f"mix/pa/N={load}",
                params=base.with_changes(n_terminals=load), scale=TINY,
                controller=ControllerSpec.make("parabola"), label="pa")
        for load in TINY.offered_loads
    )
    scenario = jump_scenario("accesses", 4, 8, jump_time=TINY.tracking_horizon / 2.0)
    cells.append(
        RunSpec(kind=KIND_TRACKING, cell_id="mix/is-jump",
                params=base.with_changes(n_terminals=60), scale=TINY,
                controller=ControllerSpec.make("incremental_steps"),
                scenario=scenario, label="is-jump")
    )
    return SweepSpec(name="mix", cells=tuple(cells))


def _double(value):
    return 2 * value


class TestMakeExecutor:
    def test_zero_and_one_are_serial(self):
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_is_parallel(self):
        executor = make_executor(4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_executor(-1)

    def test_parallel_requires_two(self):
        with pytest.raises(ValueError, match=">= 2"):
            ParallelExecutor(workers=1)


class TestOrderingAndStreaming:
    def test_serial_preserves_order(self):
        assert SerialExecutor().execute(_double, range(10)) == [2 * i for i in range(10)]

    def test_parallel_preserves_order(self):
        assert ParallelExecutor(workers=4).execute(_double, range(32)) == \
            [2 * i for i in range(32)]

    def test_parallel_empty_items(self):
        assert ParallelExecutor(workers=2).execute(_double, []) == []

    def test_serial_map_is_lazy(self):
        calls = []

        def record(value):
            calls.append(value)
            return value

        iterator = SerialExecutor().map(record, [1, 2, 3])
        assert calls == []
        assert next(iterator) == 1
        assert calls == [1]


def _explode(item):
    raise ValueError("injected cell failure")


class TestCellErrorWrapping:
    """A worker crash must name the failing cell, not dump a bare traceback."""

    def test_parallel_failure_names_the_cell(self):
        sweep = _mixed_sweep()
        with pytest.raises(CellExecutionError) as caught:
            ParallelExecutor(workers=2).execute(_explode, sweep.cells)
        first = sweep.cells[0]
        assert caught.value.cell_id == first.cell_id
        message = str(caught.value)
        assert first.cell_id in message
        assert f"N={first.params.n_terminals}" in message
        assert "ValueError: injected cell failure" in message

    def test_error_survives_pickling(self):
        error = CellExecutionError("cell 'x' failed: boom", cell_id="x")
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.cell_id == "x"

    def test_run_with_cell_context_passes_results_through(self):
        assert run_with_cell_context(_double, 21) == 42

    def test_run_with_cell_context_does_not_double_wrap(self):
        def reraise(_item):
            raise CellExecutionError("already wrapped", cell_id="inner")

        with pytest.raises(CellExecutionError, match="already wrapped") as caught:
            run_with_cell_context(reraise, object())
        assert caught.value.cell_id == "inner"

    def test_describe_item_falls_back_to_repr(self):
        assert describe_item(42) == "42"
        long_item = "x" * 500
        assert len(describe_item(long_item)) <= 200

    def test_serial_executor_raises_the_original_exception(self):
        # serially the failure unwinds directly into the caller's stack,
        # which is already debuggable; only fan-out executors wrap
        with pytest.raises(ValueError, match="injected cell failure"):
            SerialExecutor().execute(_explode, _mixed_sweep().cells)


class TestDeterminism:
    """Acceptance: workers=0 and workers=4 produce identical cells, bitwise."""

    def test_parallel_matches_serial_bitwise(self):
        sweep = _mixed_sweep()
        serial = SerialExecutor().execute(execute_run_spec, sweep.cells)
        parallel = ParallelExecutor(workers=4).execute(execute_run_spec, sweep.cells)

        assert [r.cell_id for r in serial] == [r.cell_id for r in parallel]
        for left, right in zip(serial, parallel):
            # exact equality, not approx: the runs must be bitwise identical
            assert left.metrics == right.metrics, left.cell_id

        # the tracking payload must match sample by sample as well
        left_track = serial[-1].payload
        right_track = parallel[-1].payload
        assert left_track.trace.times == right_track.trace.times
        assert left_track.trace.limits == right_track.trace.limits
        assert left_track.trace.throughput == right_track.trace.throughput

    def test_stateful_policies_do_not_leak_between_cells(self):
        # displacement policies and interval tuners accumulate run state;
        # replicate expansion shares the spec's instances, so the executor
        # must isolate them per execution or serial and parallel runs diverge
        from repro.core.displacement import DisplacementPolicy, VictimCriterion
        from repro.core.outer_loop import MeasurementIntervalTuner

        base = default_system_params()
        scenario = jump_scenario("accesses", 4, 8, jump_time=TINY.tracking_horizon / 2.0)
        cell = RunSpec(
            kind=KIND_TRACKING, cell_id="tuner/pa", params=base.with_changes(n_terminals=60),
            scale=TINY, controller=ControllerSpec.make("parabola"),
            scenario=scenario, label="pa",
            displacement=DisplacementPolicy(criterion=VictimCriterion.YOUNGEST),
            interval_tuner=MeasurementIntervalTuner(target_departures=None,
                                                    relative_accuracy=0.2),
        )
        sweep = SweepSpec(name="tuner", cells=(cell,)).with_replicates(3)
        serial = SerialExecutor().execute(execute_run_spec, sweep.cells)
        parallel = ParallelExecutor(workers=3).execute(execute_run_spec, sweep.cells)
        for left, right in zip(serial, parallel):
            assert left.metrics == right.metrics, left.replicate

    def test_replicates_are_deterministic_and_distinct(self):
        sweep = SweepSpec(name="rep", cells=(_mixed_sweep().cells[0],)).with_replicates(3)
        first = SerialExecutor().execute(execute_run_spec, sweep.cells)
        second = ParallelExecutor(workers=3).execute(execute_run_spec, sweep.cells)
        for left, right in zip(first, second):
            assert left.metrics == right.metrics
        # different replicates see different variates (independent streams)
        throughputs = [result.metrics["throughput"] for result in first]
        assert len(set(throughputs)) > 1
