"""Running a fuzz campaign: generate → lower → execute → score → archive.

:func:`run_campaign` is the fuzzer's single entry point.  It is
deterministic end to end: the candidate stream is a pure function of
``(seed, budget, kinds)`` (:mod:`repro.fuzz.generator`), every lowered cell
seeds its own random streams from its spec (so serial, parallel and
distributed execution are bitwise identical — the runner's standing
guarantee), and the verdicts are pure functions of the metrics.  Two
campaigns with the same arguments therefore find the same counterexamples
and archive byte-identical documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentScale
from repro.fuzz.adversaries import AdversarySpec
from repro.fuzz.corpus import Counterexample
from repro.fuzz.generator import generate_candidates
from repro.fuzz.oracle import FailureThresholds, Verdict, score_run
from repro.runner.cells import CellResult, execute_run_spec
from repro.runner.executor import make_executor
from repro.runner.specs import RunSpec


@dataclass
class FuzzReport:
    """Everything one campaign did, in candidate order."""

    seed: int
    budget: int
    #: (adversary, lowered cell) pairs, in generation order
    candidates: List[Tuple[AdversarySpec, RunSpec]] = field(default_factory=list)
    #: executed cell results, in candidate order
    results: List[CellResult] = field(default_factory=list)
    #: one verdict per candidate, in candidate order
    verdicts: List[Verdict] = field(default_factory=list)
    #: the failing candidates, ready for the corpus
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def found(self) -> int:
        """Number of counterexamples the campaign found."""
        return len(self.counterexamples)


def run_campaign(seed: int, budget: int,
                 scale: Optional[ExperimentScale] = None,
                 workers: int = 0,
                 thresholds: Optional[FailureThresholds] = None,
                 kinds: Optional[Sequence[str]] = None,
                 executor=None,
                 service_address: Optional[str] = None) -> FuzzReport:
    """Search ``budget`` adversarial candidates for controller failures.

    ``executor`` overrides the worker-count seam (any object with the
    runner's ``execute(function, items)`` interface); otherwise ``workers``
    selects the serial (0/1) or process-parallel executor exactly as
    :func:`repro.runner.executor.make_executor` does for sweeps.
    ``service_address`` instead routes the campaign's cells through a
    running sweep service's control plane (:mod:`repro.svc`): candidates
    any earlier campaign or sweep already simulated are served from the
    service's content-addressed cache — bit-identical to a fresh run, so
    verdicts and archived counterexamples are unchanged byte for byte.
    """
    scale = scale or ExperimentScale.smoke()
    thresholds = thresholds or FailureThresholds()
    adversaries = generate_candidates(seed, budget, kinds)
    cells = [adversary.lower(scale) for adversary in adversaries]
    if executor is not None and service_address is not None:
        raise TypeError("pass either executor= or service_address=, not both")
    if executor is None:
        if service_address is not None:
            from repro.svc.client import ServiceExecutor

            executor = ServiceExecutor(service_address,
                                       name=f"fuzz-seed{seed}-budget{budget}")
        else:
            executor = make_executor(workers)
    results = executor.execute(execute_run_spec, cells)
    report = FuzzReport(seed=seed, budget=budget,
                        candidates=list(zip(adversaries, cells)),
                        results=results)
    for adversary, cell, result in zip(adversaries, cells, results):
        verdict = score_run(cell, result.metrics, thresholds)
        report.verdicts.append(verdict)
        if verdict.failed:
            report.counterexamples.append(Counterexample(
                adversary=adversary,
                spec=cell,
                verdict=verdict,
                metrics=dict(result.metrics),
            ))
    return report
