"""Stdlib HTTP/JSON control plane over a running sweep service.

A thin, dependency-free veneer (``http.server``) over the same
:class:`~repro.svc.service.SweepService` job API the TCP control plane
exposes, for callers that prefer ``curl`` to pickles:

* ``GET /health`` — liveness plus the connected worker count;
* ``POST /jobs`` — submit a job; the JSON body is either
  ``{"scenario": name, "scale": "smoke", "replicates": 1}`` (lowered
  server-side through the registry) or ``{"name": ..., "cells": [...]}``
  with :func:`~repro.runner.specs.run_spec_from_jsonable` documents;
* ``GET /jobs`` — every job's status, ``GET /jobs/<id>`` — one job's;
* ``GET /jobs/<id>/results`` — the deterministic results document of a
  finished job (409 while queued/running);
* ``GET /cache`` — the content-addressed cache's counters.

Error mapping: unknown paths and job ids are 404, malformed bodies 400,
results of unfinished jobs 409 — all with a JSON ``{"error": ...}`` body.
Responses use the repository's canonical JSON encoding, so a warm job's
``/results`` bytes equal the cold run's.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.canonical import canonical_json
from repro.runner.specs import run_spec_from_jsonable
from repro.svc.service import SweepService

logger = logging.getLogger("repro.svc.http")

#: cap request bodies well below anything a legitimate submission needs
MAX_BODY_BYTES = 64 << 20


def _make_handler(service: SweepService):
    """Bind a request-handler class to one service instance."""

    class ControlHandler(BaseHTTPRequestHandler):
        """One HTTP request against the service's job API."""

        server_version = "repro-svc/1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            logger.debug("%s - %s", self.address_string(), format % args)

        def _reply(self, status: int, payload) -> None:
            body = (canonical_json(payload) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._reply(status, {"error": message})

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            parts = [part for part in self.path.split("/") if part]
            try:
                if parts == ["health"]:
                    self._reply(200, {"status": "ok",
                                      "workers": service.executor.workers})
                elif parts == ["cache"]:
                    self._reply(200, service.cache_stats())
                elif parts == ["jobs"]:
                    self._reply(200, service.status())
                elif len(parts) == 2 and parts[0] == "jobs":
                    self._reply(200, service.status(parts[1]))
                elif (len(parts) == 3 and parts[0] == "jobs"
                        and parts[2] == "results"):
                    self._reply(200, service.results(parts[1]))
                else:
                    self._error(404, f"unknown path {self.path!r}")
            except KeyError as exc:
                self._error(404, str(exc.args[0]) if exc.args else str(exc))
            except RuntimeError as exc:
                self._error(409, str(exc))

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            parts = [part for part in self.path.split("/") if part]
            if parts != ["jobs"]:
                self._error(404, f"unknown path {self.path!r}")
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                if not 0 < length <= MAX_BODY_BYTES:
                    raise ValueError(f"bad Content-Length {length}")
                body = json.loads(self.rfile.read(length).decode("utf-8"))
                if "cells" in body:
                    cells = [run_spec_from_jsonable(cell)
                             for cell in body["cells"]]
                    job_id = service.submit(body.get("name", "http-job"),
                                            cells)
                else:
                    job_id = service.submit_scenario(
                        body["scenario"],
                        scale=body.get("scale", "smoke"),
                        replicates=int(body.get("replicates", 1)),
                    )
            except (KeyError, TypeError, ValueError) as exc:
                self._error(400, f"bad submission: {exc}")
                return
            except RuntimeError as exc:
                self._error(409, str(exc))
                return
            self._reply(201, {"job_id": job_id})

    return ControlHandler


def make_http_server(service: SweepService,
                     address: str = "127.0.0.1:0") -> ThreadingHTTPServer:
    """Bind the HTTP control plane; caller runs ``serve_forever`` (or a thread).

    Returns the bound server; its actual port is ``server.server_address``.
    """
    from repro.dist.protocol import parse_address

    host, port = parse_address(address)
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    server.daemon_threads = True
    return server
