"""In-process coverage of the sweep service, its control planes and CLI.

The soundness and recovery guarantees live in ``test_cache_soundness.py``
and ``test_crash_recovery.py``; this module covers the machinery around
them: FIFO queue semantics, per-request error mapping on both control
planes (TCP and HTTP), the cache's degradation paths (corrupt entries,
foreign functions), the telemetry spans, fuzz-campaign routing, and the
``repro-svc`` CLI end to end (``serve`` runs in a thread here so the
coverage gate sees it; the subprocess path is exercised by the
crash-recovery test).
"""

import dataclasses
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.canonical import canonical_json
from repro.dist.worker import Worker
from repro.experiments.config import ExperimentScale
from repro.obs.telemetry import telemetry_to
from repro.runner.cells import execute_run_spec
from repro.runner.executor import SerialExecutor
from repro.runner.registry import build_sweep
from repro.runner.specs import ControllerSpec
from repro.svc.cache import ResultCache
from repro.svc.cli import main as svc_main
from repro.svc.client import ServiceClient, ServiceError, ServiceExecutor
from repro.svc.http import make_http_server
from repro.svc.service import SweepService, results_document


def _thread_worker(address: str) -> threading.Thread:
    worker = Worker(address, connect_retry=30.0)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return thread


@pytest.fixture(scope="module")
def cells():
    return list(build_sweep("thrashing", scale=ExperimentScale.smoke()).cells)


@pytest.fixture(scope="module")
def serial_results(cells):
    return SerialExecutor().execute(execute_run_spec, cells)


@pytest.fixture()
def service(tmp_path):
    with SweepService(cache=tmp_path / "cache") as svc:
        _thread_worker(svc.worker_address)
        svc.executor.wait_for_workers(1)
        yield svc


class TestJobLifecycle:
    def test_submit_runs_and_results_match_a_serial_run(self, service, cells,
                                                        serial_results):
        client = ServiceClient(service.control_address)
        job_id = client.submit("direct", cells)
        status = client.wait(job_id, timeout=120.0)
        assert status["state"] == "done"
        assert status["n_cells"] == len(cells)
        assert canonical_json(client.results(job_id)) == \
            canonical_json(results_document("direct", serial_results))
        raw = client.result_cells(job_id)
        assert [r.metrics for r in raw] == [r.metrics for r in serial_results]

    def test_jobs_run_fifo_and_queue_positions_are_reported(self, tmp_path,
                                                            cells):
        # no workers: the first job occupies the executor, the rest queue
        with SweepService(cache=tmp_path / "q") as svc:
            client = ServiceClient(svc.control_address)
            first = client.submit("first", cells)
            second = client.submit("second", cells)
            third = client.submit("third", cells)
            import time
            for _ in range(100):
                if client.status(first)["state"] == "running":
                    break
                time.sleep(0.02)
            assert client.status(first)["state"] == "running"
            assert client.status(second)["state"] == "queued"
            assert client.status(second)["position"] == 0
            assert client.status(third)["position"] == 1
            everything = client.status()
            assert [job["job_id"] for job in everything] == \
                [first, second, third]
            # a busy service queues rather than rejects; results of an
            # unfinished job are refused, not blocked on
            with pytest.raises(ServiceError, match="not done"):
                client.results(first)

    def test_failed_job_is_recorded_and_service_survives(self, service,
                                                         cells):
        client = ServiceClient(service.control_address)
        broken = [dataclasses.replace(
            cells[0], controller=ControllerSpec.make("no-such-controller"))]
        job_id = client.submit("broken", broken)
        status = client.wait(job_id, timeout=120.0)
        assert status["state"] == "failed"
        assert "no-such-controller" in status["error"]
        with pytest.raises(ServiceError, match="failed"):
            client.results(job_id)
        # the failure is not cached and the service keeps serving
        follow_up = client.submit("after-failure", cells[:1])
        assert client.wait(follow_up, timeout=120.0)["state"] == "done"

    def test_submission_validates_cell_types(self, service):
        with pytest.raises(TypeError):
            service.submit("bad", ["not a RunSpec"])
        client = ServiceClient(service.control_address)
        with pytest.raises(ServiceError, match="RunSpec"):
            client.submit("bad", ["not a RunSpec"])

    def test_unknown_job_ids_are_refused(self, service):
        client = ServiceClient(service.control_address)
        for request in (lambda: client.status("job-999"),
                        lambda: client.results("job-999"),
                        lambda: client.result_cells("job-999")):
            with pytest.raises(ServiceError, match="job-999"):
                request()

    def test_uncached_service_reports_cache_disabled(self, tmp_path, cells):
        with SweepService() as svc:
            _thread_worker(svc.worker_address)
            svc.executor.wait_for_workers(1)
            client = ServiceClient(svc.control_address)
            assert client.cache_stats() == {"enabled": False}
            job_id = client.submit("uncached", cells[:1])
            status = client.wait(job_id, timeout=120.0)
            assert status["state"] == "done"
            assert status["cache_hits"] == status["cache_misses"] == 0

    def test_shutdown_request_closes_the_service(self, tmp_path):
        svc = SweepService(cache=tmp_path / "s")
        client = ServiceClient(svc.control_address)
        assert client.shutdown() == "shutting down"
        import time
        for _ in range(100):
            if svc.closed:
                break
            time.sleep(0.02)
        assert svc.closed
        with pytest.raises(RuntimeError, match="shut down"):
            svc.submit("late", [])


class TestServiceExecutor:
    def test_routes_a_fuzz_campaign_with_cache_reuse(self, tmp_path):
        from repro.fuzz.executor import run_campaign

        with SweepService(cache=tmp_path / "fuzz") as svc:
            _thread_worker(svc.worker_address)
            svc.executor.wait_for_workers(1)
            direct = run_campaign(seed=5, budget=2)
            routed = run_campaign(seed=5, budget=2,
                                  service_address=svc.control_address)
            # bit-identical verdicts and metrics through the service
            assert [v.failed for v in routed.verdicts] == \
                [v.failed for v in direct.verdicts]
            assert [r.metrics for r in routed.results] == \
                [r.metrics for r in direct.results]
            # a repeat campaign is served entirely from the cache
            repeat = run_campaign(seed=5, budget=2,
                                  service_address=svc.control_address)
            assert [r.metrics for r in repeat.results] == \
                [r.metrics for r in direct.results]
            client = ServiceClient(svc.control_address)
            last = client.status()[-1]
            assert last["cache_hits"] == last["n_cells"]
            assert last["cache_misses"] == 0

    def test_rejects_foreign_functions_and_mixed_seams(self, service, cells):
        executor = ServiceExecutor(service.control_address)
        with pytest.raises(ValueError, match="execute_run_spec"):
            executor.execute(len, cells)
        assert executor.execute(execute_run_spec, []) == []
        from repro.fuzz.executor import run_campaign

        with pytest.raises(TypeError, match="not both"):
            run_campaign(seed=1, budget=1, executor=SerialExecutor(),
                         service_address=service.control_address)


class TestTelemetry:
    def test_cache_and_job_spans_are_emitted(self, tmp_path, cells):
        sink_path = tmp_path / "telemetry.jsonl"
        with telemetry_to(str(sink_path)):
            with SweepService(cache=tmp_path / "cache") as svc:
                _thread_worker(svc.worker_address)
                svc.executor.wait_for_workers(1)
                client = ServiceClient(svc.control_address)
                client.wait(client.submit("cold", cells[:1]), timeout=120.0)
                client.wait(client.submit("warm", cells[:1]), timeout=120.0)
        spans = [json.loads(line)
                 for line in sink_path.read_text().splitlines()]
        by_name = {}
        for record in spans:
            by_name.setdefault(record["span"], []).append(record)
        assert len(by_name["job_submit"]) == 2
        assert by_name["job_submit"][0]["name"] == "cold"
        [miss] = by_name["cache_miss"]
        [hit] = by_name["cache_hit"]
        # the content-addressed key is the same spec both times
        assert hit["key"] == miss["key"]
        assert hit["cell_id"] == cells[0].cell_id


class TestCacheDegradation:
    def test_corrupt_entry_is_a_miss_and_heals_on_refill(self, tmp_path,
                                                         cells,
                                                         serial_results):
        cache = ResultCache(tmp_path)
        key = cache.put(cells[0], serial_results[0])
        assert cache.get(cells[0]).metrics == serial_results[0].metrics
        cache.path_for(key).write_bytes(b"torn write")
        assert cache.get(cells[0]) is None  # degraded, not raised
        cache.put(cells[0], serial_results[0])
        assert cache.get(cells[0]).metrics == serial_results[0].metrics
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["stores"] == 2 and stats["entries"] == 1

    def test_seam_ignores_foreign_functions_and_items(self, tmp_path, cells):
        cache = ResultCache(tmp_path)
        cache.store(len, cells[0], "nonsense")
        assert cache.entries() == 0
        assert cache.lookup(len, cells[0]) is None
        assert cache.lookup(execute_run_spec, "not a spec") is None
        # none of that touched the hit/miss accounting
        assert cache.stats()["hits"] == cache.stats()["misses"] == 0


class TestHttpControlPlane:
    @pytest.fixture()
    def http_base(self, service):
        server = make_http_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()

    def _get(self, url):
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())

    def _post(self, url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_submit_status_results_health_cache(self, service, http_base,
                                                cells, serial_results):
        status, health = self._get(http_base + "/health")
        assert (status, health) == (200, {"status": "ok", "workers": 1})
        status, created = self._post(http_base + "/jobs",
                                     {"scenario": "thrashing"})
        assert status == 201
        job_id = created["job_id"]
        client = ServiceClient(service.control_address)
        client.wait(job_id, timeout=120.0)
        status, listing = self._get(http_base + "/jobs")
        assert any(job["job_id"] == job_id for job in listing)
        status, job = self._get(f"{http_base}/jobs/{job_id}")
        assert job["state"] == "done"
        status, document = self._get(f"{http_base}/jobs/{job_id}/results")
        assert canonical_json(document) == \
            canonical_json(results_document("thrashing", serial_results))
        status, stats = self._get(http_base + "/cache")
        assert stats["enabled"] and stats["stores"] >= len(cells)

    def test_submission_by_explicit_cell_documents(self, service, http_base,
                                                   cells):
        from repro.runner.specs import run_spec_to_jsonable

        payload = {"name": "by-cells",
                   "cells": [run_spec_to_jsonable(cells[0])]}
        status, created = self._post(http_base + "/jobs", payload)
        assert status == 201
        final = ServiceClient(service.control_address).wait(
            created["job_id"], timeout=120.0)
        assert final["state"] == "done" and final["n_cells"] == 1

    @pytest.mark.parametrize("path", ["/nope", "/jobs/job-999",
                                      "/jobs/job-999/results"])
    def test_unknown_paths_and_jobs_are_404(self, http_base, path):
        with pytest.raises(urllib.error.HTTPError) as caught:
            self._get(http_base + path)
        assert caught.value.code == 404

    def test_malformed_submissions_are_400(self, http_base):
        for payload in ({}, {"scenario": "no-such-scenario"},
                        {"scenario": "thrashing", "scale": "bogus"}):
            with pytest.raises(urllib.error.HTTPError) as caught:
                self._post(http_base + "/jobs", payload)
            assert caught.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as caught:
            self._post(http_base + "/nope", {"scenario": "thrashing"})
        assert caught.value.code == 404


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestCli:
    def test_serve_and_every_client_subcommand(self, tmp_path, capsys):
        control = f"127.0.0.1:{_free_port()}"
        http = f"127.0.0.1:{_free_port()}"
        serve = threading.Thread(
            target=svc_main,
            args=(["serve", "--control", control, "--http", http,
                   "--cache", str(tmp_path / "cache"),
                   "--local-workers", "1", "--min-workers", "1"],),
            daemon=True)
        serve.start()
        client = ServiceClient(control)
        import time
        for _ in range(300):
            try:
                client.cache_stats()
                break
            except OSError:
                time.sleep(0.1)
        else:
            pytest.fail("serve thread never opened its control port")

        assert svc_main(["submit", "--address", control, "thrashing",
                         "--wait"]) == 0
        out = capsys.readouterr().out
        assert "job-1" in out and '"state": "done"' in out
        assert svc_main(["status", "--address", control, "job-1"]) == 0
        assert '"cache_misses": 3' in capsys.readouterr().out
        assert svc_main(["status", "--address", control]) == 0
        assert svc_main(["results", "--address", control, "job-1"]) == 0
        assert '"cells"' in capsys.readouterr().out
        assert svc_main(["cache", "--address", control]) == 0
        assert '"stores": 3' in capsys.readouterr().out
        assert svc_main(["shutdown", "--address", control]) == 0
        serve.join(timeout=30)
        assert not serve.is_alive()

    def test_submit_wait_exits_nonzero_on_failure(self, tmp_path, capsys):
        # a service with no workers and a tiny stall budget: the job fails
        with SweepService(cache=tmp_path / "f", worker_timeout=0.6) as svc:
            assert svc_main(["submit", "--address", svc.control_address,
                             "thrashing", "--wait", "--timeout", "60"]) == 1
            assert '"state": "failed"' in capsys.readouterr().out

    def test_exit_after_fills_requires_a_cache(self):
        with pytest.raises(SystemExit, match="requires --cache"):
            svc_main(["serve", "--exit-after-fills", "1"])
