"""Tests for FCFS resources and stores."""

import pytest

from repro.sim.engine import Interrupt, SimulationError, Simulator
from repro.sim.resources import Resource, Store


class TestResourceBasics:
    def test_capacity_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, 0)

    def test_grant_immediately_when_capacity_available(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        first = resource.request()
        second = resource.request()
        assert first.granted and second.granted
        assert resource.in_use == 2
        assert resource.queue_length == 0

    def test_requests_beyond_capacity_wait(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        first = resource.request()
        second = resource.request()
        assert first.granted
        assert not second.granted
        assert resource.queue_length == 1

    def test_release_grants_next_waiter_fcfs(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        resource.release(first)
        assert second.granted
        assert not third.granted
        resource.release(second)
        assert third.granted

    def test_double_release_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        request = resource.request()
        resource.release(request)
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_cancel_waiting_request_is_skipped(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        waiting_a = resource.request()
        waiting_b = resource.request()
        waiting_a.cancel()
        resource.release(holder)
        assert not waiting_a.granted
        assert waiting_b.granted

    def test_cancel_granted_request_releases(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        waiter = resource.request()
        holder.cancel()
        assert waiter.granted
        assert resource.in_use == 1

    def test_cancel_twice_is_noop(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        holder.cancel()
        holder.cancel()
        assert resource.in_use == 0


class TestResourceInProcesses:
    def test_serialised_use_with_single_server(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        completions = []

        def worker(name):
            request = resource.request()
            yield request
            yield sim.timeout(2.0)
            resource.release(request)
            completions.append((name, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.process(worker("c"))
        sim.run(until=10.0)
        assert completions == [("a", 2.0), ("b", 4.0), ("c", 6.0)]

    def test_parallel_use_with_multiple_servers(self):
        sim = Simulator()
        resource = Resource(sim, capacity=3)
        completions = []

        def worker(name):
            request = resource.request()
            yield request
            yield sim.timeout(2.0)
            resource.release(request)
            completions.append((name, sim.now))

        for name in "abc":
            sim.process(worker(name))
        sim.run(until=10.0)
        assert [time for _name, time in completions] == [2.0, 2.0, 2.0]

    def test_interrupted_waiter_can_cancel_cleanly(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        outcomes = []

        def holder():
            request = resource.request()
            yield request
            yield sim.timeout(10.0)
            resource.release(request)

        def impatient():
            request = resource.request()
            try:
                yield request
            except Interrupt:
                request.cancel()
                outcomes.append("gave up")
                return
            resource.release(request)
            outcomes.append("served")

        sim.process(holder())
        impatient_process = sim.process(impatient())
        sim.call_in(2.0, lambda: impatient_process.interrupt())
        sim.run(until=20.0)
        assert outcomes == ["gave up"]
        assert resource.queue_length == 0
        # the resource must still be usable afterwards
        assert resource.in_use == 0

    def test_utilisation_of_single_server(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            request = resource.request()
            yield request
            yield sim.timeout(4.0)
            resource.release(request)

        sim.process(worker())
        sim.run(until=8.0)
        assert resource.utilisation() == pytest.approx(0.5)

    def test_mean_queue_length(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            request = resource.request()
            yield request
            yield sim.timeout(5.0)
            resource.release(request)

        sim.process(worker())
        sim.process(worker())
        sim.run(until=10.0)
        # one worker queued for the first five seconds of a ten second run
        assert resource.mean_queue_length() == pytest.approx(0.5)

    def test_reset_statistics(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            request = resource.request()
            yield request
            yield sim.timeout(4.0)
            resource.release(request)

        sim.process(worker())
        sim.run(until=4.0)
        resource.reset_statistics()
        sim.run(until=8.0)
        # idle after the reset: the rebound window reads as zero utilisation
        assert resource.utilisation() == pytest.approx(0.0)

    def test_reset_statistics_binds_rate_window(self):
        """Regression: the rate denominator starts at the reset instant.

        The server is idle for the first half of the run and fully busy
        after the reset.  Pre-fix, ``utilisation()`` divided the post-reset
        busy integral by the whole run (``since`` defaulted to 0.0), which
        reported 0.5 here instead of 1.0.
        """
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            yield sim.timeout(4.0)
            request = resource.request()
            yield request
            yield sim.timeout(4.0)
            resource.release(request)

        sim.process(worker())
        sim.run(until=4.0)
        resource.reset_statistics()
        sim.run(until=8.0)
        assert resource.utilisation() == pytest.approx(1.0)
        assert resource.mean_queue_length() == pytest.approx(0.0)

    def test_total_wait_time_accumulates(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            request = resource.request()
            yield request
            yield sim.timeout(3.0)
            resource.release(request)

        sim.process(worker())
        sim.process(worker())
        sim.run(until=10.0)
        assert resource.total_requests == 2
        assert resource.total_wait_time == pytest.approx(3.0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        received = []

        def getter():
            value = yield store.get()
            received.append(value)

        sim.process(getter())
        sim.run(until=1.0)
        assert received == ["item"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        received = []

        def getter():
            value = yield store.get()
            received.append((value, sim.now))

        sim.process(getter())
        sim.call_in(3.0, lambda: store.put("late item"))
        sim.run(until=5.0)
        assert received == [("late item", 3.0)]

    def test_fifo_ordering_of_items(self):
        sim = Simulator()
        store = Store(sim)
        for value in (1, 2, 3):
            store.put(value)
        received = []

        def getter():
            for _ in range(3):
                value = yield store.get()
                received.append(value)

        sim.process(getter())
        sim.run(until=1.0)
        assert received == [1, 2, 3]

    def test_fifo_ordering_of_getters(self):
        sim = Simulator()
        store = Store(sim)
        received = []

        def getter(name):
            value = yield store.get()
            received.append((name, value))

        sim.process(getter("first"))
        sim.process(getter("second"))
        sim.call_in(1.0, lambda: store.put("a"))
        sim.call_in(2.0, lambda: store.put("b"))
        sim.run(until=5.0)
        assert received == [("first", "a"), ("second", "b")]

    def test_size_and_waiting_counters(self):
        sim = Simulator()
        store = Store(sim)
        assert store.size == 0
        store.put(1)
        assert store.size == 1
        assert store.waiting_getters == 0
