"""Tests for workload generation and dynamic parameter schedules."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random_streams import RandomStreams
from repro.tp.params import WorkloadParams
from repro.tp.transaction import TransactionClass
from repro.tp.workload import (
    ConstantSchedule,
    JumpSchedule,
    MixedClassWorkload,
    SinusoidSchedule,
    StepSchedule,
    TransactionClassSpec,
    Workload,
    mixed_class_params,
)


class TestSchedules:
    def test_constant_schedule(self):
        schedule = ConstantSchedule(7.0)
        assert schedule.value(0.0) == 7.0
        assert schedule.value(1e6) == 7.0

    def test_jump_schedule(self):
        schedule = JumpSchedule(before=4, after=16, jump_time=100.0)
        assert schedule.value(0.0) == 4
        assert schedule.value(99.999) == 4
        assert schedule.value(100.0) == 16
        assert schedule.value(500.0) == 16

    def test_step_schedule(self):
        schedule = StepSchedule(initial=1.0, steps=[(10.0, 2.0), (20.0, 3.0)])
        assert schedule.value(5.0) == 1.0
        assert schedule.value(10.0) == 2.0
        assert schedule.value(15.0) == 2.0
        assert schedule.value(25.0) == 3.0

    def test_step_schedule_sorts_breakpoints(self):
        schedule = StepSchedule(initial=0.0, steps=[(20.0, 2.0), (10.0, 1.0)])
        assert schedule.value(15.0) == 1.0

    def test_step_schedule_rejects_duplicate_times(self):
        # with two breakpoints at the same time the effective value would
        # depend on input order (sorted() is stable); reject instead
        with pytest.raises(ValueError, match="distinct times"):
            StepSchedule(initial=0.0, steps=[(10.0, 1.0), (10.0, 2.0)])
        with pytest.raises(ValueError, match="10"):
            StepSchedule(initial=0.0, steps=[(20.0, 3.0), (10, 1.0), (10.0, 2.0)])

    def test_sinusoid_schedule_range_and_period(self):
        schedule = SinusoidSchedule(mean=10.0, amplitude=3.0, period=40.0)
        values = [schedule.value(t) for t in range(0, 200)]
        assert max(values) == pytest.approx(13.0, abs=0.01)
        assert min(values) == pytest.approx(7.0, abs=0.01)
        assert schedule.value(0.0) == pytest.approx(schedule.value(40.0))

    def test_sinusoid_requires_positive_period(self):
        with pytest.raises(ValueError):
            SinusoidSchedule(mean=1.0, amplitude=0.5, period=0.0)

    def test_schedule_is_callable(self):
        assert JumpSchedule(1, 2, 5)(6.0) == 2


class TestWorkloadParametersOverTime:
    def test_params_at_reflects_schedules(self):
        base = WorkloadParams(db_size=1000, accesses_per_txn=8)
        workload = Workload.with_schedules(
            base, RandomStreams(seed=1),
            accesses=JumpSchedule(8, 16, 50.0),
            query_fraction=ConstantSchedule(0.4),
        )
        early = workload.params_at(10.0)
        late = workload.params_at(60.0)
        assert early.accesses_per_txn == 8
        assert late.accesses_per_txn == 16
        assert early.query_fraction == pytest.approx(0.4)
        # unscheduled parameters keep their base values
        assert early.write_fraction == base.write_fraction

    def test_statically_out_of_range_schedules_rejected(self):
        """Regression: out-of-range constant/step schedules fail loudly.

        Pre-fix, ``params_at`` silently clamped them on every evaluation,
        so the run swept different parameters than the spec declared (and
        the analytic reference was computed from the clamped values).
        """
        base = WorkloadParams(db_size=100, accesses_per_txn=8)
        streams = RandomStreams(seed=1)
        with pytest.raises(ValueError, match="accesses schedule"):
            Workload.with_schedules(base, streams,
                                    accesses=ConstantSchedule(1000.0))
        with pytest.raises(ValueError, match="query_fraction schedule"):
            Workload.with_schedules(base, streams,
                                    query_fraction=ConstantSchedule(1.7))
        with pytest.raises(ValueError, match="write_fraction schedule"):
            Workload.with_schedules(base, streams,
                                    write_fraction=ConstantSchedule(-0.3))
        with pytest.raises(ValueError, match="write_fraction schedule"):
            Workload.with_schedules(
                base, streams,
                write_fraction=StepSchedule(0.5, steps=[(10.0, 1.2)]))
        with pytest.raises(ValueError, match="accesses schedule"):
            Workload.with_schedules(
                base, streams, accesses=JumpSchedule(8, 200, jump_time=5.0))

    def test_accesses_rounding_below_one_rejected(self):
        # a constant 0.2 rounds to k = 0: statically out of range, so it is
        # rejected instead of silently clamped up to 1 as it used to be
        base = WorkloadParams(db_size=100, accesses_per_txn=8)
        with pytest.raises(ValueError, match="accesses schedule"):
            Workload.with_schedules(base, RandomStreams(seed=1),
                                    accesses=ConstantSchedule(0.2))

    def test_dynamic_clamp_events_are_counted(self):
        """A sinusoid straying outside the domain is clamped *and counted*."""
        base = WorkloadParams(db_size=1000, accesses_per_txn=8)
        workload = Workload.with_schedules(
            base, RandomStreams(seed=1),
            # mean 0.5, amplitude 1.0: the trough dips below 0, the crest
            # tops 1 — a dynamic excursion the constructor cannot reject
            write_fraction=SinusoidSchedule(mean=0.5, amplitude=1.0, period=40.0),
        )
        assert workload.schedule_clamped == 0
        in_range = workload.params_at(0.0)  # sin(0) = 0: exactly the mean
        assert in_range.write_fraction == pytest.approx(0.5)
        assert workload.schedule_clamped == 0
        clamped = workload.params_at(30.0)  # trough: 0.5 - 1.0 < 0
        assert clamped.write_fraction == 0.0
        assert workload.schedule_clamped == 1
        workload.params_at(10.0)  # crest: 0.5 + 1.0 > 1
        assert workload.schedule_clamped == 2


class TestTransactionSampling:
    def test_transaction_ids_increase(self):
        workload = Workload.constant(WorkloadParams(), RandomStreams(seed=1))
        first = workload.next_transaction(0.0, terminal_id=0)
        second = workload.next_transaction(1.0, terminal_id=1)
        assert second.txn_id == first.txn_id + 1

    def test_transaction_size_matches_parameters(self):
        params = WorkloadParams(db_size=500, accesses_per_txn=12)
        workload = Workload.constant(params, RandomStreams(seed=1))
        txn = workload.next_transaction(0.0, 0)
        assert txn.size == 12
        assert len(set(txn.items)) == 12

    def test_queries_have_no_writes(self):
        params = WorkloadParams(query_fraction=1.0)
        workload = Workload.constant(params, RandomStreams(seed=1))
        for _ in range(20):
            txn = workload.next_transaction(0.0, 0)
            assert txn.txn_class is TransactionClass.QUERY
            assert txn.is_read_only

    def test_updaters_have_at_least_one_write(self):
        params = WorkloadParams(query_fraction=0.0, write_fraction=0.05)
        workload = Workload.constant(params, RandomStreams(seed=1))
        for _ in range(50):
            txn = workload.next_transaction(0.0, 0)
            assert txn.txn_class is TransactionClass.UPDATER
            assert txn.write_count >= 1

    def test_zero_write_fraction_yields_read_only_updaters(self):
        params = WorkloadParams(query_fraction=0.0, write_fraction=0.0)
        workload = Workload.constant(params, RandomStreams(seed=1))
        txn = workload.next_transaction(0.0, 0)
        assert txn.write_count == 0

    def test_class_mix_approximates_query_fraction(self):
        params = WorkloadParams(query_fraction=0.3)
        workload = Workload.constant(params, RandomStreams(seed=1))
        queries = sum(
            workload.next_transaction(0.0, 0).txn_class is TransactionClass.QUERY
            for _ in range(3000)
        )
        assert queries / 3000 == pytest.approx(0.3, abs=0.03)

    def test_write_mix_approximates_write_fraction(self):
        params = WorkloadParams(query_fraction=0.0, write_fraction=0.4, accesses_per_txn=10)
        workload = Workload.constant(params, RandomStreams(seed=1))
        writes = 0
        accesses = 0
        for _ in range(2000):
            txn = workload.next_transaction(0.0, 0)
            writes += txn.write_count
            accesses += txn.size
        assert writes / accesses == pytest.approx(0.4, abs=0.03)

    def test_jump_changes_sampled_transaction_size(self):
        base = WorkloadParams(db_size=1000, accesses_per_txn=4)
        workload = Workload.with_schedules(
            base, RandomStreams(seed=1), accesses=JumpSchedule(4, 16, 100.0))
        before = workload.next_transaction(50.0, 0)
        after = workload.next_transaction(150.0, 0)
        assert before.size == 4
        assert after.size == 16

    def test_submitted_at_recorded(self):
        workload = Workload.constant(WorkloadParams(), RandomStreams(seed=1))
        txn = workload.next_transaction(42.0, 7)
        assert txn.submitted_at == 42.0
        assert txn.terminal_id == 7

    @given(query_fraction=st.floats(min_value=0.0, max_value=1.0),
           write_fraction=st.floats(min_value=0.0, max_value=1.0),
           k=st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_sampled_transactions_always_valid_property(self, query_fraction, write_fraction, k):
        params = WorkloadParams(db_size=200, accesses_per_txn=k,
                                query_fraction=query_fraction,
                                write_fraction=write_fraction)
        workload = Workload.constant(params, RandomStreams(seed=3))
        txn = workload.next_transaction(0.0, 0)
        assert txn.size == k
        assert len(set(txn.items)) == k
        assert all(0 <= item < 200 for item in txn.items)
        if txn.txn_class is TransactionClass.QUERY:
            assert txn.is_read_only
        elif write_fraction > 0:
            assert txn.write_count >= 1


class TestMixedClassWorkload:
    OLTP = TransactionClassSpec(name="oltp", weight=0.75, accesses_per_txn=4,
                                write_fraction=0.6)
    QUERY = TransactionClassSpec(name="long-query", weight=0.25,
                                 accesses_per_txn=20, write_fraction=0.0)

    def _workload(self, seed=5):
        return MixedClassWorkload(WorkloadParams(), RandomStreams(seed=seed),
                                  (self.OLTP, self.QUERY))

    def test_class_spec_validation(self):
        with pytest.raises(ValueError, match="weight"):
            TransactionClassSpec(name="a", weight=0.0, accesses_per_txn=4)
        with pytest.raises(ValueError, match="accesses_per_txn"):
            TransactionClassSpec(name="a", weight=1.0, accesses_per_txn=0)
        with pytest.raises(ValueError, match="write_fraction"):
            TransactionClassSpec(name="a", weight=1.0, accesses_per_txn=4,
                                 write_fraction=1.5)
        with pytest.raises(ValueError, match="name"):
            TransactionClassSpec(name="", weight=1.0, accesses_per_txn=4)

    def test_requires_at_least_one_class(self):
        with pytest.raises(ValueError, match="at least one"):
            MixedClassWorkload(WorkloadParams(), RandomStreams(seed=1), ())

    def test_classes_have_distinct_size_and_write_profile(self):
        workload = self._workload()
        sizes = {TransactionClass.QUERY: set(), TransactionClass.UPDATER: set()}
        for _ in range(400):
            txn = workload.next_transaction(0.0, 0)
            sizes[txn.txn_class].add(txn.size)
            if txn.txn_class is TransactionClass.QUERY:
                assert txn.is_read_only
            else:
                assert txn.write_count >= 1
        assert sizes[TransactionClass.UPDATER] == {4}
        assert sizes[TransactionClass.QUERY] == {20}

    def test_mix_frequencies_follow_weights(self):
        workload = self._workload()
        queries = sum(
            workload.next_transaction(0.0, 0).txn_class is TransactionClass.QUERY
            for _ in range(4000)
        )
        assert queries / 4000 == pytest.approx(0.25, abs=0.025)

    def test_updater_write_ratio_follows_class_write_fraction(self):
        workload = self._workload()
        writes = accesses = 0
        for _ in range(3000):
            txn = workload.next_transaction(0.0, 0)
            if txn.txn_class is TransactionClass.UPDATER:
                writes += txn.write_count
                accesses += txn.size
        assert writes / accesses == pytest.approx(0.6, abs=0.03)

    def test_params_at_reports_the_mix_expectation(self):
        workload = self._workload()
        params = workload.params_at(0.0)
        # 0.75 * 4 + 0.25 * 20 = 8 accesses expected per transaction
        assert params.accesses_per_txn == 8
        assert params.query_fraction == pytest.approx(0.25)
        # regression: params_at used to keep base.write_fraction (0.5 for
        # the default WorkloadParams) instead of the mix's updater ratio
        assert params.write_fraction == pytest.approx(0.6)

    def test_params_at_averages_updater_write_fractions_by_weight(self):
        heavy = TransactionClassSpec(name="heavy", weight=1.0,
                                     accesses_per_txn=4, write_fraction=0.9)
        light = TransactionClassSpec(name="light", weight=3.0,
                                     accesses_per_txn=4, write_fraction=0.1)
        workload = MixedClassWorkload(WorkloadParams(), RandomStreams(seed=3),
                                      (heavy, light, self.QUERY))
        # queries carry no write information: average over updaters only,
        # (1*0.9 + 3*0.1) / 4 = 0.3
        assert workload.params_at(0.0).write_fraction == pytest.approx(0.3)

    def test_query_only_mix_keeps_base_write_fraction(self):
        base = WorkloadParams(write_fraction=0.5)
        params = mixed_class_params(base, (self.QUERY,))
        assert params.write_fraction == 0.5
        assert params.query_fraction == 1.0

    def test_mixed_class_params_helper_matches_workload(self):
        base = WorkloadParams()
        expected = mixed_class_params(base, (self.OLTP, self.QUERY))
        workload = MixedClassWorkload(base, RandomStreams(seed=5),
                                      (self.OLTP, self.QUERY))
        assert workload.params_at(0.0) == expected
        with pytest.raises(ValueError, match="at least one"):
            mixed_class_params(base, ())

    def test_same_streams_same_transactions(self):
        left, right = self._workload(seed=11), self._workload(seed=11)
        for _ in range(50):
            a = left.next_transaction(0.0, 0)
            b = right.next_transaction(0.0, 0)
            assert (a.txn_class, a.items, a.write_flags) == \
                (b.txn_class, b.items, b.write_flags)

    def test_class_size_clamped_to_db(self):
        huge = TransactionClassSpec(name="huge", weight=1.0,
                                    accesses_per_txn=100)
        workload = MixedClassWorkload(WorkloadParams(db_size=30),
                                      RandomStreams(seed=2), (huge,))
        assert workload.next_transaction(0.0, 0).size == 30

    def test_specs_are_picklable(self):
        import pickle

        clone = pickle.loads(pickle.dumps((self.OLTP, self.QUERY)))
        assert clone == (self.OLTP, self.QUERY)
