"""Tests for run metrics and interval accounting."""

import pytest

from repro.cc.base import AbortReason
from repro.sim.engine import Simulator
from repro.tp.metrics import IntervalCounters, RunMetrics


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def metrics(sim):
    return RunMetrics(sim)


class TestRunTotals:
    def test_initially_empty(self, metrics):
        assert metrics.commits == 0
        assert metrics.total_aborts == 0
        assert metrics.throughput() == 0.0
        assert metrics.restart_ratio == 0.0
        assert metrics.conflict_ratio == 0.0

    def test_commit_recording(self, sim, metrics):
        sim._now = 10.0
        metrics.record_commit(response_time=2.0, conflicts=0)
        metrics.record_commit(response_time=4.0, conflicts=1)
        assert metrics.commits == 2
        assert metrics.mean_response_time() == pytest.approx(3.0)
        assert metrics.throughput() == pytest.approx(0.2)
        assert metrics.conflict_ratio == pytest.approx(0.5)

    def test_abort_recording_by_reason(self, metrics):
        metrics.record_abort(AbortReason.CERTIFICATION)
        metrics.record_abort(AbortReason.CERTIFICATION)
        metrics.record_abort(AbortReason.DEADLOCK)
        metrics.record_abort(AbortReason.DISPLACEMENT)
        assert metrics.aborts_by_reason[AbortReason.CERTIFICATION] == 2
        assert metrics.aborts_by_reason[AbortReason.DEADLOCK] == 1
        assert metrics.aborts_by_reason[AbortReason.DISPLACEMENT] == 1
        assert metrics.total_aborts == 4
        # displacement does not count as a restart (no re-run follows inside
        # the system), certification failures and deadlocks do
        assert metrics.restarts == 3

    def test_restart_ratio(self, metrics):
        metrics.record_commit(1.0)
        metrics.record_abort(AbortReason.CERTIFICATION)
        metrics.record_abort(AbortReason.CERTIFICATION)
        assert metrics.restart_ratio == pytest.approx(2.0)

    def test_throughput_since(self, sim, metrics):
        sim._now = 20.0
        metrics.record_commit(1.0)
        metrics.record_commit(1.0)
        assert metrics.throughput(since=10.0) == pytest.approx(0.2)

    def test_concurrency_time_average(self, sim, metrics):
        metrics.record_concurrency(0)
        sim._now = 5.0
        metrics.record_concurrency(10)
        sim._now = 10.0
        assert metrics.mean_concurrency() == pytest.approx(5.0)

    def test_reset_clears_counters(self, sim, metrics):
        metrics.record_commit(1.0)
        metrics.record_abort(AbortReason.CERTIFICATION)
        sim._now = 5.0
        metrics.reset()
        assert metrics.commits == 0
        assert metrics.total_aborts == 0
        assert metrics.response_times.count == 0


class TestIntervalAccounting:
    def test_snapshot_returns_and_resets(self, sim, metrics):
        metrics.record_commit(2.0, conflicts=1)
        metrics.record_abort(AbortReason.CERTIFICATION, conflicts=2)
        interval = metrics.snapshot_interval()
        assert interval.commits == 1
        assert interval.aborts == 1
        assert interval.conflicts == 3
        assert interval.mean_response_time() == pytest.approx(2.0)
        # after the snapshot the next interval starts empty
        follow_up = metrics.snapshot_interval()
        assert follow_up.commits == 0
        assert follow_up.aborts == 0

    def test_interval_start_advances(self, sim, metrics):
        assert metrics.interval_start == 0.0
        sim._now = 7.0
        metrics.snapshot_interval()
        assert metrics.interval_start == 7.0

    def test_run_totals_survive_snapshots(self, metrics):
        metrics.record_commit(1.0)
        metrics.snapshot_interval()
        metrics.record_commit(1.0)
        metrics.snapshot_interval()
        assert metrics.commits == 2

    def test_empty_interval_counters(self):
        counters = IntervalCounters()
        assert counters.mean_response_time() == 0.0
