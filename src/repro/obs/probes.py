"""In-simulation probes: deterministic observation of a running system.

A :class:`ProbeSet` watches one :class:`~repro.tp.system.TransactionSystem`
from the inside: it counts lock waits as they resolve, samples gauges
(multiprogramming level, admission-queue length, lock-queue depth) on a
fixed *simulation-time* interval, and derives per-reason abort rates over
the measured window.  Everything it observes is a pure function of the
simulated trajectory, so probe metrics are bit-identical across the
serial, multiprocessing and distributed executors — the probe set is built
*inside* the worker that runs the cell, from the plain probe names on the
cell's :class:`~repro.runner.specs.RunSpec`.

The hook into the hot path follows the zero-cost slot pattern of
:mod:`repro.sim.trace`: the transaction system keeps the probe set in one
slot and pays a single ``None`` check per lifecycle event when probing is
off, so cells that never opted in — including every pre-existing golden
fixture — are byte-identical with and without this module loaded.  The
gauge sampler is a separate simulation process that draws no random
numbers and mutates no model state, so a probed cell is
*trajectory-preserving*: it commits and aborts exactly the transactions
the unprobed cell does, at the same timestamps.

Built-in probes (:data:`PROBE_NAMES`):

``lock_wait``
    Durations of blocking CC waits (the time a transaction spends parked
    on a lock grant) plus the execution residence of committed
    transactions.  Their ratio is the measured Tay waiting share — see
    :mod:`repro.obs.calibration`.
``lock_queue``
    Depth of the waits-for structure: how many transactions are blocked
    inside the CC scheme, sampled each interval.
``admission_queue``
    Length of the admission gate's queue, sampled each interval.
``mpl``
    The multiprogramming-level trajectory: admitted transactions, sampled
    each interval.
``abort_rates``
    Aborted executions per simulated second, split by
    :class:`~repro.cc.base.AbortReason`, over the measured window.
``displacement``
    Displacement activity: how many executions the load controller
    displaced, as a count and a rate over the measured window.
``arrival_backlog``
    Open-system backlog: submissions inside the system or waiting at the
    gate (admitted load plus queue length), sampled each interval.  In a
    closed run this is bounded by the terminal count; in an open run its
    growth is the signature of sustained overload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Iterable, Optional, Tuple

from repro.cc.base import AbortReason
from repro.sim.stats import ObservationStats, TimeWeightedStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.tp.system import TransactionSystem

#: probe name constants (use these instead of string literals)
LOCK_WAIT = "lock_wait"
LOCK_QUEUE = "lock_queue"
ADMISSION_QUEUE = "admission_queue"
MPL = "mpl"
ABORT_RATES = "abort_rates"
DISPLACEMENT = "displacement"
ARRIVAL_BACKLOG = "arrival_backlog"

#: every built-in probe, in canonical order
PROBE_NAMES: Tuple[str, ...] = (
    LOCK_WAIT, LOCK_QUEUE, ADMISSION_QUEUE, MPL, ABORT_RATES, DISPLACEMENT,
    ARRIVAL_BACKLOG,
)

#: the probes whose gauges are sampled by the simulation-time sampler
_GAUGE_PROBES = (LOCK_QUEUE, ADMISSION_QUEUE, MPL, ARRIVAL_BACKLOG)


def validate_probes(names: Iterable[str]) -> Tuple[str, ...]:
    """Normalise and validate a probe selection.

    Returns the names as a tuple in the order given.  Raises ``ValueError``
    for unknown names, duplicates, or an empty selection — an explicit
    empty tuple is almost certainly a bug (use ``None``/omission to run
    without probes).
    """
    selected = tuple(names)
    if not selected:
        raise ValueError("probes must name at least one probe (or be None)")
    known = set(PROBE_NAMES)
    seen = set()
    for name in selected:
        if name not in known:
            raise ValueError(
                f"unknown probe {name!r}; available: {', '.join(PROBE_NAMES)}"
            )
        if name in seen:
            raise ValueError(f"duplicate probe {name!r}")
        seen.add(name)
    return selected


class ProbeSet:
    """The enabled probes of one run, with their accumulators.

    Built per cell (inside the worker process) from the plain probe names
    of the cell's spec, bound to the run's
    :class:`~repro.tp.system.TransactionSystem` at construction of the
    latter, and read out once at the end of the measured window via
    :meth:`metrics`.  ``interval`` is the simulation-time sampling period
    of the gauge probes (the runner passes the cell's measurement
    interval).
    """

    __slots__ = ("names", "interval", "_system", "_window_start",
                 "_lock_wait_on", "_abort_rates_on", "_displacement_on",
                 "_wait_stats", "_residence_stats",
                 "_lock_queue", "_admission_queue", "_mpl", "_arrival_backlog")

    def __init__(self, names: Iterable[str], interval: float = 2.0):
        self.names = validate_probes(names)
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._system: Optional["TransactionSystem"] = None
        self._window_start = 0.0
        self._lock_wait_on = LOCK_WAIT in self.names
        self._abort_rates_on = ABORT_RATES in self.names
        self._displacement_on = DISPLACEMENT in self.names
        self._wait_stats = ObservationStats() if self._lock_wait_on else None
        self._residence_stats = ObservationStats() if self._lock_wait_on else None
        self._lock_queue: Optional[TimeWeightedStats] = None
        self._admission_queue: Optional[TimeWeightedStats] = None
        self._mpl: Optional[TimeWeightedStats] = None
        self._arrival_backlog: Optional[TimeWeightedStats] = None

    # ------------------------------------------------------------------
    # wiring (called by TransactionSystem)
    # ------------------------------------------------------------------
    def bind(self, system: "TransactionSystem") -> None:
        """Attach to the system whose trajectory this probe set observes."""
        if self._system is not None:
            raise RuntimeError("a ProbeSet can observe only one system")
        self._system = system
        now = system.sim.now
        self._window_start = now
        if LOCK_QUEUE in self.names:
            self._lock_queue = TimeWeightedStats(now, 0.0)
        if ADMISSION_QUEUE in self.names:
            self._admission_queue = TimeWeightedStats(now, 0.0)
        if MPL in self.names:
            self._mpl = TimeWeightedStats(now, 0.0)
        if ARRIVAL_BACKLOG in self.names:
            self._arrival_backlog = TimeWeightedStats(now, 0.0)

    @property
    def wants_sampling(self) -> bool:
        """True when any gauge probe needs the simulation-time sampler."""
        return any(name in self.names for name in _GAUGE_PROBES)

    def sampler(self) -> Generator:
        """The gauge-sampling simulation process (started by the system).

        Draws no random numbers and mutates no model state, so installing
        it preserves the trajectory of every model process.
        """
        system = self._require_bound()
        sim = system.sim
        interval = self.interval
        while True:
            yield sim.timeout(interval)
            self.sample(sim.now)

    def sample(self, now: float) -> None:
        """Record the current gauge values at simulation time ``now``."""
        system = self._require_bound()
        if self._lock_queue is not None:
            self._lock_queue.update(now, system.cc.wait_depth())
        if self._admission_queue is not None:
            self._admission_queue.update(now, system.gate.queue_length)
        if self._mpl is not None:
            self._mpl.update(now, system.gate.current_load)
        if self._arrival_backlog is not None:
            gate = system.gate
            self._arrival_backlog.update(now, gate.current_load + gate.queue_length)

    # ------------------------------------------------------------------
    # hot-path observations (called by the transaction lifecycle)
    # ------------------------------------------------------------------
    def observe_lock_wait(self, duration: float) -> None:
        """One blocking wait resolved after ``duration`` simulated seconds."""
        if self._wait_stats is not None:
            self._wait_stats.add(duration)

    def observe_commit_residence(self, residence: float) -> None:
        """A transaction committed ``residence`` seconds after its last (re)start."""
        if self._residence_stats is not None:
            self._residence_stats.add(residence)

    # ------------------------------------------------------------------
    # windowing and readout
    # ------------------------------------------------------------------
    def reset(self, now: float) -> None:
        """Restart the measured window at ``now`` (end of warm-up)."""
        self._require_bound()
        self._window_start = now
        if self._wait_stats is not None:
            self._wait_stats.reset()
            self._residence_stats.reset()
        # gauges keep their current value; re-sample so the window opens on
        # the true instantaneous state rather than the pre-reset one
        for gauge in (self._lock_queue, self._admission_queue, self._mpl,
                      self._arrival_backlog):
            if gauge is not None:
                gauge.reset(now)
        if self.wants_sampling:
            self.sample(now)

    def metrics(self, now: float) -> Dict[str, float]:
        """The ``probe_<name>`` metrics of the window ``[reset, now]``.

        The key set is a pure function of the enabled probes (schema
        stability: a probe that observed nothing still reports its keys,
        as zeros), and every value is a plain float, so the replication
        layer folds probe metrics through replicate means like any other
        cell metric.
        """
        system = self._require_bound()
        elapsed = now - self._window_start
        out: Dict[str, float] = {}
        if self._lock_wait_on:
            waits = self._wait_stats
            residence = self._residence_stats
            out["probe_lock_wait_count"] = float(waits.count)
            out["probe_lock_wait_mean"] = waits.mean
            out["probe_lock_wait_max"] = waits.maximum
            out["probe_lock_wait_total"] = waits.total
            out["probe_lock_wait_residence_count"] = float(residence.count)
            out["probe_lock_wait_residence_mean"] = residence.mean
            share = 0.0
            if waits.count and residence.count and residence.mean > 0:
                share = min(1.0, waits.mean / residence.mean)
            out["probe_lock_wait_share"] = share
        if self._lock_queue is not None:
            out["probe_lock_queue_mean"] = self._lock_queue.mean(now)
            out["probe_lock_queue_max"] = self._lock_queue.maximum
        if self._admission_queue is not None:
            out["probe_admission_queue_mean"] = self._admission_queue.mean(now)
            out["probe_admission_queue_max"] = self._admission_queue.maximum
        if self._mpl is not None:
            out["probe_mpl_mean"] = self._mpl.mean(now)
            out["probe_mpl_max"] = self._mpl.maximum
        if self._arrival_backlog is not None:
            out["probe_arrival_backlog_mean"] = self._arrival_backlog.mean(now)
            out["probe_arrival_backlog_max"] = self._arrival_backlog.maximum
        if self._abort_rates_on:
            counts = system.metrics.aborts_by_reason
            for reason in AbortReason:
                rate = counts.get(reason, 0) / elapsed if elapsed > 0 else 0.0
                out[f"probe_abort_rate_{reason.value}"] = rate
        if self._displacement_on:
            displaced = float(system.metrics.aborts_by_reason.get(
                AbortReason.DISPLACEMENT, 0))
            out["probe_displacement_count"] = displaced
            out["probe_displacement_rate"] = (
                displaced / elapsed if elapsed > 0 else 0.0)
        return out

    # ------------------------------------------------------------------
    def _require_bound(self) -> "TransactionSystem":
        if self._system is None:
            raise RuntimeError("the ProbeSet is not bound to a system yet")
        return self._system

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbeSet(names={self.names!r}, interval={self.interval})"
