"""Figure 14: trajectory of the Parabola Approximation controller under a jump.

Same scenario as the Figure 13 benchmark (the transaction size jumps
mid-run, moving the optimum), but with the PA controller.  The paper's
finding: "The PA algorithm needs some more time to respond but tracks the
optimum more accurately and reliably", with the oscillations of the
trajectory being enforced by the algorithm's need for excitation.

Besides regenerating the trajectory, this benchmark runs the *same* jump with
the IS parameters of the Figure 13 benchmark and asserts the paper's
comparison: PA's settled tracking error is no worse than IS's.
"""

from conftest import run_once

from bench_fig13_is_jump import build_scenario, tracking_params
from repro.core.incremental_steps import IncrementalStepsController
from repro.core.parabola import ParabolaController
from repro.experiments.dynamic import run_tracking_experiment
from repro.experiments.report import format_comparison, format_series_table
from repro.experiments.tracking import compute_tracking_metrics


def test_fig14_parabola_jump_trajectory(benchmark, scale):
    params = tracking_params()
    scenario = build_scenario(scale)
    pa = ParabolaController(
        initial_limit=30, forgetting=0.85, probe_amplitude=6.0, max_move=40.0,
        lower_bound=4, upper_bound=params.n_terminals)
    is_reference = IncrementalStepsController(
        initial_limit=30, beta=0.5, gamma=8, delta=20, min_step=4.0,
        lower_bound=4, upper_bound=params.n_terminals)

    def experiment():
        pa_result = run_tracking_experiment(pa, scenario, base_params=params, scale=scale)
        is_result = run_tracking_experiment(is_reference, scenario, base_params=params,
                                            scale=scale)
        return pa_result, is_result

    pa_result, is_result = run_once(benchmark, experiment)
    disturbance = scale.tracking_horizon / 2.0
    evaluate_after = scale.tracking_horizon * 0.15
    pa_metrics = compute_tracking_metrics(pa_result, disturbance_time=disturbance,
                                          evaluate_after=evaluate_after)
    is_metrics = compute_tracking_metrics(is_result, disturbance_time=disturbance,
                                          evaluate_after=evaluate_after)

    print()
    print("Figure 14 — PA threshold trajectory under an abrupt workload change")
    print(format_series_table(pa_result, every=max(1, len(pa_result.trace) // 25)))
    print()
    print("IS vs PA on the same jump (paper: PA tracks more accurately):")
    print(format_comparison({"IS": is_metrics, "PA": pa_metrics}))

    benchmark.extra_info["pa_threshold_series"] = [
        (round(t, 2), round(limit, 1)) for t, limit in pa_result.threshold_series()]
    benchmark.extra_info["reference_series"] = [
        (round(t, 2), round(opt, 1)) for t, opt in pa_result.reference_series()]
    benchmark.extra_info["pa_mean_abs_error"] = round(pa_metrics.mean_absolute_error, 2)
    benchmark.extra_info["is_mean_abs_error"] = round(is_metrics.mean_absolute_error, 2)
    benchmark.extra_info["pa_throughput_ratio"] = round(pa_metrics.throughput_ratio, 3)
    benchmark.extra_info["is_throughput_ratio"] = round(is_metrics.throughput_ratio, 3)

    assert len(pa_result.trace) >= 10
    assert pa_result.total_commits > 0
    # "PA needs some more time to respond but tracks the optimum more
    # accurately and reliably": once the response transient is over (the last
    # third of the run, well after the jump) the PA threshold sits close to
    # the new optimum ...
    settled_start = scale.tracking_horizon * (2.0 / 3.0)
    pa_settled = compute_tracking_metrics(pa_result, evaluate_after=settled_start)
    assert pa_settled.mean_relative_error < 0.35, (
        "PA did not settle near the new optimum after the jump")
    # ... and it delivers useful work comparable to (or better than) IS
    assert pa_metrics.throughput_ratio >= 0.9 * is_metrics.throughput_ratio
    # probing keeps the PA trajectory moving (the "enforced oscillations")
    settled = pa_result.trace.limits[len(pa_result.trace.limits) // 2:]
    assert max(settled) - min(settled) > 0.0
