"""Tests for the outer-loop measurement-interval tuner."""

import pytest

from repro.core.outer_loop import MeasurementIntervalTuner
from repro.core.types import IntervalMeasurement


def measurement(throughput, time=1.0):
    return IntervalMeasurement(
        time=time,
        interval_length=1.0,
        throughput=throughput,
        mean_concurrency=10.0,
        concurrency_at_sample=10.0,
        current_limit=20.0,
        commits=int(throughput),
    )


class TestValidation:
    def test_target_departures_positive(self):
        with pytest.raises(ValueError):
            MeasurementIntervalTuner(target_departures=0)

    def test_interval_band_sane(self):
        with pytest.raises(ValueError):
            MeasurementIntervalTuner(min_interval=0.0)
        with pytest.raises(ValueError):
            MeasurementIntervalTuner(min_interval=5.0, max_interval=1.0)

    def test_smoothing_range(self):
        with pytest.raises(ValueError):
            MeasurementIntervalTuner(smoothing=0.0)
        with pytest.raises(ValueError):
            MeasurementIntervalTuner(smoothing=1.5)


class TestIntervalAdaptation:
    def test_targets_departure_count(self):
        tuner = MeasurementIntervalTuner(target_departures=100, smoothing=1.0,
                                         min_interval=0.1, max_interval=100.0)
        interval = tuner.next_interval(5.0, measurement(throughput=50.0))
        assert interval == pytest.approx(2.0)

    def test_interval_clamped_to_band(self):
        tuner = MeasurementIntervalTuner(target_departures=1000, smoothing=1.0,
                                         min_interval=0.5, max_interval=10.0)
        assert tuner.next_interval(5.0, measurement(throughput=1.0)) == 10.0
        fast = MeasurementIntervalTuner(target_departures=1, smoothing=1.0,
                                        min_interval=0.5, max_interval=10.0)
        assert fast.next_interval(5.0, measurement(throughput=1000.0)) == 0.5

    def test_zero_throughput_lengthens_cautiously(self):
        tuner = MeasurementIntervalTuner(target_departures=100, smoothing=1.0,
                                         min_interval=0.5, max_interval=60.0)
        assert tuner.next_interval(4.0, measurement(throughput=0.0)) == pytest.approx(8.0)

    def test_smoothing_blends_old_and_new(self):
        tuner = MeasurementIntervalTuner(target_departures=100, smoothing=0.5,
                                         min_interval=0.1, max_interval=100.0)
        interval = tuner.next_interval(4.0, measurement(throughput=50.0))
        # proposal is 2.0, smoothed halfway from 4.0 -> 3.0
        assert interval == pytest.approx(3.0)

    def test_derived_target_uses_paper_default_initially(self):
        tuner = MeasurementIntervalTuner(target_departures=None, smoothing=1.0,
                                         min_interval=0.1, max_interval=1000.0)
        interval = tuner.next_interval(1.0, measurement(throughput=10.0))
        # with no variability estimate yet, the target is 100 departures
        assert interval == pytest.approx(10.0)

    def test_derived_target_adapts_to_variability(self):
        steady = MeasurementIntervalTuner(target_departures=None, smoothing=1.0,
                                          min_interval=0.01, max_interval=1000.0)
        noisy = MeasurementIntervalTuner(target_departures=None, smoothing=1.0,
                                         min_interval=0.01, max_interval=1000.0)
        for index in range(10):
            steady.next_interval(1.0, measurement(throughput=50.0, time=float(index)))
            noisy_value = 50.0 if index % 2 == 0 else 10.0
            noisy.next_interval(1.0, measurement(throughput=noisy_value, time=float(index)))
        steady_interval = steady.next_interval(1.0, measurement(throughput=50.0))
        noisy_interval = noisy.next_interval(1.0, measurement(throughput=30.0))
        # a noisier departure process needs a longer interval for the same accuracy
        assert noisy_interval > steady_interval

    def test_adjustment_counter(self):
        tuner = MeasurementIntervalTuner(target_departures=100, smoothing=1.0,
                                         min_interval=0.1, max_interval=100.0)
        tuner.next_interval(5.0, measurement(throughput=50.0))
        tuner.next_interval(5.0, measurement(throughput=50.0))
        assert tuner.adjustments >= 1
