"""Optimistic concurrency control by timestamp certification.

This is the scheme used in the paper's simulation model (Section 7): an
optimistic, non-blocking protocol in which conflicts are resolved by
aborting and restarting one of the involved transactions.  The particular
variant is *backward-oriented certification* with commit-time validation
(Bernstein, Hadzilacos & Goodman 1987, ch. 4):

* every execution receives a start timestamp when it begins;
* reads and writes proceed without any blocking, the scheme only records
  the read and write sets;
* at commit time the transaction is *certified*: it may commit only if no
  granule it read was overwritten by a transaction that committed after the
  certifying transaction started (its reads would not be serializable
  otherwise), and none of the granules it wants to write was read or written
  by a concurrently committed transaction after its start;
* on successful certification the write timestamps of the written granules
  are advanced to the commit timestamp.

The scheme maintains only two maps (granule -> last committed read/write
timestamp), so memory stays bounded regardless of run length.

Why this reproduces the paper's behaviour: the probability that a
transaction fails certification grows with the number of commits that happen
during its residence time, which itself grows with the concurrency level.
Restarted executions consume physical resources without contributing useful
work, so beyond a critical multiprogramming level the throughput *decreases*
with additional load -- exactly the thrashing behaviour of Figure 1 that the
load controller must prevent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.cc.base import AbortReason, ConcurrencyControl
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.transaction import Transaction


class TimestampCertification(ConcurrencyControl):
    """Backward-oriented optimistic certification (non-blocking CC)."""

    name = "timestamp-certification"

    def __init__(self, sim: Simulator):
        self.sim = sim
        #: granule -> timestamp of the latest committed write
        self._write_ts: Dict[int, float] = {}
        #: granule -> timestamp of the latest committed read
        self._read_ts: Dict[int, float] = {}
        #: logical commit counter used to break timestamp ties deterministically
        self._commit_counter = 0
        self._active: set[int] = set()
        # statistics
        self.certifications = 0
        self.certification_failures = 0

    # ------------------------------------------------------------------
    def begin(self, txn: "Transaction") -> None:
        """Stamp the execution with the current time as its start timestamp."""
        txn.cc_state["start_ts"] = self.sim.now
        self._active.add(txn.txn_id)

    def access(self, txn: "Transaction", item: int, is_write: bool) -> Optional[Event]:
        """Record the access; optimistic schemes never block."""
        if is_write:
            txn.write_set.add(item)
            # every write implies a read of the granule in this model
            txn.read_set.add(item)
        else:
            txn.read_set.add(item)
        return None

    def try_commit(self, txn: "Transaction") -> bool:
        """Backward certification against transactions committed meanwhile."""
        self.certifications += 1
        start_ts = txn.cc_state.get("start_ts")
        if start_ts is None:
            raise RuntimeError(
                f"transaction {txn.txn_id} certified without begin() being called"
            )
        conflicts = 0
        for item in txn.read_set:
            committed_write = self._write_ts.get(item)
            if committed_write is not None and committed_write > start_ts:
                conflicts += 1
        for item in txn.write_set:
            committed_read = self._read_ts.get(item)
            if committed_read is not None and committed_read > start_ts:
                conflicts += 1
        txn.last_conflicts = conflicts
        if conflicts:
            self.certification_failures += 1
            return False
        return True

    def finish(self, txn: "Transaction") -> None:
        """Install the transaction's writes at the commit timestamp."""
        self._commit_counter += 1
        # Strictly increasing commit timestamps even when several commits
        # happen at the same simulated instant.
        commit_ts = self.sim.now + self._commit_counter * 1e-12
        for item in txn.write_set:
            existing = self._write_ts.get(item, float("-inf"))
            if commit_ts > existing:
                self._write_ts[item] = commit_ts
        for item in txn.read_set:
            existing = self._read_ts.get(item, float("-inf"))
            if commit_ts > existing:
                self._read_ts[item] = commit_ts
        self._active.discard(txn.txn_id)

    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """Nothing to undo: optimistic executions leave no shared state."""
        self._active.discard(txn.txn_id)

    def active_count(self) -> int:
        """Number of executions between begin() and finish()/abort()."""
        return len(self._active)

    @property
    def failure_fraction(self) -> float:
        """Fraction of certifications that failed so far."""
        if self.certifications == 0:
            return 0.0
        return self.certification_failures / self.certifications

    def reset(self) -> None:
        """Forget all committed timestamps and statistics."""
        self._write_ts.clear()
        self._read_ts.clear()
        self._active.clear()
        self._commit_counter = 0
        self.certifications = 0
        self.certification_failures = 0
