"""Picklable experiment descriptors: one cell of the evaluation grid.

The paper's evaluation is a grid of *independent* simulation cells — one
per (offered load, controller, scenario, replicate) combination.  To fan
those cells out over worker processes, each cell must be described by plain
data that survives pickling; stateful objects (controllers, simulators,
RNG streams) are only ever constructed *inside* the worker that runs the
cell.

* :class:`ControllerSpec` names a controller kind from a small registry and
  carries its constructor options;
* :class:`RunSpec` describes one cell: the kind of run (stationary point or
  dynamic tracking), system parameters, scale, controller, scenario and
  replicate index;
* :class:`SweepSpec` is an ordered collection of cells, optionally expanded
  into ``R`` replicates per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from repro.canonical import canonical_digest
from repro.cc.registry import CCSpec
from repro.core.controller import LoadController
from repro.core.displacement import DisplacementPolicy, VictimCriterion
from repro.core.incremental_steps import IncrementalStepsController
from repro.core.outer_loop import MeasurementIntervalTuner
from repro.core.parabola import ParabolaController
from repro.core.rules import IyerRule, TayRule
from repro.core.static import FixedLimit, NoControl
from repro.experiments.config import ExperimentScale
from repro.tp.arrivals import ArrivalProcess, ClosedArrivals, OpenArrivals, PartlyOpenArrivals
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.workload import (
    ConstantSchedule,
    JumpSchedule,
    ParameterSchedule,
    SinusoidSchedule,
    StepSchedule,
    TransactionClassSpec,
)

#: values of :attr:`RunSpec.kind`
KIND_STATIONARY = "stationary"
KIND_TRACKING = "tracking"

#: a controller builder receives the cell's system parameters (for bounds
#: and workload-derived defaults) plus the spec's options
ControllerBuilder = Callable[..., LoadController]

_CONTROLLER_BUILDERS: Dict[str, ControllerBuilder] = {}


def register_controller(kind: str) -> Callable[[ControllerBuilder], ControllerBuilder]:
    """Register a controller builder under ``kind`` (decorator)."""

    def decorator(builder: ControllerBuilder) -> ControllerBuilder:
        if kind in _CONTROLLER_BUILDERS:
            raise ValueError(f"controller kind {kind!r} is already registered")
        _CONTROLLER_BUILDERS[kind] = builder
        return builder

    return decorator


def controller_kinds() -> Tuple[str, ...]:
    """All registered controller kinds."""
    return tuple(sorted(_CONTROLLER_BUILDERS))


@dataclass(frozen=True)
class ControllerSpec:
    """A picklable description of a controller: registry kind + options.

    ``options`` is stored as a sorted tuple of ``(name, value)`` pairs so
    specs are hashable and two specs with the same options compare equal
    regardless of keyword order.  Use :meth:`make` to build one from
    keyword arguments.
    """

    kind: str
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **options) -> "ControllerSpec":
        """Build a spec from keyword options."""
        return cls(kind=kind, options=tuple(sorted(options.items())))

    def build(self, params: SystemParams) -> LoadController:
        """Construct a fresh controller instance for one run."""
        builder = _CONTROLLER_BUILDERS.get(self.kind)
        if builder is None:
            raise KeyError(
                f"unknown controller kind {self.kind!r}; "
                f"available: {', '.join(controller_kinds())}"
            )
        return builder(params, **dict(self.options))


# ----------------------------------------------------------------------
# built-in controller kinds
#
# Defaults follow the parameterisations used throughout the benchmarks;
# every option can be overridden via ControllerSpec.make(kind, option=...).
# ----------------------------------------------------------------------
@register_controller("no_control")
def _build_no_control(params: SystemParams, **options) -> LoadController:
    settings = {"upper_bound": params.n_terminals}
    settings.update(options)
    return NoControl(**settings)


@register_controller("fixed")
def _build_fixed(params: SystemParams, **options) -> LoadController:
    settings = {"limit": 20.0, "upper_bound": params.n_terminals}
    settings.update(options)
    return FixedLimit(**settings)


@register_controller("tay")
def _build_tay(params: SystemParams, **options) -> LoadController:
    settings = {
        "db_size": params.workload.db_size,
        "accesses_per_txn": params.workload.accesses_per_txn,
        "upper_bound": params.n_terminals,
    }
    settings.update(options)
    return TayRule(**settings)


@register_controller("iyer")
def _build_iyer(params: SystemParams, **options) -> LoadController:
    settings = {
        "target_conflicts": 0.75,
        "step": 3.0,
        "initial_limit": 20.0,
        "upper_bound": params.n_terminals,
    }
    settings.update(options)
    return IyerRule(**settings)


@register_controller("incremental_steps")
def _build_incremental_steps(params: SystemParams, **options) -> LoadController:
    settings = {
        "initial_limit": 10.0,
        "beta": 1.0,
        "gamma": 5,
        "delta": 10,
        "min_step": 2.0,
        "lower_bound": 2.0,
        "upper_bound": params.n_terminals,
    }
    settings.update(options)
    return IncrementalStepsController(**settings)


@register_controller("parabola")
def _build_parabola(params: SystemParams, **options) -> LoadController:
    settings = {
        "initial_limit": 10.0,
        "forgetting": 0.9,
        "probe_amplitude": 3.0,
        "lower_bound": 2.0,
        "upper_bound": params.n_terminals,
    }
    settings.update(options)
    return ParabolaController(**settings)


# ----------------------------------------------------------------------
# run and sweep specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One cell of the experiment grid, as plain picklable data.

    ``controller`` may be

    * ``None`` — the system runs uncontrolled (no measurement loop at all),
    * a :class:`ControllerSpec` — built from the registry inside the worker,
    * a picklable callable ``factory(params) -> LoadController`` — supported
      so existing ``controller_factory`` call sites can delegate to the
      runner (lambdas/closures only work with the serial executor).

    ``cc`` selects the concurrency control scheme the same way: ``None``
    runs the system default (timestamp certification), a
    :class:`~repro.cc.registry.CCSpec` is resolved against the CC registry
    inside the worker, and a picklable callable ``factory(sim) ->
    ConcurrencyControl`` is supported for ad-hoc schemes (serial executor
    only for lambdas/closures).

    ``replicate`` selects the replicate branch of the run's random streams
    (see :meth:`repro.sim.random_streams.RandomStreams.spawn`); replicate 0
    is bitwise identical to a plain, non-replicated run.
    """

    kind: str
    cell_id: str
    params: SystemParams
    scale: ExperimentScale
    controller: Optional[object] = None
    #: tracking runs only: (parameter name, schedule) as produced by
    #: :func:`repro.experiments.dynamic.jump_scenario` and friends
    scenario: Optional[Tuple[str, ParameterSchedule]] = None
    replicate: int = 0
    #: label used to group cells into curves/series in reports
    label: str = ""
    displacement: Optional[DisplacementPolicy] = None
    interval_tuner: Optional[MeasurementIntervalTuner] = None
    #: stationary runs only: transaction classes of a mixed-class workload
    #: (None = the single-class workload described by ``params.workload``)
    workload_classes: Optional[Tuple[TransactionClassSpec, ...]] = None
    #: concurrency control scheme (None = the system default, timestamp
    #: certification); a CCSpec or a picklable ``factory(sim) -> scheme``
    cc: Optional[object] = None
    #: stationary runs only: report per-reason abort counts
    #: (``aborts_<reason>`` metrics) and the scheme-aware analytic
    #: reference name on the cell result.  Opt-in so the metrics schema —
    #: and therefore every pre-existing golden fixture — of cells that do
    #: not ask for it stays byte-identical.
    scheme_diagnostics: bool = False
    #: stationary runs only: record the committed history through the
    #: isolation oracle (:mod:`repro.cc.history`) and report per-kind
    #: anomaly counts (``anomalies_<kind>`` metrics).  The recording
    #: wrapper is trajectory-preserving, but the flag is opt-in for the
    #: same golden-stability reason as ``scheme_diagnostics``.
    isolation_diagnostics: bool = False
    #: stationary runs only: in-sim probe names
    #: (:data:`~repro.obs.probes.PROBE_NAMES`) to attach to the run; their
    #: measured-window readouts surface as ``probe_<name>`` metrics on the
    #: cell result.  ``None`` (the default) runs without probes; opt-in for
    #: the same golden-stability reason as the diagnostics flags.  The
    #: probe set itself is built inside the worker from these plain names,
    #: which is how probes propagate to multiprocessing and dist workers.
    probes: Optional[Tuple[str, ...]] = None
    #: stationary runs only: how transactions enter the system.  ``None``
    #: (the default) and :class:`~repro.tp.arrivals.ClosedArrivals` run the
    #: paper's closed terminal model; :class:`~repro.tp.arrivals.OpenArrivals`
    #: / :class:`~repro.tp.arrivals.PartlyOpenArrivals` replace the terminals
    #: with an open source.  Opt-in (and JSON-emitted only when set) for the
    #: same golden-stability reason as the diagnostics flags: cells that do
    #: not ask for an arrival model keep their byte-identical schema.
    arrivals: Optional[ArrivalProcess] = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_STATIONARY, KIND_TRACKING):
            raise ValueError(
                f"kind must be {KIND_STATIONARY!r} or {KIND_TRACKING!r}, got {self.kind!r}"
            )
        if self.replicate < 0:
            raise ValueError(f"replicate must be non-negative, got {self.replicate}")
        if self.kind == KIND_TRACKING and self.scenario is None:
            raise ValueError("tracking runs require a scenario")
        if self.kind == KIND_TRACKING and self.controller is None:
            raise ValueError("tracking runs require a controller")
        if self.workload_classes is not None and self.kind != KIND_STATIONARY:
            raise ValueError(
                "mixed-class workloads are supported for stationary runs only"
            )
        if self.scheme_diagnostics and self.kind != KIND_STATIONARY:
            raise ValueError(
                "scheme_diagnostics is supported for stationary runs only"
            )
        if self.isolation_diagnostics and self.kind != KIND_STATIONARY:
            raise ValueError(
                "isolation_diagnostics is supported for stationary runs only"
            )
        if self.probes is not None:
            if self.kind != KIND_STATIONARY:
                raise ValueError("probes are supported for stationary runs only")
            from repro.obs.probes import validate_probes

            object.__setattr__(self, "probes", validate_probes(self.probes))
        if self.arrivals is not None:
            if self.kind != KIND_STATIONARY:
                raise ValueError(
                    "arrival models are supported for stationary runs only"
                )
            if not isinstance(self.arrivals, ArrivalProcess):
                raise TypeError(
                    "arrivals must be None or an ArrivalProcess, "
                    f"got {type(self.arrivals).__name__}"
                )
        if self.cc is not None and not isinstance(self.cc, CCSpec) \
                and not callable(self.cc):
            raise TypeError(
                "cc must be None, a CCSpec or a callable, "
                f"got {type(self.cc).__name__}"
            )

    def controller_factory(self) -> Optional[Callable[[SystemParams], LoadController]]:
        """The factory the single-cell experiment functions expect."""
        if self.controller is None:
            return None
        if isinstance(self.controller, ControllerSpec):
            return self.controller.build
        if callable(self.controller):
            return self.controller
        raise TypeError(
            "controller must be None, a ControllerSpec or a callable, "
            f"got {type(self.controller).__name__}"
        )

    def build_controller(self) -> Optional[LoadController]:
        """Construct the cell's controller instance (None if uncontrolled)."""
        factory = self.controller_factory()
        if factory is None:
            return None
        return factory(self.params)


# ----------------------------------------------------------------------
# JSON round-trip
#
# The fuzz corpus (tests/fuzz_corpus/) archives counterexample cells as
# replayable JSON documents, so a RunSpec must survive a trip through plain
# JSON data bit-identically: same spec in, equal spec out, equal simulated
# trajectory.  Only declarative specs round-trip — ad-hoc callables
# (controller/cc factories, interval tuners) have no data representation
# and are rejected loudly rather than silently dropped.
# ----------------------------------------------------------------------

#: format tag embedded in every encoded spec (bump on breaking changes)
RUN_SPEC_FORMAT = 1

_JSON_SCALARS = (str, int, float, bool, type(None))


def _encode_options(options: Tuple[Tuple[str, object], ...], what: str) -> dict:
    for name, value in options:
        if not isinstance(value, _JSON_SCALARS):
            raise ValueError(
                f"{what} option {name!r} is not a JSON scalar: {value!r}"
            )
    return dict(options)


def _encode_schedule(schedule: ParameterSchedule) -> dict:
    if isinstance(schedule, ConstantSchedule):
        return {"type": "constant", "value": schedule._value}
    if isinstance(schedule, JumpSchedule):
        return {"type": "jump", "before": schedule.before,
                "after": schedule.after, "jump_time": schedule.jump_time}
    if isinstance(schedule, StepSchedule):
        return {"type": "step", "initial": schedule.initial,
                "steps": [list(step) for step in schedule.steps]}
    if isinstance(schedule, SinusoidSchedule):
        return {"type": "sinusoid", "mean": schedule.mean,
                "amplitude": schedule.amplitude, "period": schedule.period,
                "phase": schedule.phase}
    raise ValueError(
        f"schedule type {type(schedule).__name__} has no JSON encoding"
    )


def _encode_arrivals(arrivals: ArrivalProcess) -> dict:
    if type(arrivals) is ClosedArrivals:
        return {"kind": ClosedArrivals.kind}
    if type(arrivals) is OpenArrivals:
        return {"kind": OpenArrivals.kind,
                "rate": _encode_schedule(arrivals.rate)}
    if type(arrivals) is PartlyOpenArrivals:
        return {"kind": PartlyOpenArrivals.kind,
                "rate": _encode_schedule(arrivals.rate),
                "session_alpha": arrivals.session_alpha,
                "min_session": arrivals.min_session,
                "max_session": arrivals.max_session,
                "session_think_time": arrivals.session_think_time}
    raise ValueError(
        f"arrival process type {type(arrivals).__name__} has no JSON encoding"
    )


def _decode_arrivals(data: dict) -> ArrivalProcess:
    kind = data["kind"]
    if kind == ClosedArrivals.kind:
        return ClosedArrivals()
    if kind == OpenArrivals.kind:
        return OpenArrivals(_decode_schedule(data["rate"]))
    if kind == PartlyOpenArrivals.kind:
        return PartlyOpenArrivals(
            _decode_schedule(data["rate"]),
            session_alpha=data["session_alpha"],
            min_session=data["min_session"],
            max_session=data["max_session"],
            session_think_time=data["session_think_time"],
        )
    raise ValueError(f"unknown arrival kind {kind!r}")


def _decode_schedule(data: dict) -> ParameterSchedule:
    kind = data["type"]
    if kind == "constant":
        return ConstantSchedule(data["value"])
    if kind == "jump":
        return JumpSchedule(before=data["before"], after=data["after"],
                            jump_time=data["jump_time"])
    if kind == "step":
        return StepSchedule(initial=data["initial"],
                            steps=[tuple(step) for step in data["steps"]])
    if kind == "sinusoid":
        return SinusoidSchedule(mean=data["mean"], amplitude=data["amplitude"],
                                period=data["period"], phase=data["phase"])
    raise ValueError(f"unknown schedule type {kind!r}")


def run_spec_to_jsonable(spec: RunSpec) -> dict:
    """Encode a declarative :class:`RunSpec` as JSON-serialisable plain data.

    Inverse of :func:`run_spec_from_jsonable`:
    ``run_spec_from_jsonable(run_spec_to_jsonable(spec)) == spec`` for every
    spec built from registry descriptors.  Specs carrying callables
    (controller/cc factories) or an interval tuner raise ``ValueError`` —
    those cells cannot be replayed from an archive.
    """
    if spec.controller is not None and not isinstance(spec.controller, ControllerSpec):
        raise ValueError(
            "only ControllerSpec controllers can be encoded as JSON, got "
            f"{type(spec.controller).__name__}"
        )
    if spec.cc is not None and not isinstance(spec.cc, CCSpec):
        raise ValueError(
            "only CCSpec concurrency control can be encoded as JSON, got "
            f"{type(spec.cc).__name__}"
        )
    if spec.interval_tuner is not None:
        raise ValueError("interval_tuner has no JSON encoding")
    params = spec.params
    workload = params.workload
    data = {
        "format": RUN_SPEC_FORMAT,
        "kind": spec.kind,
        "cell_id": spec.cell_id,
        "label": spec.label,
        "replicate": spec.replicate,
        "params": {
            "n_terminals": params.n_terminals,
            "think_time": params.think_time,
            "n_cpus": params.n_cpus,
            "cpu_init": params.cpu_init,
            "cpu_per_access": params.cpu_per_access,
            "cpu_commit": params.cpu_commit,
            "disk_per_access": params.disk_per_access,
            "disk_commit": params.disk_commit,
            "restart_delay": params.restart_delay,
            "stochastic_cpu": params.stochastic_cpu,
            "seed": params.seed,
            "workload": {
                "db_size": workload.db_size,
                "accesses_per_txn": workload.accesses_per_txn,
                "query_fraction": workload.query_fraction,
                "write_fraction": workload.write_fraction,
            },
        },
        "scale": {
            "stationary_horizon": spec.scale.stationary_horizon,
            "warmup": spec.scale.warmup,
            "offered_loads": [int(load) for load in spec.scale.offered_loads],
            "tracking_horizon": spec.scale.tracking_horizon,
            "measurement_interval": spec.scale.measurement_interval,
            "synthetic_steps": spec.scale.synthetic_steps,
        },
        "controller": None if spec.controller is None else {
            "kind": spec.controller.kind,
            "options": _encode_options(spec.controller.options, "controller"),
        },
        "scenario": None if spec.scenario is None else {
            "parameter": spec.scenario[0],
            "schedule": _encode_schedule(spec.scenario[1]),
        },
        "displacement": None if spec.displacement is None else {
            "criterion": spec.displacement.criterion.value,
            "enabled": spec.displacement.enabled,
            "hysteresis": spec.displacement.hysteresis,
        },
        "workload_classes": None if spec.workload_classes is None else [
            {
                "name": cls.name,
                "weight": cls.weight,
                "accesses_per_txn": cls.accesses_per_txn,
                "write_fraction": cls.write_fraction,
                # quota keys are emitted only when set, so archives of
                # quota-free mixes keep their pre-quota byte encoding
                **({"admission_quota": cls.admission_quota}
                   if cls.admission_quota is not None else {}),
                **({"queue_quota": cls.queue_quota}
                   if cls.queue_quota is not None else {}),
            }
            for cls in spec.workload_classes
        ],
        "cc": None if spec.cc is None else {
            "kind": spec.cc.kind,
            "options": _encode_options(spec.cc.options, "cc"),
        },
        "scheme_diagnostics": spec.scheme_diagnostics,
        "isolation_diagnostics": spec.isolation_diagnostics,
    }
    # emitted only when set so every pre-probes archive (and the committed
    # fuzz corpus, which CI compares byte-for-byte) stays byte-identical
    if spec.probes is not None:
        data["probes"] = list(spec.probes)
    # same byte-identity discipline for the arrival model
    if spec.arrivals is not None:
        data["arrivals"] = _encode_arrivals(spec.arrivals)
    return data


def run_spec_from_jsonable(data: dict) -> RunSpec:
    """Reconstruct the :class:`RunSpec` encoded by :func:`run_spec_to_jsonable`."""
    fmt = data.get("format")
    if fmt != RUN_SPEC_FORMAT:
        raise ValueError(
            f"unsupported run-spec format {fmt!r} (expected {RUN_SPEC_FORMAT})"
        )
    params_data = dict(data["params"])
    workload = WorkloadParams(**params_data.pop("workload"))
    params = SystemParams(workload=workload, **params_data)
    scale_data = dict(data["scale"])
    scale_data["offered_loads"] = tuple(scale_data["offered_loads"])
    scale = ExperimentScale(**scale_data)
    controller = None
    if data["controller"] is not None:
        controller = ControllerSpec.make(
            data["controller"]["kind"], **data["controller"]["options"])
    scenario = None
    if data["scenario"] is not None:
        scenario = (data["scenario"]["parameter"],
                    _decode_schedule(data["scenario"]["schedule"]))
    displacement = None
    if data["displacement"] is not None:
        displacement = DisplacementPolicy(
            criterion=VictimCriterion(data["displacement"]["criterion"]),
            enabled=data["displacement"]["enabled"],
            hysteresis=data["displacement"]["hysteresis"],
        )
    workload_classes = None
    if data["workload_classes"] is not None:
        workload_classes = tuple(
            TransactionClassSpec(**cls) for cls in data["workload_classes"]
        )
    cc = None
    if data["cc"] is not None:
        cc = CCSpec.make(data["cc"]["kind"], **data["cc"]["options"])
    return RunSpec(
        kind=data["kind"],
        cell_id=data["cell_id"],
        params=params,
        scale=scale,
        controller=controller,
        scenario=scenario,
        replicate=data["replicate"],
        label=data["label"],
        displacement=displacement,
        workload_classes=workload_classes,
        cc=cc,
        scheme_diagnostics=data["scheme_diagnostics"],
        isolation_diagnostics=data["isolation_diagnostics"],
        probes=tuple(data["probes"]) if data.get("probes") else None,
        arrivals=(_decode_arrivals(data["arrivals"])
                  if data.get("arrivals") else None),
    )


#: version salt hashed into every :func:`run_spec_fingerprint`.  The hashed
#: document already embeds :data:`RUN_SPEC_FORMAT` (so encoder changes
#: produce new keys by construction); bump THIS constant when the
#: fingerprinting scheme itself changes — e.g. a different canonicalisation
#: or digest — so stale content-addressed cache entries can never be
#: misread as fresh ones.
SPEC_FINGERPRINT_VERSION = 1


def run_spec_fingerprint(spec: RunSpec) -> str:
    """Content fingerprint of a declarative cell: equal specs, equal keys.

    The blake2b-256 hex digest of the canonical JSON serialisation
    (:func:`repro.canonical.canonical_json`) of the resolved spec —
    :func:`run_spec_to_jsonable` output wrapped with
    :data:`SPEC_FINGERPRINT_VERSION`.  This is the cache key of the sweep
    service's content-addressed result cache (:mod:`repro.svc`): because
    every cell is bit-deterministic, two specs with equal fingerprints
    provably produce byte-identical results, which is what makes serving a
    repeated cell from the cache *sound* rather than approximate.

    Properties pinned by ``tests/svc/test_cache_key.py``: equal specs hash
    equal; any semantic perturbation (seed, offered load, CC option,
    schedule breakpoint, probe set, arrivals, replicate, ...) changes the
    key; the key is a pure function of the spec's content, stable across
    process boundaries, worker counts and hosts.  Specs that cannot be
    encoded as JSON (ad-hoc callables, interval tuners) raise ``ValueError``
    — such cells are uncacheable and must always be simulated.
    """
    return canonical_digest({
        "fingerprint_version": SPEC_FINGERPRINT_VERSION,
        "run_spec": run_spec_to_jsonable(spec),
    })


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of experiment cells (one logical sweep)."""

    name: str
    cells: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a sweep must contain at least one cell")
        seen = set()
        for cell in self.cells:
            key = (cell.cell_id, cell.replicate)
            if key in seen:
                # downstream grouping keys on cell_id; silently pooling two
                # different cells would corrupt the replicate statistics
                raise ValueError(
                    f"duplicate cell {cell.cell_id!r} (replicate {cell.replicate}) "
                    f"in sweep {self.name!r}"
                )
            seen.add(key)

    def __len__(self) -> int:
        return len(self.cells)

    def cell_ids(self) -> Tuple[str, ...]:
        """Distinct cell ids in first-appearance order."""
        seen: Dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.cell_id, None)
        return tuple(seen)

    def with_replicates(self, replicates: int) -> "SweepSpec":
        """Expand every cell into ``replicates`` replicate runs.

        Replicates of one cell are adjacent and ordered by replicate index,
        so the result order of an executor run remains deterministic.
        Cells that already carry a non-zero replicate index cannot be
        expanded again.
        """
        if replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {replicates}")
        if replicates == 1:
            return self
        if any(cell.replicate != 0 for cell in self.cells):
            raise ValueError("the sweep has already been expanded into replicates")
        expanded = tuple(
            replace(cell, replicate=index)
            for cell in self.cells
            for index in range(replicates)
        )
        return SweepSpec(name=self.name, cells=expanded)
