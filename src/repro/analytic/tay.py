"""Mean-value model of blocking (two-phase locking) systems.

Tay, Goodman & Suri (1985) analyse a closed system of ``n`` transactions,
each requesting ``k`` locks out of a database of ``D`` granules, and show
that the mean number of blocked transactions is (to first order) a quadratic
function of ``n``.  The paper uses two consequences of that analysis:

* thrashing sets in roughly where adding one transaction blocks more than
  one transaction (``db(n)/dn > 1``);
* the rule of thumb ``k^2 n / D < 1.5`` for staying clear of thrashing.

The model here follows the standard first-order derivation:

* a transaction holds on average ``k / 2`` locks while it is active;
* a lock request of one transaction conflicts with a particular other
  transaction with probability ``(k/2) / D``;
* with ``n`` transactions, the probability that a request blocks is
  ``p_block = (n - 1) * k / (2 D)``;
* each transaction issues ``k`` requests, so the expected number of blocking
  events per execution is ``k * p_block = k^2 (n - 1) / (2 D)``;
* the mean number of blocked transactions is approximately the blocking
  rate times the mean blocking duration, which to first order yields the
  quadratic ``b(n) ≈ n * k^2 (n - 1) / (2 D) * w`` with ``w`` the fraction
  of the residence time a blocked transaction waits.

The absolute values of the model are rough (that is exactly the paper's
argument for feedback control instead of open-loop rules), but the
qualitative behaviour -- quadratic growth of blocking, a finite optimal
``n`` -- is what the tests and benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.tp.params import SystemParams, WorkloadParams


@dataclass(frozen=True)
class TayModel:
    """First-order mean-value model of a closed locking system."""

    #: number of granules in the database (``D``)
    db_size: int
    #: locks requested per transaction (``k``)
    locks_per_txn: int
    #: mean waiting share: fraction of residence time a blocked txn waits
    waiting_share: float = 0.5

    def __post_init__(self) -> None:
        if self.db_size < 1:
            raise ValueError(f"db_size must be >= 1, got {self.db_size}")
        if self.locks_per_txn < 1:
            raise ValueError(f"locks_per_txn must be >= 1, got {self.locks_per_txn}")
        if not 0.0 < self.waiting_share <= 1.0:
            raise ValueError(f"waiting_share must be in (0, 1], got {self.waiting_share}")

    # ------------------------------------------------------------------
    def conflict_probability(self, n: float) -> float:
        """Probability that one lock request blocks, at concurrency ``n``."""
        if n <= 1:
            return 0.0
        p = (n - 1) * self.locks_per_txn / (2.0 * self.db_size)
        return min(1.0, p)

    def blocking_events_per_txn(self, n: float) -> float:
        """Expected number of times one execution blocks."""
        return self.locks_per_txn * self.conflict_probability(n)

    def blocked_transactions(self, n: float) -> float:
        """Mean number of blocked transactions ``b(n)`` (quadratic in ``n``)."""
        if n <= 1:
            return 0.0
        b = n * self.blocking_events_per_txn(n) * self.waiting_share
        return min(b, max(0.0, n - 1.0))

    def active_transactions(self, n: float) -> float:
        """Mean number of transactions actually running: ``a(n) = n - b(n)``."""
        return max(0.0, n - self.blocked_transactions(n))

    def blocking_derivative(self, n: float, step: float = 1e-3) -> float:
        """Numerical ``db(n)/dn``; thrashing threatens once this exceeds 1."""
        return (self.blocked_transactions(n + step) - self.blocked_transactions(n - step)) / (2 * step)

    def critical_mpl(self) -> float:
        """Concurrency level where ``db(n)/dn`` reaches 1 (thrashing onset).

        For the quadratic first-order model ``b(n) = w k^2 n (n-1) / (2D)``
        the derivative reaches 1 at ``n = (D / (w k^2)) + 1/2``.
        """
        k2 = self.locks_per_txn ** 2
        return self.db_size / (self.waiting_share * k2) + 0.5

    def rule_of_thumb_mpl(self, margin: float = 1.5) -> float:
        """The published rule of thumb: ``n`` such that ``k^2 n / D = margin``."""
        return margin * self.db_size / (self.locks_per_txn ** 2)

    # ------------------------------------------------------------------
    def throughput_curve(self, levels: Sequence[float], service_rate: float = 1.0) -> list:
        """Relative throughput at each concurrency level.

        ``service_rate`` is the completion rate of one *active* transaction;
        the curve is proportional to the number of active (non-blocked)
        transactions until the physical capacity (not modelled here) caps it.
        """
        return [self.active_transactions(n) * service_rate for n in levels]

    def __str__(self) -> str:
        return (
            f"TayModel(D={self.db_size}, k={self.locks_per_txn}, "
            f"critical_mpl={self.critical_mpl():.1f}, "
            f"rule_of_thumb={self.rule_of_thumb_mpl():.1f})"
        )


class TayThroughputModel:
    """Absolute-throughput adapter of :class:`TayModel` for one system.

    :class:`TayModel` reasons in *relative* units (active transactions per
    unit service rate); the experiment layer needs the same interface the
    OCC fixed point offers — ``throughput(mpl)`` in committed transactions
    per second and ``optimal_mpl()`` — so locking-family series can carry a
    Tay-based model reference instead of the OCC one.

    Calibration, both pieces read off the physical parameters:

    * the **service rate** of one active (non-blocked) transaction is the
      reciprocal of its uncontended cycle time (CPU + disk demand of the
      ``k + 2`` phases); throughput is capped by the CPU capacity
      ``m / cpu_demand`` exactly as in the OCC model's congestion step;
    * the **waiting share** ``w`` — the fraction of residence time a
      blocked transaction spends waiting — defaults to ``0.5``: a lock
      request conflicts with a holder uniformly far through its execution,
      so the victim waits the holder's mean residual residence, half a
      cycle.  Override it to recalibrate against measured blocking.
    """

    def __init__(self, params: "SystemParams",
                 workload: Optional["WorkloadParams"] = None,
                 waiting_share: float = 0.5):
        self.params = params
        self.workload = workload or params.workload
        w = self.workload
        self.tay = TayModel(
            db_size=w.db_size,
            locks_per_txn=max(1, int(round(w.accesses_per_txn))),
            waiting_share=waiting_share,
        )
        self._cpu_demand = (params.cpu_init
                            + w.accesses_per_txn * params.cpu_per_access
                            + params.cpu_commit)
        self._disk_demand = w.accesses_per_txn * params.disk_per_access + params.disk_commit

    # ------------------------------------------------------------------
    def throughput(self, mpl: float) -> float:
        """Committed transactions per second at multiprogramming level ``mpl``."""
        cycle = self._cpu_demand + self._disk_demand
        if mpl <= 0 or cycle <= 0:
            return 0.0
        active = self.tay.active_transactions(mpl)
        rate = active / cycle
        if self._cpu_demand > 0:
            rate = min(rate, self.params.n_cpus / self._cpu_demand)
        return rate

    def throughput_curve(self, levels: Sequence[float]) -> list:
        """Throughput at each level in ``levels``."""
        return [self.throughput(level) for level in levels]

    def optimal_mpl(self, resolution: int = 64) -> float:
        """The *smallest* MPL that maximises the modelled throughput.

        Active transactions ``a(n) = n - b(n)`` peak at the Tay critical
        MPL, but the CPU capacity cap can flatten the curve earlier; a
        coarse scan over ``[1, 1.5 * critical]`` returns the first
        maximiser — the level a controller should hold, since any higher
        one buys no throughput and more blocking.
        """
        upper = max(2.0, 1.5 * self.tay.critical_mpl())
        levels = [1.0 + (upper - 1.0) * i / (resolution - 1) for i in range(resolution)]
        values = [self.throughput(level) for level in levels]
        peak = max(values)
        return next(level for level, value in zip(levels, values)
                    if value >= peak - 1e-12)

    def __str__(self) -> str:
        return (
            f"TayThroughputModel({self.tay}, cycle="
            f"{self._cpu_demand + self._disk_demand:.3f}s)"
        )
