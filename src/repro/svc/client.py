"""Client side of the sweep service's TCP control plane.

:class:`ServiceClient` speaks the one-request-per-connection protocol
(:mod:`repro.dist.protocol` ``MSG_SVC_*`` messages): submit a job, poll
its status, fetch results or cache counters, or shut the service down.
Every method opens a fresh connection, so a client object is trivially
thread-safe and never holds server-side state.

:class:`ServiceExecutor` adapts a running service to the runner's
executor interface (``execute(function, items)``), so any seam that
accepts an executor — :func:`~repro.runner.api.run_sweep`,
:func:`~repro.fuzz.executor.run_campaign` — can transparently route its
cells through the service and its content-addressed cache.  It only
accepts the canonical cell entry point
:func:`~repro.runner.cells.execute_run_spec`: the service always runs
exactly that function, so accepting anything else would silently compute
the wrong thing.
"""

from __future__ import annotations

import socket
from typing import Callable, Iterable, Iterator, List, Optional

from repro.dist import protocol
from repro.dist.protocol import (
    MSG_SVC_CACHE,
    MSG_SVC_CELLS,
    MSG_SVC_ERROR,
    MSG_SVC_OK,
    MSG_SVC_RESULTS,
    MSG_SVC_SHUTDOWN,
    MSG_SVC_STATUS,
    MSG_SVC_SUBMIT,
)
from repro.runner.cells import execute_run_spec
from repro.runner.specs import RunSpec


class ServiceError(RuntimeError):
    """The service answered a request with ``svc-error``."""


class ServiceClient:
    """Talk to a :class:`~repro.svc.service.SweepService` over TCP.

    ``address`` is the service's *control* address (not the worker one).
    """

    def __init__(self, address: str, *, timeout: float = 30.0):
        self.address = address
        self._timeout = float(timeout)

    def _request(self, message):
        host, port = protocol.parse_address(self.address)
        with socket.create_connection((host, port),
                                      timeout=self._timeout) as sock:
            protocol.send_message(sock, message)
            reply = protocol.recv_message(sock)
        if not (isinstance(reply, tuple) and len(reply) == 2):
            raise protocol.ProtocolError(f"malformed reply: {reply!r}")
        kind, payload = reply
        if kind == MSG_SVC_ERROR:
            raise ServiceError(payload)
        if kind != MSG_SVC_OK:
            raise protocol.ProtocolError(f"unexpected reply kind {kind!r}")
        return payload

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def submit(self, name: str, cells: List[RunSpec]) -> str:
        """Submit a batch of cells as one job; returns the job id."""
        return self._request((MSG_SVC_SUBMIT, name, list(cells)))

    def submit_scenario(self, scenario: str, scale: str = "smoke",
                        replicates: int = 1) -> str:
        """Submit a named registry scenario (lowered client-side)."""
        from repro.svc.service import scenario_cells

        return self.submit(scenario,
                           scenario_cells(scenario, scale=scale,
                                          replicates=replicates))

    def status(self, job_id: Optional[str] = None):
        """One job's status dict, or every job's when ``job_id`` is None."""
        return self._request((MSG_SVC_STATUS, job_id))

    def results(self, job_id: str) -> dict:
        """The deterministic results document of a finished job."""
        return self._request((MSG_SVC_RESULTS, job_id))

    def result_cells(self, job_id: str):
        """The raw ordered :class:`CellResult` list of a finished job."""
        return self._request((MSG_SVC_CELLS, job_id))

    def cache_stats(self) -> dict:
        """The service's cache counters."""
        return self._request((MSG_SVC_CACHE,))

    def shutdown(self) -> str:
        """Ask the service to shut down (acknowledged before it does)."""
        return self._request((MSG_SVC_SHUTDOWN,))

    def wait(self, job_id: str, timeout: float = 600.0,
             poll_interval: float = 0.1) -> dict:
        """Poll until the job leaves the queue/running states."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {status['state']} after {timeout:.0f}s")
            time.sleep(poll_interval)


class ServiceExecutor:
    """Executor-shaped adapter over a running sweep service.

    ``execute(execute_run_spec, cells)`` submits the cells as one job,
    waits for it, and returns the ordered results — from workers for
    fresh cells, from the content-addressed cache for repeats.  Cells
    previously simulated by *any* job (a sweep, another campaign) hit
    without re-simulation; the results are bit-identical either way.
    """

    def __init__(self, address: str, *, name: str = "service-job",
                 timeout: float = 600.0):
        self._client = ServiceClient(address)
        self._name = name
        self._timeout = float(timeout)

    def execute(self, function: Callable, items: Iterable) -> List:
        """Route one batch of cells through the service as one job."""
        if function is not execute_run_spec:
            raise ValueError(
                "a ServiceExecutor only runs execute_run_spec; "
                f"got {getattr(function, '__name__', function)!r}"
            )
        cells = list(items)
        if not cells:
            return []
        job_id = self._client.submit(self._name, cells)
        status = self._client.wait(job_id, timeout=self._timeout)
        if status["state"] != "done":
            raise RuntimeError(
                f"{job_id} {status['state']}: {status.get('error', 'unknown error')}"
            )
        return self._client.result_cells(job_id)

    def map(self, function: Callable, items: Iterable) -> Iterator:
        """Ordered result stream (materialised — the service batches)."""
        return iter(self.execute(function, items))
