"""Workload generation and dynamic parameter schedules.

The paper drives its dynamic experiments by changing one of three workload
parameters during the run (Section 7):

* ``k`` -- the number of granules accessed per transaction,
* the fraction of read-only queries,
* the fraction of write accesses of the updaters,

in either a *jump-like* fashion (abrupt change, Figures 13/14) or a
*sinusoidal* fashion (smooth, gradual change).  All of these move the height
and the position of the throughput optimum.

:class:`ParameterSchedule` and its implementations describe one scalar
parameter as a function of simulated time; :class:`Workload` bundles the
three schedules, samples concrete transactions at submission time, and
exposes the *current* :class:`~repro.tp.params.WorkloadParams` so analytic
reference models can compute the true optimum at any instant.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.sim.random_streams import RandomStreams
from repro.tp.database import Database
from repro.tp.params import WorkloadParams
from repro.tp.transaction import Transaction, TransactionClass


class ParameterSchedule(ABC):
    """A scalar workload parameter as a function of simulated time.

    Schedules are pure configuration (every attribute is set once in
    ``__init__``), so they compare and hash by configuration: a
    :class:`~repro.runner.specs.RunSpec` carrying a schedule equals its
    pickled copy after a trip through the dist wire protocol.
    """

    @abstractmethod
    def value(self, time: float) -> float:
        """Parameter value in effect at ``time``."""

    def __call__(self, time: float) -> float:
        return self.value(time)

    def _config(self) -> tuple:
        return tuple(sorted(
            (name, tuple(attr) if isinstance(attr, list) else attr)
            for name, attr in self.__dict__.items()
        ))

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._config() == other._config()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._config()))


class ConstantSchedule(ParameterSchedule):
    """A parameter that never changes."""

    def __init__(self, value: float):
        self._value = float(value)

    def value(self, time: float) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self._value})"


class JumpSchedule(ParameterSchedule):
    """Abrupt change from ``before`` to ``after`` at ``jump_time``.

    Models the jump-like workload variation of Figures 13/14.  Multiple jumps
    can be expressed with :class:`StepSchedule`.
    """

    def __init__(self, before: float, after: float, jump_time: float):
        self.before = float(before)
        self.after = float(after)
        self.jump_time = float(jump_time)

    def value(self, time: float) -> float:
        return self.after if time >= self.jump_time else self.before

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Jump({self.before}->{self.after} at t={self.jump_time})"


class StepSchedule(ParameterSchedule):
    """Piecewise-constant schedule given as (time, value) breakpoints."""

    def __init__(self, initial: float, steps: Sequence[Tuple[float, float]]):
        self.initial = float(initial)
        self.steps = sorted((float(t), float(v)) for t, v in steps)
        times = [t for t, _ in self.steps]
        if len(set(times)) != len(times):
            duplicates = sorted({t for t in times if times.count(t) > 1})
            raise ValueError(
                "StepSchedule breakpoints must have distinct times; the "
                f"effective value at a duplicated time would depend on input "
                f"order (duplicated: {duplicates})"
            )

    def value(self, time: float) -> float:
        current = self.initial
        for step_time, step_value in self.steps:
            if time >= step_time:
                current = step_value
            else:
                break
        return current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Steps(initial={self.initial}, steps={self.steps})"


class SinusoidSchedule(ParameterSchedule):
    """Smooth periodic variation around a mean value.

    ``value(t) = mean + amplitude * sin(2*pi*(t - phase)/period)`` -- the
    "sinusoidal variation modelling more smooth and gradual changes" of
    Section 9.
    """

    def __init__(self, mean: float, amplitude: float, period: float, phase: float = 0.0):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.mean = float(mean)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def value(self, time: float) -> float:
        return self.mean + self.amplitude * math.sin(
            2.0 * math.pi * (time - self.phase) / self.period
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Sinusoid(mean={self.mean}, amplitude={self.amplitude}, "
            f"period={self.period})"
        )


def _as_schedule(value) -> ParameterSchedule:
    """Coerce a number into a ConstantSchedule, pass schedules through."""
    if isinstance(value, ParameterSchedule):
        return value
    return ConstantSchedule(float(value))


def static_schedule_values(schedule: ParameterSchedule) -> Tuple[float, ...]:
    """Every value a constant/jump/step schedule can ever take.

    Dynamic schedules (sinusoid) return an empty tuple — their range is
    checked at evaluation time instead (see :meth:`Workload.params_at`).
    """
    if isinstance(schedule, ConstantSchedule):
        return (schedule._value,)
    if isinstance(schedule, JumpSchedule):
        return (schedule.before, schedule.after)
    if isinstance(schedule, StepSchedule):
        return (schedule.initial,) + tuple(value for _, value in schedule.steps)
    return ()


class Workload:
    """Samples transactions according to (possibly time-varying) parameters."""

    def __init__(self,
                 base: WorkloadParams,
                 streams: RandomStreams,
                 database: Optional[Database] = None,
                 accesses_schedule: Optional[ParameterSchedule] = None,
                 query_fraction_schedule: Optional[ParameterSchedule] = None,
                 write_fraction_schedule: Optional[ParameterSchedule] = None):
        self.base = base
        self.streams = streams
        self.database = database or Database(base.db_size, streams)
        self._accesses = accesses_schedule or ConstantSchedule(base.accesses_per_txn)
        self._query_fraction = query_fraction_schedule or ConstantSchedule(base.query_fraction)
        self._write_fraction = write_fraction_schedule or ConstantSchedule(base.write_fraction)
        self._next_txn_id = 0
        # (k, query_fraction, write_fraction) -> WorkloadParams of the last
        # call; params_at is invoked per submission and the values are
        # piecewise constant, so the frozen result is almost always reusable
        self._params_cache: Optional[Tuple[Tuple[float, float, float], WorkloadParams]] = None
        #: evaluations of *dynamic* schedules that had to be clamped into the
        #: valid parameter domain (see :meth:`params_at`); a non-zero count
        #: means the run simulated different parameters than the schedules
        #: declared, which fuzz adversaries and misconfigured arrival shapes
        #: must not be able to mask
        self.schedule_clamped = 0
        self._reject_static_out_of_range()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, params: WorkloadParams, streams: RandomStreams) -> "Workload":
        """Workload with all parameters fixed (stationary experiments)."""
        return cls(params, streams)

    @classmethod
    def with_schedules(cls, params: WorkloadParams, streams: RandomStreams,
                       accesses=None, query_fraction=None, write_fraction=None) -> "Workload":
        """Workload where any subset of parameters follows a schedule.

        Each of ``accesses``, ``query_fraction`` and ``write_fraction`` may be
        a number (constant) or a :class:`ParameterSchedule`.
        """
        return cls(
            params,
            streams,
            accesses_schedule=_as_schedule(accesses) if accesses is not None else None,
            query_fraction_schedule=(
                _as_schedule(query_fraction) if query_fraction is not None else None
            ),
            write_fraction_schedule=(
                _as_schedule(write_fraction) if write_fraction is not None else None
            ),
        )

    def _reject_static_out_of_range(self) -> None:
        """Fail loudly on constant/jump/step schedules outside the domain.

        A statically out-of-range schedule would be clamped on *every*
        evaluation — the run would silently report and sweep different
        parameters than the spec declared, and the analytic reference would
        be computed from the clamped values.  Rejecting at construction
        turns that misconfiguration into an immediate error; only
        genuinely dynamic excursions (a sinusoid overshooting its domain)
        reach the clamp-and-count path of :meth:`params_at`.
        """
        db_size = self.base.db_size
        for value in static_schedule_values(self._accesses):
            k = int(round(value))
            if not 1 <= k <= db_size:
                raise ValueError(
                    f"accesses schedule value {value} is outside [1, {db_size}] "
                    "(after rounding); the run would silently clamp it"
                )
        for name, schedule in (("query_fraction", self._query_fraction),
                               ("write_fraction", self._write_fraction)):
            for value in static_schedule_values(schedule):
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"{name} schedule value {value} is outside [0, 1]; "
                        "the run would silently clamp it"
                    )

    # ------------------------------------------------------------------
    # time-varying parameter access
    # ------------------------------------------------------------------
    def params_at(self, time: float) -> WorkloadParams:
        """The workload parameters in effect at ``time``.

        Values of *dynamic* schedules that stray outside the valid domain
        (a sinusoid whose amplitude exceeds its mean, say) are clamped into
        it, and every clamping evaluation increments
        :attr:`schedule_clamped` so the misconfiguration is visible as a
        diagnostic instead of silently changing the simulated parameters.
        Statically out-of-range schedules never get this far — they are
        rejected at construction.
        """
        raw_k = int(round(self._accesses.value(time)))
        k = max(1, min(raw_k, self.base.db_size))
        raw_query = self._query_fraction.value(time)
        query_fraction = min(1.0, max(0.0, raw_query))
        raw_write = self._write_fraction.value(time)
        write_fraction = min(1.0, max(0.0, raw_write))
        if k != raw_k or query_fraction != raw_query or write_fraction != raw_write:
            self.schedule_clamped += 1
        key = (k, query_fraction, write_fraction)
        cached = self._params_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        params = self.base.with_changes(
            accesses_per_txn=k,
            query_fraction=query_fraction,
            write_fraction=write_fraction,
        )
        self._params_cache = (key, params)
        return params

    # ------------------------------------------------------------------
    # transaction sampling
    # ------------------------------------------------------------------
    def next_transaction(self, time: float, terminal_id: int) -> Transaction:
        """Sample the next transaction submitted by ``terminal_id`` at ``time``."""
        params = self.params_at(time)
        is_query = self.streams.bernoulli("txn-class", params.query_fraction)
        k = params.accesses_per_txn
        items = tuple(self.database.sample_access_set(k).tolist())
        if is_query:
            txn_class = TransactionClass.QUERY
            write_flags = (False,) * k
        else:
            txn_class = TransactionClass.UPDATER
            rng = self.streams.stream("write-marks")
            write_fraction = params.write_fraction
            # one vectorised draw of k uniforms consumes the stream exactly
            # like k scalar draws (pinned by the golden-trajectory harness)
            flags = rng.random(k) < write_fraction
            if not flags.any() and write_fraction > 0.0:
                # an updater always performs at least one write, otherwise it
                # would silently degrade into a query and dilute the class mix
                flags[int(rng.integers(0, k))] = True
            write_flags = tuple(flags.tolist())
        txn = Transaction(
            txn_id=self._next_txn_id,
            terminal_id=terminal_id,
            txn_class=txn_class,
            items=items,
            write_flags=write_flags,
            submitted_at=time,
        )
        self._next_txn_id += 1
        return txn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Workload k={self._accesses!r} query={self._query_fraction!r} "
            f"write={self._write_fraction!r}>"
        )


# ----------------------------------------------------------------------
# mixed transaction classes (OLTP + long queries)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransactionClassSpec:
    """One transaction class of a mixed workload, as picklable plain data.

    ``write_fraction == 0`` makes the class read-only (its transactions are
    :attr:`~repro.tp.transaction.TransactionClass.QUERY` instances); any
    positive write fraction makes it an updater class that, like the base
    workload's updaters, always performs at least one write.
    """

    name: str
    #: relative frequency of the class in the mix (normalised over classes)
    weight: float
    #: granules accessed per transaction of this class (its own ``k``)
    accesses_per_txn: int
    #: probability that an access of this class's updaters is a write
    write_fraction: float = 0.0
    #: cap on this tenant's concurrently *admitted* transactions (open-system
    #: isolation: one bursting tenant cannot monopolise the gate's limit);
    #: None = bounded only by the gate's global threshold
    admission_quota: Optional[int] = None
    #: cap on this tenant's *waiting* transactions; an arrival beyond it is
    #: shed (its admission fails) instead of queued.  None = unbounded queue
    queue_quota: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a transaction class needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.accesses_per_txn < 1:
            raise ValueError(
                f"accesses_per_txn must be >= 1, got {self.accesses_per_txn}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )
        if self.admission_quota is not None and self.admission_quota < 1:
            raise ValueError(
                f"admission_quota must be >= 1, got {self.admission_quota}"
            )
        if self.queue_quota is not None and self.queue_quota < 0:
            raise ValueError(
                f"queue_quota must be >= 0, got {self.queue_quota}"
            )

    @property
    def is_query(self) -> bool:
        """True for a read-only class."""
        return self.write_fraction == 0.0


def mixed_class_params(base: WorkloadParams,
                       classes: Sequence[TransactionClassSpec]) -> WorkloadParams:
    """The expected single-class parameters of a weighted class mix.

    Weight-averages the transaction size over all classes, derives the
    aggregate query fraction from the read-only classes' weight share, and
    weight-averages the write fraction over the *updater* classes (queries
    perform no writes, so they carry no information about the write ratio of
    the writes that do happen).  A mix without updaters keeps
    ``base.write_fraction`` — the value is then irrelevant because no
    transaction ever consults it.

    This is the single source of truth for what load controllers, analytic
    reference models and the fuzz oracle should see as "the" parameters of a
    :class:`MixedClassWorkload`.
    """
    if not classes:
        raise ValueError("at least one transaction class is required")
    classes = tuple(classes)
    total_weight = sum(spec.weight for spec in classes)
    mean_k = sum(spec.weight * spec.accesses_per_txn for spec in classes) / total_weight
    query_weight = sum(spec.weight for spec in classes if spec.is_query)
    updater_weight = total_weight - query_weight
    if updater_weight > 0.0:
        write_fraction = sum(
            spec.weight * spec.write_fraction for spec in classes if not spec.is_query
        ) / updater_weight
    else:
        write_fraction = base.write_fraction
    return base.with_changes(
        accesses_per_txn=max(1, min(int(round(mean_k)), base.db_size)),
        query_fraction=query_weight / total_weight,
        write_fraction=write_fraction,
    )


class MixedClassWorkload(Workload):
    """Several transaction classes with distinct size and write ratio.

    The base :class:`Workload` realises the paper's single-class model: one
    ``k`` for every transaction, the query/updater split drawn per the
    query fraction.  This subclass realises the mixed OLTP/query workload:
    each submission first draws a *class* from the weighted mix (its own
    ``class-mix`` stream, so the class sequence forms common random numbers
    across controllers), then samples the access set and write marks with
    that class's own size and write ratio — small frequent updaters
    sharing the gate with long read-only queries.

    :meth:`params_at` reports the *expectation* of the mix (weight-averaged
    transaction size, aggregate query fraction, weight-averaged updater
    write fraction — see :func:`mixed_class_params`), so load controllers
    and analytic references keep seeing meaningful mean parameters.
    """

    def __init__(self, base: WorkloadParams, streams: RandomStreams,
                 classes: Sequence[TransactionClassSpec],
                 database: Optional[Database] = None):
        if not classes:
            raise ValueError("at least one transaction class is required")
        classes = tuple(classes)
        total_weight = sum(spec.weight for spec in classes)
        expected = mixed_class_params(base, classes)
        super().__init__(expected, streams, database=database)
        self.classes = classes
        cumulative = []
        running = 0.0
        for spec in classes:
            running += spec.weight / total_weight
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against float round-off at the top end
        self._cumulative = tuple(cumulative)

    def next_transaction(self, time: float, terminal_id: int) -> Transaction:
        """Draw a class from the mix, then sample per the class's profile."""
        draw = float(self.streams.stream("class-mix").random())
        index = 0
        while draw >= self._cumulative[index]:
            index += 1
        spec = self.classes[index]
        k = min(spec.accesses_per_txn, self.base.db_size)
        items = tuple(self.database.sample_access_set(k).tolist())
        if spec.is_query:
            txn_class = TransactionClass.QUERY
            write_flags = (False,) * k
        else:
            txn_class = TransactionClass.UPDATER
            rng = self.streams.stream("write-marks")
            # same discipline as the base workload: vectorised draw, and an
            # updater always performs at least one write
            flags = rng.random(k) < spec.write_fraction
            if not flags.any():
                flags[int(rng.integers(0, k))] = True
            write_flags = tuple(flags.tolist())
        txn = Transaction(
            txn_id=self._next_txn_id,
            terminal_id=terminal_id,
            txn_class=txn_class,
            items=items,
            write_flags=write_flags,
            tenant=spec.name,
            submitted_at=time,
        )
        self._next_txn_id += 1
        return txn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mix = ", ".join(
            f"{spec.name}:{spec.weight:g}(k={spec.accesses_per_txn})"
            for spec in self.classes
        )
        return f"<MixedClassWorkload {mix}>"
