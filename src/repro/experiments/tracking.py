"""Tracking-error metrics for the dynamic experiments.

Figures 13 and 14 are judged qualitatively in the paper ("IS reacts very
quickly ... but has serious problems to adjust correctly", "PA needs some
more time to respond but tracks the optimum more accurately and reliably").
To make the comparison quantitative and testable, this module condenses a
:class:`~repro.experiments.dynamic.TrackingResult` into a handful of
numbers:

* the mean and maximum absolute tracking error |n*(t) - n_opt(t)|,
  optionally restricted to the settled period after a jump;
* the settling time after a jump: how long until the threshold stays within
  a tolerance band around the new optimum;
* the achieved throughput relative to the reference peak (how much useful
  work the controller's choices cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.dynamic import TrackingResult


@dataclass(frozen=True)
class TrackingMetrics:
    """Summary statistics of how well a controller tracked the optimum."""

    #: mean |n* - n_opt| over the evaluated window
    mean_absolute_error: float
    #: maximum |n* - n_opt| over the evaluated window
    max_absolute_error: float
    #: mean |n* - n_opt| / n_opt (relative error)
    mean_relative_error: float
    #: time from the disturbance until the threshold settles near the optimum
    settling_time: float
    #: mean measured throughput divided by the mean reference peak
    throughput_ratio: float
    #: number of samples evaluated
    samples: int


def compute_tracking_metrics(result: TrackingResult,
                             disturbance_time: Optional[float] = None,
                             settle_tolerance: float = 0.25,
                             evaluate_after: float = 0.0) -> TrackingMetrics:
    """Compute tracking metrics from a dynamic run.

    ``disturbance_time`` is the instant of the jump (for settling-time
    computation); ``settle_tolerance`` is the width of the acceptance band
    around the optimum as a fraction of the optimum; ``evaluate_after``
    drops the initial transient from the error statistics (the controllers
    start from an arbitrary threshold, as in the paper's experiments).
    """
    if not 0.0 < settle_tolerance < 1.0:
        raise ValueError(f"settle_tolerance must be in (0, 1), got {settle_tolerance}")
    times = result.trace.times
    limits = result.trace.limits
    optima = result.reference_optima
    if not times or len(times) != len(optima):
        raise ValueError("the tracking result has no usable (time, optimum) series")

    absolute_errors = []
    relative_errors = []
    for sample_time, limit, optimum in zip(times, limits, optima):
        if sample_time < evaluate_after:
            continue
        error = abs(limit - optimum)
        absolute_errors.append(error)
        relative_errors.append(error / optimum if optimum > 0 else math.inf)

    if not absolute_errors:
        raise ValueError("evaluate_after excludes every sample of the run")

    settling_time = _settling_time(times, limits, optima, disturbance_time, settle_tolerance)
    throughput_ratio = _throughput_ratio(result, evaluate_after)

    return TrackingMetrics(
        mean_absolute_error=sum(absolute_errors) / len(absolute_errors),
        max_absolute_error=max(absolute_errors),
        mean_relative_error=sum(relative_errors) / len(relative_errors),
        settling_time=settling_time,
        throughput_ratio=throughput_ratio,
        samples=len(absolute_errors),
    )


def _settling_time(times: Sequence[float], limits: Sequence[float],
                   optima: Sequence[float], disturbance_time: Optional[float],
                   tolerance: float) -> float:
    """Time from the disturbance until the threshold stays inside the band."""
    if disturbance_time is None:
        return 0.0
    settled_at: Optional[float] = None
    for sample_time, limit, optimum in zip(times, limits, optima):
        if sample_time < disturbance_time:
            continue
        band = tolerance * optimum if optimum > 0 else tolerance
        inside = abs(limit - optimum) <= band
        if inside and settled_at is None:
            settled_at = sample_time
        elif not inside:
            settled_at = None
    if settled_at is None:
        return math.inf
    return settled_at - disturbance_time


def _throughput_ratio(result: TrackingResult, evaluate_after: float) -> float:
    """Measured throughput relative to the reference peak (1.0 = ideal)."""
    measured = []
    reference = []
    for sample_time, throughput, peak in zip(
            result.trace.times, result.trace.throughput, result.reference_peaks):
        if sample_time < evaluate_after:
            continue
        measured.append(throughput)
        reference.append(peak)
    if not measured or not reference or sum(reference) == 0:
        return 0.0
    return (sum(measured) / len(measured)) / (sum(reference) / len(reference))
