"""Randomized property tests for the discrete-event engine's invariants.

The golden-trajectory harness (``tests/golden/``) pins *specific*
trajectories bit for bit; these tests pin the engine's *semantic
invariants* on randomly generated workloads, so a hot-path change that
happens to keep the goldens intact but breaks an invariant in some other
corner of the state space is still caught.

All randomness comes from seeded :mod:`random` (stdlib) instances -- runs
are fully reproducible and no extra dependency is needed.  Each property
is exercised over several seeds.

Invariants covered:

* **time monotonicity** -- the clock never moves backwards, whatever the
  schedule;
* **equal-timestamp FIFO** -- events scheduled at the same simulation time
  are processed strictly in scheduling order (the documented sequence
  counter tie-break contract);
* **interrupt / kill semantics** -- interrupts arrive exactly at the
  interrupt time with their cause, unhandled interrupts fail the process,
  kills run no further process code but do run ``finally`` blocks;
* **resource grant conservation** -- an FCFS resource never over-grants,
  never leaks slots through cancels or interrupts, and serves
  non-cancelled waiters in strict FCFS order;
* **transaction conservation** -- in the closed model every admission is
  balanced by a departure or an in-flight transaction, and with purely
  optimistic CC every departure is a commit.
"""

import random

import pytest

from repro.sim.engine import Interrupt, ProcessKilled, Simulator
from repro.sim.resources import Resource

SEEDS = [1, 7, 42, 1991]


# ----------------------------------------------------------------------
# time monotonicity and equal-timestamp FIFO
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_clock_is_monotone_under_random_schedules(seed):
    rng = random.Random(seed)
    sim = Simulator()
    observed = []

    def sleeper(naps):
        for nap in naps:
            yield sim.timeout(nap)
            observed.append(sim.now)

    for _ in range(20):
        naps = [rng.choice([0.0, 0.125, 0.25, 1.0, rng.random()])
                for _ in range(rng.randint(1, 30))]
        sim.process(sleeper(naps))
    # sprinkle immediate events and absolute-time callbacks between them
    for _ in range(50):
        sim.call_at(rng.random() * 20.0, lambda: observed.append(sim.now))
    sim.run(until=60.0)

    assert observed, "the random schedule must produce observations"
    assert all(later >= earlier for earlier, later in zip(observed, observed[1:])), \
        "simulation time must never decrease"
    assert sim.now == 60.0


@pytest.mark.parametrize("seed", SEEDS)
def test_equal_timestamp_events_fire_in_schedule_order(seed):
    """The tie-break contract: same time => strict scheduling order.

    Schedules many callbacks onto a handful of *identical* timestamps in
    random creation order and checks that, per timestamp, execution order
    equals creation order.
    """
    rng = random.Random(seed)
    sim = Simulator()
    times = [1.0, 2.5, 2.5 + 0.0, 7.0]  # duplicates on purpose
    fired = []
    scheduled = []

    for index in range(200):
        time = rng.choice(times)
        scheduled.append((time, index))
        sim.call_at(time, lambda t=time, i=index: fired.append((t, i)))
    sim.run(until=10.0)

    assert len(fired) == len(scheduled)
    # overall: sorted by (time, scheduling order) -- exactly the heap contract
    assert fired == sorted(scheduled)


@pytest.mark.parametrize("seed", SEEDS)
def test_equal_timestamp_process_wakeups_are_fifo(seed):
    """Processes sleeping until the same instant resume in schedule order."""
    rng = random.Random(seed)
    sim = Simulator()
    wakeups = []

    def sleeper(index, delay):
        yield sim.timeout(delay)
        wakeups.append(index)

    delays = [rng.choice([1.0, 2.0, 3.0]) for _ in range(60)]
    for index, delay in enumerate(delays):
        sim.process(sleeper(index, delay))
    sim.run(until=5.0)

    expected = [index for _t, index in
                sorted((delay, index) for index, delay in enumerate(delays))]
    assert wakeups == expected


# ----------------------------------------------------------------------
# interrupt / kill semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_interrupts_arrive_on_time_with_their_cause(seed):
    rng = random.Random(seed)
    sim = Simulator()
    outcomes = {}

    def sleeper(index):
        try:
            yield sim.timeout(100.0)
            outcomes[index] = ("slept", sim.now)
        except Interrupt as interrupt:
            outcomes[index] = ("interrupted", sim.now, interrupt.cause)

    processes = {index: sim.process(sleeper(index)) for index in range(25)}
    interrupt_times = {}
    for index, process in processes.items():
        if rng.random() < 0.7:
            at = round(rng.uniform(0.1, 50.0), 6)
            interrupt_times[index] = at
            sim.call_at(at, lambda p=process, i=index: p.interrupt(f"cause-{i}"))
    sim.run(until=200.0)

    for index in processes:
        if index in interrupt_times:
            kind, at, cause = outcomes[index]
            assert kind == "interrupted"
            assert at == interrupt_times[index], "interrupt must arrive at its scheduled time"
            assert cause == f"cause-{index}"
        else:
            assert outcomes[index] == ("slept", 100.0)


@pytest.mark.parametrize("seed", SEEDS)
def test_unhandled_interrupt_and_kill_terminate_processes(seed):
    rng = random.Random(seed)
    sim = Simulator(raise_process_errors=False)
    cleanups = []

    def stubborn(index):
        try:
            yield sim.timeout(100.0)
        finally:
            cleanups.append(index)

    processes = {index: sim.process(stubborn(index)) for index in range(20)}
    fate = {}
    for index, process in processes.items():
        at = round(rng.uniform(0.1, 20.0), 6)
        if rng.random() < 0.5:
            fate[index] = Interrupt
            sim.call_at(at, process.interrupt)
        else:
            fate[index] = ProcessKilled
            sim.call_at(at, process.kill)
    sim.run(until=200.0)

    assert sorted(cleanups) == sorted(processes), "finally blocks must always run"
    for index, process in processes.items():
        assert not process.is_alive
        assert isinstance(process.exception, fate[index])


@pytest.mark.parametrize("seed", SEEDS)
def test_interrupted_process_abandons_its_target(seed):
    """After an interrupt, the abandoned event must not resume the process."""
    rng = random.Random(seed)
    sim = Simulator()
    resumes = []

    def waiter(index, trigger):
        try:
            yield trigger
            resumes.append(("value", index, sim.now))
        except Interrupt:
            resumes.append(("interrupt", index, sim.now))
            # keep living to prove the abandoned trigger never comes back
            yield sim.timeout(50.0)
            resumes.append(("later", index, sim.now))

    for index in range(15):
        trigger = sim.event()
        process = sim.process(waiter(index, trigger))
        interrupt_at = round(rng.uniform(1.0, 5.0), 6)
        trigger_at = interrupt_at + rng.uniform(0.5, 2.0)
        sim.call_at(interrupt_at, lambda p=process: p.interrupt())
        # the abandoned event still triggers afterwards -- it must be inert
        sim.call_at(trigger_at, lambda t=trigger: t.succeed("late"))
    sim.run(until=100.0)

    kinds = [kind for kind, _i, _t in resumes]
    assert kinds.count("value") == 0, "abandoned events must not deliver values"
    assert kinds.count("interrupt") == 15
    assert kinds.count("later") == 15


# ----------------------------------------------------------------------
# resource grant conservation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("capacity", [1, 3])
def test_resource_conservation_under_random_workload(seed, capacity):
    rng = random.Random(seed * 1000 + capacity)
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    all_requests = []
    finished = []

    def worker(index):
        cycles = rng.randint(1, 5)
        completed = 0
        while completed < cycles:
            request = None
            try:
                yield sim.timeout(rng.random())
                request = resource.request()
                all_requests.append(request)
                yield request
                assert resource.in_use <= resource.capacity, "over-granted"
                yield sim.timeout(rng.random())
                resource.release(request)
                completed += 1
            except Interrupt:
                # the interrupt may land while thinking, waiting or holding;
                # cancel() handles all three without leaking a slot
                if request is not None:
                    request.cancel()
        finished.append(index)

    workers = [sim.process(worker(index)) for index in range(30)]
    # random interrupts fired into the crowd while it queues
    for _ in range(20):
        victim = rng.choice(workers)
        at = rng.uniform(0.0, 15.0)
        sim.call_at(at, lambda p=victim: p.interrupt() if p.is_alive else None)
    sim.run(until=1000.0)

    assert len(finished) == 30, "every worker must run to completion"
    # conservation: nothing may remain held or queued at the end, and every
    # request was either granted at some point or cancelled while waiting
    assert resource.in_use == 0
    assert resource.queue_length == 0
    assert resource.total_requests == len(all_requests)
    granted = sum(1 for request in all_requests if request.granted_at is not None)
    cancelled_waiting = sum(1 for request in all_requests
                            if request.cancelled and request.granted_at is None)
    assert granted + cancelled_waiting == len(all_requests)
    assert not any(request.granted for request in all_requests), "leaked slot"


@pytest.mark.parametrize("seed", SEEDS)
def test_resource_fcfs_order_among_uncancelled_waiters(seed):
    """Waiters that are not cancelled are served strictly in request order."""
    rng = random.Random(seed)
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    request_order = []
    service_order = []

    cancelled = set()

    def worker(index, cancel_after):
        yield sim.timeout(index * 1e-3)  # deterministic staggered arrival
        request = resource.request()
        request_order.append(index)  # true FCFS arrival order
        if cancel_after is not None:
            # withdraw while waiting (the holder occupies the server longer)
            yield sim.timeout(cancel_after)
            if not request.granted:
                request.cancel()
                cancelled.add(index)
                return
        yield request
        service_order.append(index)
        yield sim.timeout(0.5)
        resource.release(request)

    for index in range(20):
        cancel_after = rng.choice([None, None, None, 0.01])
        sim.process(worker(index, cancel_after))
    sim.run(until=100.0)

    expected = [index for index in request_order if index not in cancelled]
    assert service_order == expected


# ----------------------------------------------------------------------
# closed-model transaction conservation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_admitted_equals_committed_plus_aborted_plus_in_flight(seed):
    """Gate-level conservation of the closed transaction model.

    Without displacement every departure is a commit, so at any stopping
    point ``admitted == committed + in-flight`` and every abandoned
    execution (abort) restarted inside the system rather than departing.
    """
    from repro.tp.params import SystemParams, WorkloadParams
    from repro.tp.system import TransactionSystem

    params = SystemParams(
        n_terminals=30, think_time=0.1, n_cpus=2,
        cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
        disk_per_access=0.004, disk_commit=0.004, seed=seed,
        workload=WorkloadParams(db_size=60, accesses_per_txn=5,
                                query_fraction=0.2, write_fraction=0.8))
    system = TransactionSystem(params)
    system.run(until=5.0)

    gate = system.gate
    metrics = system.metrics
    in_flight = gate.current_load
    assert gate.total_admitted == gate.total_departed + in_flight
    # no displacement configured: departures are exactly the commits
    assert gate.total_departed == metrics.commits
    assert gate.total_admitted == metrics.commits + in_flight
    # aborted executions restarted in place -- they never pass the gate again
    assert metrics.restarts == metrics.total_aborts
    assert metrics.submitted >= gate.total_admitted
    # the small database forces real contention, so the run exercises aborts
    assert metrics.commits > 0
    assert metrics.total_aborts > 0
