"""Probe overhead: the in-sim probe layer must observe without perturbing.

The observability layer (``repro.obs``) promises two things the goldens
cannot check at full experiment scale:

* **trajectory preservation** — a probed run commits and aborts exactly
  the transactions an unprobed run does (the probes never draw random
  numbers or mutate model state);
* **bounded overhead** — the per-event cost of the ``None``-check slot
  plus the probe callbacks stays a small multiple of the unprobed run.

This benchmark runs the ``probe_calibration`` workload's heaviest cell
twice — probes off, then all built-in probes on — asserts bit-equal
commit/abort counts and throughput, and attaches the wall-clock overhead
ratio to ``extra_info`` so regressions show up in the BENCH artifacts.
"""

import time

from conftest import run_once

from repro.cc.registry import CCSpec
from repro.experiments.config import default_system_params
from repro.experiments.stationary import run_stationary_point
from repro.obs.probes import PROBE_NAMES


def _run(scale, probes):
    base = default_system_params(seed=47)
    base = base.with_changes(
        n_terminals=max(scale.offered_loads),
        workload=base.workload.with_changes(db_size=1500, write_fraction=0.6),
    )
    started = time.perf_counter()
    point = run_stationary_point(
        base,
        horizon=scale.stationary_horizon,
        warmup=scale.warmup,
        measurement_interval=scale.measurement_interval,
        cc=CCSpec.make("two_phase_locking", victim_policy="youngest"),
        probes=probes,
    )
    return point, time.perf_counter() - started


def test_probes_preserve_trajectories_with_bounded_overhead(benchmark, scale):
    baseline, baseline_seconds = _run(scale, probes=None)

    def experiment():
        return _run(scale, probes=PROBE_NAMES)

    probed, probed_seconds = run_once(benchmark, experiment)

    # the core promise: observation does not perturb the simulation
    assert probed.commits == baseline.commits
    assert probed.aborts_by_reason == baseline.aborts_by_reason
    assert probed.throughput == baseline.throughput

    # and it actually measured something on this contended 2PL workload
    assert probed.probe_metrics["probe_lock_wait_count"] > 0
    assert 0.0 < probed.probe_metrics["probe_lock_wait_share"] <= 1.0

    overhead = probed_seconds / baseline_seconds if baseline_seconds > 0 else 1.0
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 4)
    benchmark.extra_info["probed_seconds"] = round(probed_seconds, 4)
    benchmark.extra_info["overhead_ratio"] = round(overhead, 3)
    benchmark.extra_info["lock_wait_share"] = round(
        probed.probe_metrics["probe_lock_wait_share"], 4)
    print()
    print(f"probe overhead: {baseline_seconds:.3f}s unprobed -> "
          f"{probed_seconds:.3f}s probed ({overhead:.2f}x), "
          f"measured wait share "
          f"{probed.probe_metrics['probe_lock_wait_share']:.3f}")
