"""Strict two-phase locking with waits-for-graph deadlock detection.

The paper distinguishes two classes of concurrency control (Section 1):
blocking schemes (two-phase locking), for which Tay et al. (1985) derive the
quadratic blocking behaviour, and non-blocking schemes (timestamp
certification), which the paper's own simulation uses.  The load control
algorithms are claimed to be applicable to both classes, so this module
provides the blocking representative.

Design:

* a lock table maps each granule to its holders (with their modes) and an
  FCFS queue of waiting requests;
* shared (S) locks are granted concurrently, exclusive (X) locks require
  sole ownership; lock upgrades (S -> X) are supported and take priority
  over waiting requests from other transactions;
* waiting requests are represented as simulation events so a blocked
  transaction simply ``yield``s on the grant;
* a waits-for graph is maintained incrementally; a cycle check runs whenever
  a transaction blocks, and the *youngest* transaction on the cycle is
  aborted (its pending request event fails with
  :class:`~repro.cc.base.TransactionAborted`).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional, Set

from repro.cc.base import AbortReason, ConcurrencyControl, TransactionAborted
from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.transaction import Transaction


class LockMode(enum.Enum):
    """Lock modes of the strict 2PL scheme."""

    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _LockRequest:
    """A waiting lock request for one granule."""

    txn_id: int
    mode: LockMode
    event: Event
    cancelled: bool = False


@dataclass
class _LockState:
    """Holders and waiters of a single granule."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: Deque[_LockRequest] = field(default_factory=deque)


class TwoPhaseLocking(ConcurrencyControl):
    """Strict two-phase locking (blocking CC) with deadlock detection."""

    name = "two-phase-locking"

    def __init__(self, sim: Simulator, victim_policy: str = "youngest"):
        if victim_policy not in ("youngest", "oldest", "fewest_locks"):
            raise ValueError(f"unknown victim policy {victim_policy!r}")
        self.sim = sim
        self.victim_policy = victim_policy
        self._locks: Dict[int, _LockState] = {}
        #: txn_id -> set of granules it currently holds locks on
        self._held: Dict[int, Set[int]] = {}
        #: txn_id -> granule it is currently waiting for (at most one)
        self._waiting_for_item: Dict[int, int] = {}
        #: txn_id -> start time (for victim selection)
        self._start_time: Dict[int, float] = {}
        # statistics
        self.lock_requests = 0
        self.lock_waits = 0
        self.deadlocks = 0

    # ------------------------------------------------------------------
    # ConcurrencyControl interface
    # ------------------------------------------------------------------
    def begin(self, txn: "Transaction") -> None:
        """Register a fresh execution with no locks held."""
        self._held.setdefault(txn.txn_id, set())
        self._start_time[txn.txn_id] = self.sim.now

    def access(self, txn: "Transaction", item: int, is_write: bool) -> Optional[Event]:
        """Acquire an S or X lock on ``item``; may return a wait event."""
        mode = LockMode.EXCLUSIVE if is_write else LockMode.SHARED
        if is_write:
            txn.write_set.add(item)
            txn.read_set.add(item)
        else:
            txn.read_set.add(item)
        return self._acquire(txn.txn_id, item, mode)

    def try_commit(self, txn: "Transaction") -> bool:
        """2PL serializes by blocking: a transaction reaching commit always commits."""
        return True

    def finish(self, txn: "Transaction") -> None:
        """Release all locks at commit (strictness)."""
        self._release_all(txn.txn_id)

    def abort(self, txn: "Transaction", reason: AbortReason) -> None:
        """Release all locks and withdraw any pending request."""
        self._cancel_waiting(txn.txn_id)
        self._release_all(txn.txn_id)

    def active_count(self) -> int:
        """Transactions currently holding or waiting for locks.

        A transaction that holds locks while waiting for another counts
        once (the sets overlap for every blocked-but-not-empty-handed
        transaction, which is the common case under contention).
        """
        active = {txn for txn, items in self._held.items() if items}
        active.update(self._waiting_for_item)
        return len(active)

    def reset(self) -> None:
        """Drop the whole lock table (between experiment repetitions)."""
        self._locks.clear()
        self._held.clear()
        self._waiting_for_item.clear()
        self._start_time.clear()
        self.lock_requests = 0
        self.lock_waits = 0
        self.deadlocks = 0

    # ------------------------------------------------------------------
    # lock table mechanics
    # ------------------------------------------------------------------
    @property
    def blocked_count(self) -> int:
        """Number of transactions currently blocked on a lock."""
        return len(self._waiting_for_item)

    def holders_of(self, item: int) -> Dict[int, LockMode]:
        """Current holders of ``item`` (copy)."""
        state = self._locks.get(item)
        return dict(state.holders) if state else {}

    def _acquire(self, txn_id: int, item: int, mode: LockMode) -> Optional[Event]:
        self.lock_requests += 1
        state = self._locks.setdefault(item, _LockState())
        held_mode = state.holders.get(txn_id)
        if held_mode is not None:
            if held_mode == LockMode.EXCLUSIVE or mode == LockMode.SHARED:
                return None  # already strong enough
            # upgrade S -> X: possible immediately iff we are the only holder
            if len(state.holders) == 1:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                return None
            return self._enqueue(txn_id, item, mode, state)
        if self._compatible(state, mode):
            state.holders[txn_id] = mode
            self._held.setdefault(txn_id, set()).add(item)
            return None
        return self._enqueue(txn_id, item, mode, state)

    def _compatible(self, state: _LockState, mode: LockMode) -> bool:
        if not state.holders:
            # grant only if no one is already waiting (FCFS, no barging)
            return not state.waiters
        if state.waiters:
            return False
        if mode == LockMode.SHARED:
            return all(m == LockMode.SHARED for m in state.holders.values())
        return False

    def _enqueue(self, txn_id: int, item: int, mode: LockMode, state: _LockState) -> Event:
        self.lock_waits += 1
        event = Event(self.sim)
        state.waiters.append(_LockRequest(txn_id, mode, event))
        self._waiting_for_item[txn_id] = item
        # A single block can close SEVERAL cycles at once: the FCFS edges
        # (waiting for earlier waiters of the same granule) run in parallel
        # to the direct holder edges, so aborting the victim of the first
        # cycle found may leave another cycle through the same granule
        # intact — and no further blocking event would ever re-trigger
        # detection for it.  Re-detect until the requester's reachable
        # graph is cycle-free (each round aborts one waiter, so this
        # terminates); once the requester itself is sacrificed it no longer
        # waits and the loop ends naturally.
        victim = self._detect_deadlock(txn_id)
        while victim is not None:
            self.deadlocks += 1
            self._abort_waiter(victim, item_hint=item)
            victim = self._detect_deadlock(txn_id)
        return event

    def _release_all(self, txn_id: int) -> None:
        items = self._held.pop(txn_id, set())
        self._start_time.pop(txn_id, None)
        for item in items:
            state = self._locks.get(item)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            self._grant_waiters(item, state)
            if not state.holders and not state.waiters:
                del self._locks[item]

    def _grant_waiters(self, item: int, state: _LockState) -> None:
        while state.waiters:
            head = state.waiters[0]
            if head.cancelled:
                state.waiters.popleft()
                continue
            if head.mode == LockMode.EXCLUSIVE:
                other_holders = [t for t in state.holders if t != head.txn_id]
                if other_holders:
                    return
            else:
                if any(m == LockMode.EXCLUSIVE for m in state.holders.values()):
                    return
            state.waiters.popleft()
            state.holders[head.txn_id] = head.mode
            self._held.setdefault(head.txn_id, set()).add(item)
            self._waiting_for_item.pop(head.txn_id, None)
            head.event.succeed(head.mode)

    def _cancel_waiting(self, txn_id: int) -> None:
        item = self._waiting_for_item.pop(txn_id, None)
        if item is None:
            return
        state = self._locks.get(item)
        if state is None:
            return
        for request in state.waiters:
            if request.txn_id == txn_id and not request.cancelled:
                request.cancelled = True
        self._grant_waiters(item, state)

    # ------------------------------------------------------------------
    # deadlock handling
    # ------------------------------------------------------------------
    def _waits_for(self, txn_id: int) -> Set[int]:
        """Transactions that ``txn_id`` currently waits for."""
        item = self._waiting_for_item.get(txn_id)
        if item is None:
            return set()
        state = self._locks.get(item)
        if state is None:
            return set()
        blockers = {t for t in state.holders if t != txn_id}
        # FCFS: also wait for earlier waiters of the same granule
        for request in state.waiters:
            if request.txn_id == txn_id:
                break
            if not request.cancelled:
                blockers.add(request.txn_id)
        return blockers

    def _detect_deadlock(self, start: int) -> Optional[int]:
        """DFS from ``start`` in the waits-for graph; return a victim or None."""
        path: list[int] = []
        on_path: Set[int] = set()
        visited: Set[int] = set()

        def dfs(node: int) -> Optional[list[int]]:
            path.append(node)
            on_path.add(node)
            for successor in self._waits_for(node):
                if successor in on_path:
                    return path[path.index(successor):]
                if successor not in visited:
                    cycle = dfs(successor)
                    if cycle is not None:
                        return cycle
            on_path.discard(node)
            visited.add(node)
            path.pop()
            return None

        cycle = dfs(start)
        if cycle is None:
            return None
        return self._select_victim(cycle)

    def _select_victim(self, cycle: list[int]) -> int:
        if self.victim_policy == "youngest":
            return max(cycle, key=lambda t: self._start_time.get(t, 0.0))
        if self.victim_policy == "oldest":
            return min(cycle, key=lambda t: self._start_time.get(t, 0.0))
        return min(cycle, key=lambda t: len(self._held.get(t, ())))

    def _abort_waiter(self, txn_id: int, item_hint: int) -> None:
        """Fail the victim's pending request so its process aborts itself."""
        item = self._waiting_for_item.get(txn_id, item_hint)
        state = self._locks.get(item)
        if state is None:
            return
        for request in state.waiters:
            if request.txn_id == txn_id and not request.cancelled:
                request.cancelled = True
                self._waiting_for_item.pop(txn_id, None)
                request.event.fail(
                    TransactionAborted(AbortReason.DEADLOCK, f"victim of deadlock on granule {item}")
                )
                self._grant_waiters(item, state)
                return
