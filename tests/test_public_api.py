"""Tests of the top-level public API surface.

A downstream user should be able to build the whole feedback loop from the
names re-exported by ``repro`` and its subpackages, without reaching into
private modules.  These tests pin that surface.
"""

import math

import pytest

import repro
from repro import analytic, cc, core, experiments, sim, tp


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ advertises missing name {name!r}"

    def test_subpackage_all_names_resolve(self):
        for package in (sim, tp, cc, core, analytic, experiments):
            for name in package.__all__:
                assert hasattr(package, name), (
                    f"{package.__name__}.__all__ advertises missing name {name!r}")

    def test_controllers_available_at_top_level(self):
        assert repro.IncrementalStepsController is core.IncrementalStepsController
        assert repro.ParabolaController is core.ParabolaController
        assert repro.NoControl is core.NoControl
        assert repro.FixedLimit is core.FixedLimit


class TestEndToEndViaPublicApi:
    def test_quickstart_flow(self):
        """The README quickstart, at miniature scale."""
        params = repro.SystemParams(
            n_terminals=40, think_time=0.2, n_cpus=2,
            cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
            disk_per_access=0.005, disk_commit=0.005, seed=21,
            workload=repro.WorkloadParams(db_size=300, accesses_per_txn=4))
        system = repro.TransactionSystem(params)
        controller = repro.ParabolaController(initial_limit=5, lower_bound=2,
                                              upper_bound=params.n_terminals)
        loop = system.attach_controller(controller, interval=1.0)
        system.run(until=15.0)

        summary = system.summary()
        assert summary["throughput"] > 0
        assert len(loop.trace) >= 10
        assert all(2 <= limit <= params.n_terminals for limit in loop.trace.limits)

    def test_controller_against_synthetic_plant_via_public_api(self):
        scenario = analytic.DynamicOptimumScenario.constant(position=30.0, height=50.0)
        controller = repro.IncrementalStepsController(initial_limit=5, lower_bound=2,
                                                      upper_bound=100, min_step=2.0)
        plant = analytic.SyntheticSystem(scenario, controller, noise_std=0.2, seed=4)
        trace = plant.run(150)
        assert len(trace) == 150
        settled = trace.limits[-30:]
        assert 15 <= sum(settled) / len(settled) <= 55

    def test_experiments_namespace(self):
        scale = experiments.ExperimentScale.smoke()
        assert scale.stationary_horizon > 0
        params = experiments.default_system_params()
        assert params.n_terminals > 0
        assert math.isfinite(experiments.contention_bound_params().think_time)
