"""Deterministic observability: in-sim probes and structured run telemetry.

The package has two halves, both opt-in and both zero-cost when off:

* :mod:`repro.obs.probes` — **in-sim probes**: counters, gauges and
  time-weighted statistics sampled on *simulation-time* intervals inside a
  running :class:`~repro.tp.system.TransactionSystem`.  Probes are selected
  per cell via :attr:`~repro.runner.specs.RunSpec.probes` and surface as
  ``probe_<name>`` metrics on the cell result.  They are deterministic and
  trajectory-preserving: a probed cell commits and aborts exactly the
  transactions the unprobed cell does, and probe metrics are bit-identical
  across the serial, multiprocessing and distributed executors.
* :mod:`repro.obs.telemetry` — **structured run telemetry**: *wall-clock*
  spans (cell execute times, sweep durations, dispatch/queue waits,
  heartbeat gaps) emitted as canonical JSONL by the executors and the
  distributed coordinator, attributed to the worker process that produced
  them.  Summarise a telemetry file with the ``repro-obs`` CLI
  (:mod:`repro.obs.cli`).

:mod:`repro.obs.calibration` closes the loop into the analytic layer: the
lock-wait probe's measured statistics calibrate
:class:`~repro.analytic.tay.TayThroughputModel`'s waiting share instead of
the 0.5 default.

See ``docs/observability.md`` for the propagation contract (what reaches
worker processes and how) and a tour of every built-in probe.
"""

from repro.obs.calibration import DEFAULT_WAITING_SHARE, calibrated_tay_model, measured_wait_share
from repro.obs.probes import PROBE_NAMES, ProbeSet, validate_probes
from repro.obs.telemetry import (
    TELEMETRY_ENV,
    TelemetrySink,
    active_sink,
    configure_cli_logging,
    emit,
    install_sink,
    set_worker_name,
    telemetry_to,
    worker_name,
)

__all__ = [
    "DEFAULT_WAITING_SHARE",
    "PROBE_NAMES",
    "ProbeSet",
    "TELEMETRY_ENV",
    "TelemetrySink",
    "active_sink",
    "calibrated_tay_model",
    "configure_cli_logging",
    "emit",
    "install_sink",
    "measured_wait_share",
    "set_worker_name",
    "telemetry_to",
    "validate_probes",
    "worker_name",
]
