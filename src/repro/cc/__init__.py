"""Concurrency control schemes.

The paper's simulation uses an optimistic *timestamp certification* scheme
(Bernstein, Hadzilacos & Goodman 1987) because, for a non-blocking protocol,
data contention is resolved by additional resource contention (restarts) and
thrashing emerges naturally once the physical resources saturate.

The full family spans both classes discussed in Section 1 (and by the
Tay/Iyer rules of thumb): the optimistic side adds *forward* validation
(:mod:`repro.cc.occ_forward`), and the blocking side is the strict-2PL
family of :mod:`repro.cc.two_phase_locking` — shared lock-table machinery
with three conflict resolutions (waits-for deadlock detection, wound-wait,
wait-die).

The multiversion family (:mod:`repro.cc.mvcc`) adds the scheme production
engines actually run: snapshot isolation — reads served from a begin-time
snapshot without ever blocking, writes validated first-committer-wins.

The registry (:mod:`repro.cc.registry`) makes the scheme a sweepable
dimension of the experiment grid: a picklable :class:`CCSpec` names a
registered kind (``timestamp_cert``, ``occ_forward``, ``two_phase_locking``,
``wound_wait``, ``wait_die``, ``snapshot_isolation``) plus its options, and
the runner builds the scheme inside the worker that runs the cell — exactly
like controllers.  Each kind carries a *family* (:func:`cc_family`) that
selects its analytic reference (Tay's blocking model vs the OCC fixed
point) and a declared *isolation level* (:func:`cc_level`).

:mod:`repro.cc.history` provides the opt-in isolation oracle: a recorder
that observes any scheme through the ``ConcurrencyControl`` surface plus
history checkers — serialization-graph acyclicity
(:func:`check_serializability`), a weak-isolation anomaly classifier
(:func:`classify_anomalies`), and the declared-level tester
(:func:`check_isolation`) — the certification harness every registered
scheme must pass at its own level.
"""

from repro.cc.base import (
    AbortReason,
    ConcurrencyControl,
    TransactionAborted,
)
from repro.cc.history import (
    ANOMALY_KINDS,
    ISOLATION_LEVELS,
    Anomaly,
    CommittedExecution,
    HistoryRecorder,
    IsolationVerdict,
    RecordingConcurrencyControl,
    SerializabilityVerdict,
    anomaly_counts,
    check_isolation,
    check_serializability,
    classify_anomalies,
    conflict_graph,
)
from repro.cc.mvcc import SnapshotIsolation
from repro.cc.occ_forward import OccForwardValidation
from repro.cc.registry import (
    CCSpec,
    cc_family,
    cc_kinds,
    cc_level,
    declared_level,
    register_cc,
    resolve_cc,
)
from repro.cc.timestamp_cert import TimestampCertification
from repro.cc.two_phase_locking import (
    LockingScheme,
    LockMode,
    TwoPhaseLocking,
    WaitDieLocking,
    WoundWaitLocking,
)

__all__ = [
    "AbortReason",
    "ConcurrencyControl",
    "TransactionAborted",
    "TimestampCertification",
    "OccForwardValidation",
    "LockingScheme",
    "TwoPhaseLocking",
    "WoundWaitLocking",
    "WaitDieLocking",
    "LockMode",
    "SnapshotIsolation",
    "CCSpec",
    "cc_family",
    "cc_kinds",
    "cc_level",
    "declared_level",
    "register_cc",
    "resolve_cc",
    "HistoryRecorder",
    "RecordingConcurrencyControl",
    "CommittedExecution",
    "SerializabilityVerdict",
    "check_serializability",
    "conflict_graph",
    "ANOMALY_KINDS",
    "ISOLATION_LEVELS",
    "Anomaly",
    "IsolationVerdict",
    "anomaly_counts",
    "check_isolation",
    "classify_anomalies",
]
