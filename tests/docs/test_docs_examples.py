"""Execute the fenced ``python`` blocks of the docs pages under pytest.

The pages under ``docs/`` advertise themselves as *executable*: every
claim they make about the isolation oracle or the scheme registry is an
assertion in a fenced code block.  This harness keeps that promise — each
page's ``python`` blocks are extracted in order and executed in one shared
namespace (so later blocks can use names defined earlier, exactly as a
reader would run them top to bottom).  A doc drifting from the code fails
CI with the offending block's source in the traceback.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent.parent / "docs"

#: a fenced code block opened with ```python and closed with ```
_FENCED_PYTHON = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)

DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))


def python_blocks(page: Path):
    """The page's fenced python blocks with their starting line numbers."""
    text = page.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCED_PYTHON.finditer(text):
        line = text.count("\n", 0, match.start()) + 2  # first code line
        blocks.append((line, match.group(1)))
    return blocks


def test_every_docs_page_is_discovered():
    """The executable catalog must exist and actually contain code."""
    names = [page.name for page in DOC_PAGES]
    assert "anomalies.md" in names
    assert "cc-schemes.md" in names
    for page in DOC_PAGES:
        assert python_blocks(page), f"{page.name} has no runnable blocks"


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda page: page.name)
def test_docs_examples_execute(page):
    """Run the page's blocks top to bottom in one shared namespace."""
    namespace = {"__name__": f"docs_example_{page.stem}"}
    for line, source in python_blocks(page):
        code = compile(source, f"{page.name}:{line}", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs is the point


# ----------------------------------------------------------------------
# the link checker, kept honest by the same suite that CI's docs job runs
# ----------------------------------------------------------------------
def _load_check_links():
    tool = DOCS_DIR.parent / "tools" / "check_links.py"
    spec = importlib.util.spec_from_file_location("check_links", tool)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_links", module)
    spec.loader.exec_module(module)
    return module


class TestLinkChecker:
    def test_repository_markdown_has_no_broken_links(self):
        assert _load_check_links().main([]) == 0

    def test_broken_file_link_is_reported(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text(
            "see [missing](docs/nope.md)\n", encoding="utf-8")
        (tmp_path / "docs").mkdir()
        assert _load_check_links().main(["--root", str(tmp_path)]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_broken_anchor_is_reported(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "page.md").write_text("# Only Heading\n", encoding="utf-8")
        (tmp_path / "README.md").write_text(
            "see [anchor](docs/page.md#other-heading)\n", encoding="utf-8")
        assert _load_check_links().main(["--root", str(tmp_path)]) == 1

    def test_valid_anchor_and_code_block_links_pass(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "page.md").write_text(
            "# A `coded` Heading\n\n"
            "```markdown\n[not a link](never/checked.md)\n```\n",
            encoding="utf-8")
        (tmp_path / "README.md").write_text(
            "ok: [anchor](docs/page.md#a-coded-heading) and "
            "[external](https://example.org/x)\n", encoding="utf-8")
        assert _load_check_links().main(["--root", str(tmp_path)]) == 0
