"""Closing the loop: measured lock-wait shares calibrate the Tay reference."""

import json
from pathlib import Path

import pytest

from repro.analytic.references import reference_model_for
from repro.analytic.tay import TayThroughputModel
from repro.cc.registry import CCSpec
from repro.experiments.config import default_system_params
from repro.obs.calibration import (
    DEFAULT_WAITING_SHARE,
    calibrated_tay_model,
    measured_wait_share,
)

GOLDEN = Path(__file__).resolve().parent.parent / "golden" / "probe_calibration.json"


def probe_calibration_params():
    base = default_system_params(seed=47)
    return base.with_changes(workload=base.workload.with_changes(
        db_size=1500, write_fraction=0.6))


class TestMeasuredWaitShare:
    def test_reads_the_share_the_probe_reports(self):
        assert measured_wait_share({"probe_lock_wait_share": 0.37}) == 0.37

    def test_recomputes_from_the_raw_means_when_the_share_is_absent(self):
        metrics = {"probe_lock_wait_mean": 0.1,
                   "probe_lock_wait_residence_mean": 0.4}
        assert measured_wait_share(metrics) == pytest.approx(0.25)

    def test_missing_measurement_falls_back_to_the_default(self):
        assert measured_wait_share({}) == DEFAULT_WAITING_SHARE
        assert measured_wait_share({}, default=0.3) == 0.3

    def test_a_run_without_waits_falls_back_to_the_default(self):
        assert measured_wait_share({"probe_lock_wait_share": 0.0}) \
            == DEFAULT_WAITING_SHARE

    def test_the_share_is_clamped_into_the_unit_interval(self):
        assert measured_wait_share({"probe_lock_wait_share": 1.7}) == 1.0


class TestCalibratedModel:
    def test_builds_a_tay_model_around_the_measured_share(self):
        model = calibrated_tay_model(probe_calibration_params(),
                                     {"probe_lock_wait_share": 0.4})
        assert isinstance(model, TayThroughputModel)
        assert model.tay.waiting_share == 0.4

    def test_unprobed_metrics_reproduce_the_default_reference(self):
        params = probe_calibration_params()
        calibrated = calibrated_tay_model(params, {})
        default = TayThroughputModel(params)
        assert calibrated.tay.waiting_share == default.tay.waiting_share

    def test_reference_model_for_accepts_a_measured_share(self):
        params = probe_calibration_params()
        cc = CCSpec.make("two_phase_locking", victim_policy="youngest")
        name, model = reference_model_for(params, cc, waiting_share=0.41)
        assert name == "TayModel"
        assert model.tay.waiting_share == 0.41

    def test_the_optimistic_reference_ignores_the_share(self):
        params = probe_calibration_params()
        name, model = reference_model_for(params, CCSpec.make("timestamp_cert"),
                                          waiting_share=0.41)
        assert name == "OccModel"
        assert not hasattr(model, "tay")


class TestCalibrationAcceptance:
    """The measured share must explain the sweep at least as well as 0.5.

    The data is the golden-pinned ``probe_calibration`` scenario — the same
    simulated 2PL sweep the probes measured — so this comparison is exactly
    reproducible: both models predict throughput at each uncontrolled
    cell's measured multiprogramming level, and the model calibrated from
    the contended cell's observed waiting share may not track the simulated
    throughputs worse than the literature default does.
    """

    def load_uncontrolled_cells(self):
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        cells = [cell["metrics"] for cell in golden["cells"]
                 if "without control" in cell["cell_id"]]
        assert len(cells) == 3
        return cells

    def sweep_error(self, model, cells):
        return sum(abs(model.throughput(m["mean_concurrency"]) - m["throughput"])
                   for m in cells)

    def test_measured_share_tracks_the_sweep_at_least_as_well_as_default(self):
        params = probe_calibration_params()
        cells = self.load_uncontrolled_cells()
        # calibrate from the most contended cell: the regime where blocking
        # (and therefore the waiting share) actually shapes throughput
        contended = max(cells, key=lambda m: m["probe_lock_wait_share"])
        share = measured_wait_share(contended)
        assert share != DEFAULT_WAITING_SHARE  # the probe measured something

        calibrated = calibrated_tay_model(params, contended)
        default = TayThroughputModel(params)
        assert calibrated.tay.waiting_share == share
        assert self.sweep_error(calibrated, cells) \
            <= self.sweep_error(default, cells)
