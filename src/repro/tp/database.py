"""Logical database: a set of data granules and access-set sampling.

The paper's logical model is deliberately simple: each transaction accesses
a constant number ``k`` of data items selected uniformly at random ("no hot
spots").  The database object exists as its own abstraction so that skewed
access patterns (hot spots) can be added as an extension without touching
the rest of the model; a Zipf-like hot-spot sampler is provided for the
ablation experiments.
"""

from __future__ import annotations

import numpy as np

from repro.sim.random_streams import RandomStreams


class Database:
    """A database of ``size`` granules addressed ``0 .. size-1``."""

    def __init__(self, size: int, streams: RandomStreams,
                 hot_spot_fraction: float = 0.0,
                 hot_spot_access_probability: float = 0.0):
        """Create a database.

        ``hot_spot_fraction`` of the granules form a hot set that receives
        ``hot_spot_access_probability`` of all accesses (the classic "x% of
        accesses go to y% of the data" rule).  Both default to zero, which
        reproduces the paper's uniform, hot-spot-free access pattern.
        """
        if size < 1:
            raise ValueError(f"database size must be >= 1, got {size}")
        if not 0.0 <= hot_spot_fraction <= 1.0:
            raise ValueError("hot_spot_fraction must be in [0, 1]")
        if not 0.0 <= hot_spot_access_probability <= 1.0:
            raise ValueError("hot_spot_access_probability must be in [0, 1]")
        if hot_spot_fraction == 0.0 and hot_spot_access_probability > 0.0:
            raise ValueError("a hot-spot access probability needs a non-empty hot set")
        self.size = int(size)
        self.streams = streams
        self.hot_spot_fraction = hot_spot_fraction
        self.hot_spot_access_probability = hot_spot_access_probability
        self._hot_count = int(round(self.size * hot_spot_fraction))

    # ------------------------------------------------------------------
    def sample_access_set(self, count: int) -> np.ndarray:
        """Draw ``count`` distinct granule identifiers.

        Uniform without replacement when no hot spot is configured;
        otherwise the expected share ``hot_spot_access_probability`` of the
        accesses is drawn from the hot set and the rest from the cold set
        (still without replacement overall).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > self.size:
            raise ValueError(
                f"cannot access {count} distinct granules in a database of size {self.size}"
            )
        if count == 0:
            return np.empty(0, dtype=np.int64)
        rng = self.streams.stream("data-access")
        if self._hot_count == 0 or self.hot_spot_access_probability == 0.0:
            return rng.choice(self.size, size=count, replace=False).astype(np.int64)
        return self._sample_with_hot_spot(rng, count)

    def _sample_with_hot_spot(self, rng: np.random.Generator, count: int) -> np.ndarray:
        hot_target = int(round(count * self.hot_spot_access_probability))
        hot_target = min(hot_target, self._hot_count, count)
        cold_count = self.size - self._hot_count
        cold_target = count - hot_target
        if cold_target > cold_count:
            # not enough cold granules; spill back into the hot set
            hot_target += cold_target - cold_count
            cold_target = cold_count
        hot_items = rng.choice(self._hot_count, size=hot_target, replace=False)
        cold_items = rng.choice(cold_count, size=cold_target, replace=False) + self._hot_count
        items = np.concatenate([hot_items, cold_items]).astype(np.int64)
        rng.shuffle(items)
        return items

    def is_hot(self, item: int) -> bool:
        """True if ``item`` belongs to the hot set."""
        return item < self._hot_count

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Database size={self.size} hot={self._hot_count}>"
