"""The isolation trade-off: 2PL vs backward OCC vs snapshot isolation.

The ``isolation_tradeoff`` scenario runs the same contended closed system
under strict two-phase locking, backward-validation certification and
multiversion snapshot isolation — each uncontrolled and under the
incremental-steps controller, with common random numbers across all six
series.  Every cell carries both scheme and isolation diagnostics, so the
printed table is backed by per-reason abort counts *and* the per-kind
anomaly counts of the isolation oracle.

The qualitative statements checked:

* the three schemes genuinely differ — no two produce the same
  uncontrolled load/throughput series;
* the serializable schemes pay for their level in full: both 2PL and OCC
  report **zero** anomalies of every kind on every cell;
* snapshot isolation's weaker level is *visible*: its uncontrolled cells
  exhibit write skew — and only write skew — at the oracle;
* the weaker level buys something real: deep in the contention regime
  (the heaviest offered load, uncontrolled) SI both out-commits OCC and
  wastes less work (a restart ratio no worse than OCC's), because its
  first-committer-wins check certifies write-write conflicts only, while
  backward validation also kills readers.
"""

from conftest import run_once

from repro.cc import ANOMALY_KINDS
from repro.experiments.report import format_sweep_table
from repro.runner import run_sweep, stationary_sweeps

SCHEMES = ("2PL", "OCC", "SI")

ANOMALY_METRICS = tuple(f"anomalies_{kind}" for kind in ANOMALY_KINDS)


def test_snapshot_isolation_trades_anomalies_for_throughput(benchmark, scale,
                                                            workers, replicates):
    def experiment():
        result = run_sweep("isolation_tradeoff", scale=scale, workers=workers,
                           replicates=replicates)
        return result, stationary_sweeps(result)

    result, sweeps = run_once(benchmark, experiment)

    print()
    print("strict 2PL vs backward OCC vs snapshot isolation — throughput "
          "with and without IS control")
    print(format_sweep_table(list(sweeps.values())))

    series = {}
    for scheme in SCHEMES:
        uncontrolled = sweeps[f"{scheme} without control"]
        series[scheme] = tuple(round(p.throughput, 2)
                               for p in uncontrolled.points)
        benchmark.extra_info[f"{scheme}_uncontrolled"] = list(series[scheme])
        benchmark.extra_info[f"{scheme}_is_control"] = [
            round(p.throughput, 2)
            for p in sweeps[f"{scheme} IS control"].points]

    # three genuinely different schemes, not one curve thrice
    assert len(set(series.values())) == len(SCHEMES), (
        f"two schemes produced identical series: {series}")

    # the serializable schemes are anomaly-free on every cell — the oracle
    # confirms they delivered the level they charge for
    for scheme in ("2PL", "OCC"):
        cells = [cell for cell in result.results
                 if cell.label.startswith(scheme)]
        assert cells, f"no cells labeled {scheme}"
        for cell in cells:
            for metric in ANOMALY_METRICS:
                assert cell.metrics[metric] == 0.0, (
                    f"{cell.cell_id}: serializable scheme reported {metric}="
                    f"{cell.metrics[metric]}")

    # snapshot isolation's anomalies are write skew and nothing else
    si_cells = [cell for cell in result.results
                if cell.label == "SI without control"]
    skew = sum(cell.metrics["anomalies_write_skew"] for cell in si_cells)
    assert skew > 0, "SI never exhibited write skew — the trade-off is invisible"
    for cell in si_cells:
        for metric in ANOMALY_METRICS:
            if metric != "anomalies_write_skew":
                assert cell.metrics[metric] == 0.0, (
                    f"{cell.cell_id}: SI exhibited a forbidden anomaly "
                    f"({metric}={cell.metrics[metric]})")
    benchmark.extra_info["si_write_skew_uncontrolled"] = skew

    # ... and the weaker level pays off deep in the contention regime
    si = sweeps["SI without control"]
    occ = sweeps["OCC without control"]
    heaviest = max(point.offered_load for point in si.points)
    si_heavy = next(p for p in si.points if p.offered_load == heaviest)
    occ_heavy = next(p for p in occ.points if p.offered_load == heaviest)
    assert si_heavy.throughput > occ_heavy.throughput, (
        f"SI ({si_heavy.throughput:.1f} tps) did not beat OCC "
        f"({occ_heavy.throughput:.1f} tps) at N={heaviest}")
    assert si_heavy.restart_ratio <= occ_heavy.restart_ratio, (
        f"SI restarted more than OCC at N={heaviest} "
        f"({si_heavy.restart_ratio:.2f} vs {occ_heavy.restart_ratio:.2f})")
