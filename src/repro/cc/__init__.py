"""Concurrency control schemes.

The paper's simulation uses an optimistic *timestamp certification* scheme
(Bernstein, Hadzilacos & Goodman 1987) because, for a non-blocking protocol,
data contention is resolved by additional resource contention (restarts) and
thrashing emerges naturally once the physical resources saturate.

Two-phase locking with deadlock detection is also provided so that the
blocking-CC class discussed in Section 1 (and by the Tay/Iyer rules of thumb)
can be exercised by the same transaction model.
"""

from repro.cc.base import (
    AbortReason,
    ConcurrencyControl,
    TransactionAborted,
)
from repro.cc.timestamp_cert import TimestampCertification
from repro.cc.two_phase_locking import LockMode, TwoPhaseLocking

__all__ = [
    "AbortReason",
    "ConcurrencyControl",
    "TransactionAborted",
    "TimestampCertification",
    "TwoPhaseLocking",
    "LockMode",
]
