"""Tests for the typed adversary specs and their lowering to RunSpecs."""

import json
import pickle

import pytest

from repro.experiments.config import ExperimentScale
from repro.fuzz.adversaries import (
    ADAPTIVE_CONTROLLERS,
    ArrivalBurstAdversary,
    ClassMixFlipAdversary,
    DisplacementSpikeAdversary,
    HotKeyAdversary,
    SizeSpikeAdversary,
    adversary_from_jsonable,
    adversary_kinds,
)
from repro.runner.specs import (
    KIND_STATIONARY,
    KIND_TRACKING,
    run_spec_from_jsonable,
    run_spec_to_jsonable,
)

EXAMPLES = [
    SizeSpikeAdversary(),
    HotKeyAdversary(controller="parabola"),
    ArrivalBurstAdversary(seed=3),
    ClassMixFlipAdversary(query_weight=0.4),
    DisplacementSpikeAdversary(criterion="queries_first"),
]


class TestRegistry:
    def test_all_five_kinds_are_registered(self):
        assert adversary_kinds() == (
            "arrival_burst",
            "class_mix_flip",
            "displacement_spike",
            "hot_key",
            "size_spike",
        )

    def test_kind_tags_match_the_registry(self):
        for spec in EXAMPLES:
            assert spec.kind in adversary_kinds()


class TestRoundTrip:
    @pytest.mark.parametrize("spec", EXAMPLES, ids=lambda s: s.kind)
    def test_json_round_trip_is_identity(self, spec):
        data = json.loads(json.dumps(spec.to_jsonable()))
        assert adversary_from_jsonable(data) == spec

    @pytest.mark.parametrize("spec", EXAMPLES, ids=lambda s: s.kind)
    def test_pickle_round_trip_is_identity(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary kind"):
            adversary_from_jsonable({"kind": "meteor_strike"})

    def test_unexpected_fields_are_rejected(self):
        data = SizeSpikeAdversary().to_jsonable()
        data["frobnicate"] = 1
        with pytest.raises(ValueError, match="unexpected"):
            adversary_from_jsonable(data)


class TestFingerprint:
    def test_equal_specs_share_a_fingerprint(self):
        assert HotKeyAdversary(seed=2).fingerprint() == HotKeyAdversary(seed=2).fingerprint()

    def test_different_content_changes_the_fingerprint(self):
        assert HotKeyAdversary(seed=2).fingerprint() != HotKeyAdversary(seed=3).fingerprint()

    def test_cell_id_embeds_kind_and_fingerprint(self):
        spec = SizeSpikeAdversary()
        assert spec.cell_id() == f"fuzz/size_spike/{spec.fingerprint()}"


class TestValidation:
    def test_unknown_controller_is_rejected(self):
        with pytest.raises(ValueError, match="controller"):
            SizeSpikeAdversary(controller="static")

    def test_negative_seed_is_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            HotKeyAdversary(seed=-1)

    def test_jump_fraction_bounds(self):
        with pytest.raises(ValueError, match="jump_fraction"):
            SizeSpikeAdversary(jump_fraction=1.0)

    def test_hot_set_size_must_be_positive(self):
        with pytest.raises(ValueError, match="hot_set_size"):
            HotKeyAdversary(hot_set_size=0)

    def test_write_fraction_bounds(self):
        with pytest.raises(ValueError, match="write_fraction"):
            HotKeyAdversary(write_fraction=1.5)

    def test_negative_think_time_is_rejected(self):
        with pytest.raises(ValueError, match="think_time"):
            ArrivalBurstAdversary(think_time=-0.1)

    def test_query_weight_bounds(self):
        with pytest.raises(ValueError, match="query_weight"):
            ClassMixFlipAdversary(query_weight=0.0)

    def test_unknown_victim_criterion_is_rejected(self):
        with pytest.raises(ValueError):
            DisplacementSpikeAdversary(criterion="tallest")


class TestLowering:
    @pytest.mark.parametrize("spec", EXAMPLES, ids=lambda s: s.kind)
    def test_lowered_cell_survives_the_runner_json_round_trip(self, spec):
        cell = spec.lower(ExperimentScale.smoke())
        data = json.loads(json.dumps(run_spec_to_jsonable(cell)))
        assert run_spec_from_jsonable(data) == cell

    def test_size_spike_lowers_to_a_tracking_jump(self):
        scale = ExperimentScale.smoke()
        cell = SizeSpikeAdversary(jump_fraction=0.25).lower(scale)
        assert cell.kind == KIND_TRACKING
        parameter, schedule = cell.scenario
        assert parameter == "accesses"
        assert schedule.jump_time == pytest.approx(0.25 * scale.tracking_horizon)
        assert schedule.before == 8 and schedule.after == 32

    def test_hot_key_lowers_to_the_shrunken_database(self):
        cell = HotKeyAdversary(hot_set_size=50, accesses=80).lower(ExperimentScale.smoke())
        assert cell.kind == KIND_STATIONARY
        assert cell.params.workload.db_size == 50
        # accesses clamp to the hot set: a transaction cannot touch more
        # distinct granules than exist
        assert cell.params.workload.accesses_per_txn == 50

    def test_arrival_burst_sets_the_think_time(self):
        cell = ArrivalBurstAdversary(think_time=0.02, n_terminals=500).lower(
            ExperimentScale.smoke())
        assert cell.params.think_time == pytest.approx(0.02)
        assert cell.params.n_terminals == 500

    def test_class_mix_flip_carries_both_classes(self):
        cell = ClassMixFlipAdversary(query_weight=0.3).lower(ExperimentScale.smoke())
        names = [spec.name for spec in cell.workload_classes]
        assert names == ["oltp", "long-query"]
        weights = [spec.weight for spec in cell.workload_classes]
        assert sum(weights) == pytest.approx(1.0)

    def test_displacement_spike_enables_displacement(self):
        cell = DisplacementSpikeAdversary(criterion="oldest").lower(ExperimentScale.smoke())
        assert cell.displacement is not None
        assert cell.displacement.criterion.value == "oldest"
        assert cell.displacement.hysteresis == 0.0

    @pytest.mark.parametrize("controller", ADAPTIVE_CONTROLLERS)
    def test_every_adversary_attacks_an_adaptive_controller(self, controller):
        cell = HotKeyAdversary(controller=controller).lower(ExperimentScale.smoke())
        assert cell.controller.kind == controller
