"""Tests for the transaction record."""

import pytest

from repro.tp.transaction import Transaction, TransactionClass


def make_updater():
    return Transaction(
        txn_id=1,
        terminal_id=3,
        txn_class=TransactionClass.UPDATER,
        items=(1, 2, 3, 4),
        write_flags=(False, True, False, True),
        submitted_at=10.0,
    )


class TestConstruction:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Transaction(1, 0, TransactionClass.UPDATER, items=(1, 2), write_flags=(True,))

    def test_query_cannot_write(self):
        with pytest.raises(ValueError):
            Transaction(1, 0, TransactionClass.QUERY, items=(1,), write_flags=(True,))

    def test_size_and_write_count(self):
        txn = make_updater()
        assert txn.size == 4
        assert txn.write_count == 2
        assert not txn.is_read_only

    def test_query_is_read_only(self):
        txn = Transaction(2, 0, TransactionClass.QUERY, items=(5, 6), write_flags=(False, False))
        assert txn.is_read_only

    def test_accesses_pairs(self):
        txn = make_updater()
        assert txn.accesses == ((1, False), (2, True), (3, False), (4, True))


class TestLifecycleBookkeeping:
    def test_response_time_requires_commit(self):
        txn = make_updater()
        assert txn.response_time() is None
        txn.committed_at = 25.0
        assert txn.response_time() == pytest.approx(15.0)

    def test_waiting_time_requires_admission(self):
        txn = make_updater()
        assert txn.waiting_time() is None
        txn.admitted_at = 12.0
        assert txn.waiting_time() == pytest.approx(2.0)

    def test_start_execution_resets_per_run_state(self):
        txn = make_updater()
        txn.read_set.add(1)
        txn.write_set.add(2)
        txn.cc_state["start_ts"] = 1.0
        txn.last_conflicts = 3
        txn.start_execution(20.0)
        assert txn.execution_started_at == 20.0
        assert txn.read_set == set()
        assert txn.write_set == set()
        assert txn.cc_state == {}
        assert txn.last_conflicts == 0

    def test_record_restart_counts(self):
        txn = make_updater()
        txn.record_restart()
        txn.record_restart()
        assert txn.restarts == 2

    def test_restarts_survive_start_execution(self):
        txn = make_updater()
        txn.record_restart()
        txn.start_execution(5.0)
        assert txn.restarts == 1
