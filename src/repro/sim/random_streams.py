"""Named random-number streams.

Simulation studies need *independent* streams for the different stochastic
components (think times, service demands, data-item selection, transaction
class selection, ...).  Using one global generator couples them: changing
how many samples one component draws perturbs every other component, which
destroys the common-random-numbers structure needed for fair comparisons
between, say, the IS and the PA controller on "the same" workload.

:class:`RandomStreams` derives one :class:`numpy.random.Generator` per named
stream from a root seed using ``numpy``'s ``SeedSequence.spawn`` machinery,
so streams are reproducible, independent, and stable under the addition of
new streams (each stream is keyed by its name, not by creation order).

For replicated experiments, :meth:`RandomStreams.spawn` derives a child
:class:`RandomStreams` per replicate index: every named stream of the child
is independent of the parent's (and of every other replicate's) stream of
the same name, while remaining a deterministic function of
``(root seed, replicate index, stream name)`` only — adding streams or
replicates never perturbs the others.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Tuple

import numpy as np

#: spawn-key tag separating replicate branches from the name-key namespace
#: (a name key is always 4 words, a branch prefix is tag/index pairs)
_REPLICATE_TAG = 0x7265706C  # "repl"


def _name_key(name: str) -> Tuple[int, int, int, int]:
    """Hash a stream name into four 32-bit spawn-key words.

    ``SeedSequence`` spawn keys are sequences of 32-bit integers; a 128-bit
    digest keeps the probability of two stream names colliding negligible
    (the previous ``crc32`` keying could collide after ~2**16 names).
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
    return tuple(int.from_bytes(digest[i:i + 4], "little") for i in (0, 4, 8, 12))


class RandomStreams:
    """Factory and registry of named, independently seeded RNG streams."""

    def __init__(self, seed: int = 0, _branch: Tuple[int, ...] = ()):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self.seed = int(seed)
        self._branch = tuple(int(word) for word in _branch)
        self._generators: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed is a deterministic function of the root seed, the
        replicate branch (see :meth:`spawn`) and the stream name only, so
        the same name always yields the same stream regardless of how many
        other streams exist or in what order they were requested.
        """
        generator = self._generators.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(
                entropy=self.seed, spawn_key=self._branch + _name_key(name)
            )
            generator = np.random.default_rng(sequence)
            self._generators[name] = generator
        return generator

    def spawn(self, replicate: int) -> "RandomStreams":
        """Derive the stream family of one replicate of this experiment.

        Each replicate's streams are independent of every other replicate's
        and of this instance's own streams, but fully determined by the root
        seed and the replicate index — the common-random-numbers structure
        (same seed, same replicate, same stream name => same variates) is
        preserved across processes and stream-creation order.
        """
        if not isinstance(replicate, (int, np.integer)):
            raise TypeError(
                f"replicate must be an integer, got {type(replicate).__name__}"
            )
        if replicate < 0:
            raise ValueError(f"replicate must be non-negative, got {replicate}")
        return RandomStreams(
            self.seed, _branch=self._branch + (_REPLICATE_TAG, int(replicate))
        )

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def names(self) -> Iterable[str]:
        """Names of all streams created so far."""
        return tuple(self._generators)

    # ------------------------------------------------------------------
    # convenience sampling helpers (used heavily by the workload model)
    # ------------------------------------------------------------------
    def exponential(self, name: str, mean: float) -> float:
        """One exponential variate with the given mean from stream ``name``."""
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if mean == 0:
            return 0.0
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform variate on [low, high) from stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def bernoulli(self, name: str, probability: float) -> bool:
        """One Bernoulli trial with the given success probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if probability == 0.0:
            return False
        if probability == 1.0:
            return True
        return bool(self.stream(name).random() < probability)

    def choice_without_replacement(self, name: str, population: int, count: int) -> np.ndarray:
        """Sample ``count`` distinct integers from ``range(population)``."""
        if count > population:
            raise ValueError(
                f"cannot draw {count} distinct items from a population of {population}"
            )
        return self.stream(name).choice(population, size=count, replace=False)
