"""Serial and process-parallel execution of experiment cells.

Both executors share one tiny interface: :meth:`map` applies a picklable
function to an iterable of picklable items and *streams* the results back
in the items' order (so a sweep's results arrive in deterministic cell
order regardless of which worker finishes first), and :meth:`execute`
collects them into a list.

``make_executor`` selects the implementation from a ``workers`` count the
way the experiment entry points expose it:

* ``workers=0`` or ``1`` — run in-process (no pickling requirements, exact
  same code path the tests exercise);
* ``workers=N>1`` — fan out over ``N`` ``multiprocessing`` workers;
* ``workers=None`` — one worker per available CPU;
* ``address="host:port"`` — serve the cells to networked workers through
  the :class:`~repro.dist.coordinator.DistributedExecutor`.

Because each cell seeds its own random streams from its spec (seed,
replicate), results are bitwise identical between the serial, the parallel
and the distributed executor.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Iterable, Iterator, List, Optional, TypeVar

from repro.obs import telemetry
from repro.runner.errors import CellErrorContext

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def _timed_execute(executor, kind: str,
                   function: Callable[[ItemT], ResultT],
                   items: Iterable[ItemT]) -> List[ResultT]:
    """Collect ``executor.map`` results, in a ``sweep`` span when telemetered.

    Only :meth:`execute` is instrumented — a lazy :meth:`map` generator has
    no well-defined end to time.  Without an active sink no clock is read.
    """
    if telemetry.active_sink() is None:
        return list(executor.map(function, items))
    started = time.monotonic()
    results = list(executor.map(function, items))
    telemetry.emit(
        "sweep",
        executor=kind,
        workers=executor.workers,
        cells=len(results),
        duration=time.monotonic() - started,
    )
    return results


class SerialExecutor:
    """Run every cell in the current process, in order."""

    workers = 0

    def map(self, function: Callable[[ItemT], ResultT],
            items: Iterable[ItemT]) -> Iterator[ResultT]:
        """Lazily apply ``function`` to ``items`` in order."""
        return (function(item) for item in items)

    def execute(self, function: Callable[[ItemT], ResultT],
                items: Iterable[ItemT]) -> List[ResultT]:
        """Apply ``function`` to every item and return the ordered results."""
        return _timed_execute(self, "serial", function, items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan cells out over a pool of worker processes.

    Results are streamed back in submission order (``imap``), so consumers
    see the same deterministic ordering the serial executor produces while
    later cells are still running.  ``function`` and every item must be
    picklable; each cell is dispatched individually (``chunksize=1``)
    because cells are long-running simulations whose durations vary widely.

    Failures inside a worker process are re-raised as
    :class:`~repro.runner.errors.CellExecutionError` naming the failing
    cell's identity (see :mod:`repro.runner.errors`), instead of a bare
    pool traceback.
    """

    def __init__(self, workers: Optional[int] = None, mp_context: Optional[str] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 2:
            raise ValueError(
                f"ParallelExecutor needs >= 2 workers, got {workers}; "
                "use SerialExecutor (workers=0 or 1) instead"
            )
        self.workers = int(workers)
        self._mp_context = mp_context

    def map(self, function: Callable[[ItemT], ResultT],
            items: Iterable[ItemT]) -> Iterator[ResultT]:
        """Apply ``function`` to ``items`` in parallel, yielding in order."""
        materialised = list(items)

        def stream() -> Iterator[ResultT]:
            if not materialised:
                return
            context = multiprocessing.get_context(self._mp_context)
            with context.Pool(processes=min(self.workers, len(materialised))) as pool:
                yield from pool.imap(CellErrorContext(function), materialised,
                                     chunksize=1)

        return stream()

    def execute(self, function: Callable[[ItemT], ResultT],
                items: Iterable[ItemT]) -> List[ResultT]:
        """Apply ``function`` to every item and return the ordered results."""
        return _timed_execute(self, "parallel", function, items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(workers={self.workers})"


def make_executor(workers: Optional[int] = 0, mp_context: Optional[str] = None,
                  address: Optional[str] = None, **distributed_options):
    """Select an executor from a ``workers`` count (see module docstring).

    With ``address="host:port"`` a
    :class:`~repro.dist.coordinator.DistributedExecutor` is returned
    instead: it binds the address and serves cells to every
    ``repro-dist-worker`` that connects (``workers`` is ignored — the
    cluster size is however many workers join).  Extra keyword options
    (``heartbeat_timeout``, ``worker_timeout``) are forwarded to it.
    """
    if address is not None:
        # imported lazily: repro.dist depends on repro.runner, not vice versa
        from repro.dist.coordinator import DistributedExecutor

        return DistributedExecutor(address, **distributed_options)
    if distributed_options:
        raise TypeError(
            "distributed options "
            f"{sorted(distributed_options)} require address='host:port'"
        )
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers=workers, mp_context=mp_context)
