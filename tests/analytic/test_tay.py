"""Tests for the Tay mean-value blocking model and its throughput adapter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.tay import TayModel, TayThroughputModel


class TestValidation:
    def test_db_size_positive(self):
        with pytest.raises(ValueError):
            TayModel(db_size=0, locks_per_txn=5)

    def test_locks_positive(self):
        with pytest.raises(ValueError):
            TayModel(db_size=100, locks_per_txn=0)

    def test_waiting_share_range(self):
        with pytest.raises(ValueError):
            TayModel(db_size=100, locks_per_txn=5, waiting_share=0.0)
        with pytest.raises(ValueError):
            TayModel(db_size=100, locks_per_txn=5, waiting_share=1.5)


class TestBlockingBehaviour:
    def test_no_blocking_with_single_transaction(self):
        model = TayModel(db_size=1000, locks_per_txn=10)
        assert model.conflict_probability(1) == 0.0
        assert model.blocked_transactions(1) == 0.0

    def test_blocking_grows_superlinearly(self):
        model = TayModel(db_size=1000, locks_per_txn=10)
        b_10 = model.blocked_transactions(10)
        b_20 = model.blocked_transactions(20)
        # quadratic growth: doubling n more than doubles b(n)
        assert b_20 > 2.5 * b_10

    def test_blocked_never_exceeds_population(self):
        model = TayModel(db_size=50, locks_per_txn=20)
        for n in (1, 5, 10, 50, 200):
            assert model.blocked_transactions(n) <= n

    def test_active_transactions_positive(self):
        model = TayModel(db_size=1000, locks_per_txn=10)
        for n in (1, 10, 100, 500):
            assert model.active_transactions(n) >= 0.0

    def test_conflict_probability_capped_at_one(self):
        model = TayModel(db_size=10, locks_per_txn=10)
        assert model.conflict_probability(1000) == 1.0

    def test_derivative_exceeds_one_beyond_critical_mpl(self):
        model = TayModel(db_size=1000, locks_per_txn=8)
        critical = model.critical_mpl()
        assert model.blocking_derivative(critical * 0.5) < 1.0
        assert model.blocking_derivative(critical * 1.2) > 1.0

    def test_rule_of_thumb_formula(self):
        model = TayModel(db_size=9000, locks_per_txn=10)
        assert model.rule_of_thumb_mpl() == pytest.approx(1.5 * 9000 / 100)
        assert model.rule_of_thumb_mpl(margin=1.0) == pytest.approx(90.0)

    def test_smaller_transactions_allow_higher_mpl(self):
        small = TayModel(db_size=1000, locks_per_txn=4)
        large = TayModel(db_size=1000, locks_per_txn=16)
        assert small.critical_mpl() > large.critical_mpl()
        assert small.rule_of_thumb_mpl() > large.rule_of_thumb_mpl()

    def test_throughput_curve_shape(self):
        model = TayModel(db_size=500, locks_per_txn=10)
        levels = list(range(1, 200, 5))
        curve = model.throughput_curve(levels)
        peak_index = curve.index(max(curve))
        # the curve rises and eventually falls: the peak is interior
        assert 0 < peak_index < len(curve) - 1

    @given(db_size=st.integers(min_value=100, max_value=100000),
           k=st.integers(min_value=1, max_value=30),
           n=st.floats(min_value=1.0, max_value=1000.0))
    @settings(max_examples=80, deadline=None)
    def test_invariants_property(self, db_size, k, n):
        model = TayModel(db_size=db_size, locks_per_txn=k)
        blocked = model.blocked_transactions(n)
        assert 0.0 <= blocked <= max(0.0, n - 1.0) + 1e-9
        assert 0.0 <= model.conflict_probability(n) <= 1.0
        assert model.active_transactions(n) == pytest.approx(n - blocked)


class TestTayThroughputModel:
    """The absolute-throughput adapter used as the locking-family reference."""

    def params(self, **changes):
        from repro.experiments.config import default_system_params

        base = default_system_params()
        return base.with_changes(**changes) if changes else base

    def test_throughput_never_exceeds_cpu_capacity(self):
        params = self.params()
        model = TayThroughputModel(params)
        cpu_demand = (params.cpu_init
                      + params.workload.accesses_per_txn * params.cpu_per_access
                      + params.cpu_commit)
        capacity = params.n_cpus / cpu_demand
        for mpl in (1, 10, 50, 200, 800):
            assert 0.0 <= model.throughput(mpl) <= capacity + 1e-9

    def test_curve_rises_then_falls_around_the_critical_mpl(self):
        model = TayThroughputModel(self.params())
        critical = model.tay.critical_mpl()
        low = model.throughput(0.2 * critical)
        peak = model.throughput(model.optimal_mpl())
        far = model.throughput(4.0 * critical)
        assert peak >= low
        assert far < peak

    def test_optimal_mpl_is_the_smallest_maximiser(self):
        model = TayThroughputModel(self.params())
        optimum = model.optimal_mpl()
        assert 1.0 <= optimum <= 1.5 * model.tay.critical_mpl() + 1e-9
        peak = model.throughput(optimum)
        # nothing strictly below the optimum does as well
        for fraction in (0.25, 0.5, 0.75):
            assert model.throughput(fraction * optimum) <= peak + 1e-9

    def test_waiting_share_calibration_shifts_the_optimum(self):
        params = self.params()
        patient = TayThroughputModel(params, waiting_share=0.2)
        impatient = TayThroughputModel(params, waiting_share=1.0)
        # more of the residence spent waiting -> blocking bites earlier
        assert impatient.tay.critical_mpl() < patient.tay.critical_mpl()

    def test_zero_mpl_is_zero_throughput(self):
        model = TayThroughputModel(self.params())
        assert model.throughput(0) == 0.0


class TestReferenceSelection:
    """analytic.references: the scheme-aware model choice."""

    def test_locking_kinds_map_to_tay(self):
        from repro.analytic.references import reference_model_for
        from repro.cc import CCSpec
        from repro.experiments.config import default_system_params

        params = default_system_params()
        for kind in ("two_phase_locking", "wound_wait", "wait_die"):
            name, model = reference_model_for(params, CCSpec.make(kind))
            assert name == "TayModel"
            assert isinstance(model, TayThroughputModel)

    def test_optimistic_kinds_and_default_map_to_occ(self):
        from repro.analytic.occ import OccModel
        from repro.analytic.references import reference_model_for
        from repro.cc import CCSpec
        from repro.experiments.config import default_system_params

        params = default_system_params()
        for cc in (None, CCSpec.make("timestamp_cert"),
                   CCSpec.make("occ_forward")):
            name, model = reference_model_for(params, cc)
            assert name == "OccModel"
            assert isinstance(model, OccModel)

    def test_both_models_share_the_reference_interface(self):
        from repro.analytic.references import reference_model_for
        from repro.cc import CCSpec
        from repro.experiments.config import default_system_params

        params = default_system_params()
        for cc in (None, CCSpec.make("wound_wait")):
            _name, model = reference_model_for(params, cc)
            optimum = model.optimal_mpl()
            assert optimum > 1.0
            assert model.throughput(optimum) > 0.0
