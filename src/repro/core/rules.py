"""Theoretically derived "rules of thumb" (Section 1, option 3).

The paper contrasts its feedback approach with two published static criteria
for avoiding thrashing in *blocking* (locking) systems:

* **Tay's rule** (Tay, Goodman & Suri 1985): keep ``k^2 * n / D < 1.5``,
  where ``k`` is the number of items accessed per transaction, ``n`` the
  concurrency level and ``D`` the database size.  Solved for ``n`` this
  gives a threshold ``n* = 1.5 * D / k^2``.
* **Iyer's rule** (Iyer 1988): the mean number of conflicts per transaction
  should not exceed 0.75.

Tay's rule is an *open-loop* bound: it needs to know the current ``k`` and
``D`` and trusts the model behind the 1.5 constant.  Iyer's rule is
implemented as a simple feedback comparator: raise the threshold while the
measured conflict rate is below the target, lower it when the target is
exceeded.  Both serve as baselines that the adaptive IS/PA controllers are
compared against in the ablation benchmarks.
"""

from __future__ import annotations

import math

from repro.core.controller import LoadController
from repro.core.types import IntervalMeasurement


class TayRule(LoadController):
    """Static threshold ``n* = margin * D / k^2`` from Tay et al. (1985)."""

    name = "tay-rule"

    def __init__(self, db_size: int, accesses_per_txn: int, margin: float = 1.5,
                 lower_bound: float = 1.0, upper_bound: float = math.inf,
                 track_measured_k: bool = True):
        """Create the rule-based controller.

        With ``track_measured_k=True`` the rule re-evaluates itself using the
        mean transaction size observed in each interval (the best a DBA could
        do by monitoring); with ``False`` it stays at the value computed from
        the configured ``accesses_per_txn``, modelling a bound tuned once at
        installation time.
        """
        if db_size < 1:
            raise ValueError(f"db_size must be >= 1, got {db_size}")
        if accesses_per_txn < 1:
            raise ValueError(f"accesses_per_txn must be >= 1, got {accesses_per_txn}")
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        self.db_size = int(db_size)
        self.configured_k = int(accesses_per_txn)
        self.margin = float(margin)
        self.track_measured_k = bool(track_measured_k)
        initial = self.threshold_for(self.configured_k)
        super().__init__(initial_limit=initial, lower_bound=lower_bound, upper_bound=upper_bound)

    def threshold_for(self, accesses_per_txn: float) -> float:
        """The rule's threshold for a given transaction size ``k``."""
        k = max(1.0, float(accesses_per_txn))
        return self.margin * self.db_size / (k * k)

    def _propose(self, measurement: IntervalMeasurement) -> float:
        if self.track_measured_k and measurement.mean_accesses_per_txn:
            return self.threshold_for(measurement.mean_accesses_per_txn)
        return self.threshold_for(self.configured_k)


class IyerRule(LoadController):
    """Keep the measured conflicts per transaction at or below a target."""

    name = "iyer-rule"

    def __init__(self, target_conflicts: float = 0.75, step: float = 2.0,
                 initial_limit: float = 10.0, lower_bound: float = 1.0,
                 upper_bound: float = math.inf, deadband: float = 0.1):
        """Create the rule-based feedback comparator.

        ``deadband`` (as a fraction of the target) avoids oscillation when
        the measured conflict rate hovers around the target.
        """
        if target_conflicts <= 0:
            raise ValueError(f"target_conflicts must be positive, got {target_conflicts}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if deadband < 0:
            raise ValueError(f"deadband must be non-negative, got {deadband}")
        super().__init__(initial_limit=initial_limit, lower_bound=lower_bound,
                         upper_bound=upper_bound)
        self.target_conflicts = float(target_conflicts)
        self.step = float(step)
        self.deadband = float(deadband)

    def _propose(self, measurement: IntervalMeasurement) -> float:
        conflicts = measurement.conflicts_per_commit
        high = self.target_conflicts * (1.0 + self.deadband)
        low = self.target_conflicts * (1.0 - self.deadband)
        if conflicts > high:
            # proportional back-off: the further above the target, the harder
            # the threshold is pulled down
            excess = min(4.0, conflicts / self.target_conflicts)
            return self.current_limit - self.step * excess
        if conflicts < low:
            return self.current_limit + self.step
        return self.current_limit
