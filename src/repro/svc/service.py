"""The persistent sweep service: a FIFO job queue over one cached executor.

A :class:`SweepService` owns a cache-backed
:class:`~repro.dist.coordinator.DistributedExecutor` (workers connect to
``worker_address`` exactly as they would to a bare coordinator) and keeps
it alive between sweeps.  Clients submit :class:`~repro.runner.specs.RunSpec`
batches — directly or as a named registry scenario — over a tiny TCP
control plane (one request per connection, answered ``svc-ok`` /
``svc-error``; see :mod:`repro.dist.protocol` for the message shapes).

Busy/queue semantics: the wrapped executor runs **one sweep at a time**
(its own standing contract), so the service runs jobs strictly FIFO in
submission order on a single runner thread.  A submission never blocks on
a busy executor — it returns a job id immediately and the job waits in the
queue; ``status`` reports the queue position.  This mirrors the paper's
load-control stance: bounded concurrency with explicit queueing beats
thrashing the executor with interleaved sweeps.

Per-job cache accounting is exact: jobs run one at a time, so the delta of
the cache's hit/miss counters across a job is that job's hit/miss count —
the quantity ``tests/svc/test_cache_soundness.py`` pins (a warm
re-submission of any golden scenario is 100% hits and zero simulations).

Results documents are deliberately deterministic (no job ids, no
timestamps): :meth:`SweepService.results` of a warm job is byte-identical
to the cold run's, which is the headline guarantee of the cache.
"""

from __future__ import annotations

import collections
import logging
import socket
import threading
import time
from typing import Dict, List, Optional

from repro.canonical import sanitize
from repro.dist import protocol
from repro.dist.coordinator import DistributedExecutor
from repro.dist.protocol import (
    MSG_SVC_CACHE,
    MSG_SVC_CELLS,
    MSG_SVC_ERROR,
    MSG_SVC_OK,
    MSG_SVC_RESULTS,
    MSG_SVC_SHUTDOWN,
    MSG_SVC_STATUS,
    MSG_SVC_SUBMIT,
    ConnectionClosed,
    ProtocolError,
)
from repro.obs import telemetry
from repro.runner.cells import execute_run_spec
from repro.runner.specs import RunSpec
from repro.svc.cache import ResultCache

logger = logging.getLogger("repro.svc.service")

#: results-document format tag (bump on structural changes)
RESULTS_FORMAT = 1

#: job lifecycle states, in order
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


class JobRecord:
    """Service-side bookkeeping for one submitted sweep job."""

    __slots__ = ("job_id", "name", "cells", "state", "error", "results",
                 "cache_hits", "cache_misses")

    def __init__(self, job_id: str, name: str, cells: List[RunSpec]):
        self.job_id = job_id
        self.name = name
        self.cells = cells
        self.state = JOB_QUEUED
        self.error: Optional[str] = None
        #: ordered CellResult list once the job is done
        self.results = None
        #: exact per-job cache accounting (delta across the run)
        self.cache_hits = 0
        self.cache_misses = 0

    def status(self, position: Optional[int] = None) -> dict:
        """JSON-able status snapshot (queue position only while queued)."""
        doc = {
            "job_id": self.job_id,
            "name": self.name,
            "state": self.state,
            "n_cells": len(self.cells),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        if self.state == JOB_QUEUED and position is not None:
            doc["position"] = position
        if self.error is not None:
            doc["error"] = self.error
        return doc


def results_document(name: str, results) -> dict:
    """The deterministic results document of a finished job.

    A pure function of the cell results (no job id, no timestamps, no
    cache counters), so a warm re-submission — served entirely from the
    cache — produces a byte-identical canonical serialisation to the cold
    run that filled it.  Trajectory payloads stay out of the document
    (they are rich Python objects); metrics carry the full pinned values.
    """
    cells = []
    for result in results:
        cell = {
            "cell_id": result.cell_id,
            "kind": result.kind,
            "replicate": result.replicate,
            "label": result.label,
            "metrics": dict(result.metrics),
        }
        if result.model_reference:
            cell["model_reference"] = result.model_reference
        cells.append(cell)
    return sanitize({
        "format": RESULTS_FORMAT,
        "name": name,
        "n_cells": len(cells),
        "cells": cells,
    })


def scenario_cells(scenario: str, scale: str = "smoke",
                   replicates: int = 1) -> List[RunSpec]:
    """Lower a named registry scenario into its replicate-expanded cells.

    Exactly the expansion :func:`~repro.runner.api.run_sweep` performs, so
    a service job for a scenario simulates (and caches) the same cells a
    direct run would.
    """
    from repro.experiments.config import ExperimentScale
    from repro.runner.registry import build_sweep

    presets = {"smoke": ExperimentScale.smoke,
               "benchmark": ExperimentScale.benchmark,
               "paper": ExperimentScale.paper}
    if scale not in presets:
        raise ValueError(f"scale must be one of {sorted(presets)}, got {scale!r}")
    spec = build_sweep(scenario, scale=presets[scale]())
    return list(spec.with_replicates(replicates).cells)


class SweepService:
    """A persistent, cache-backed sweep executor with a FIFO job queue.

    ``worker_bind`` is where ``repro-dist-worker`` processes connect;
    ``control_bind`` is where :class:`~repro.svc.client.ServiceClient`
    (and the ``repro-svc`` CLI) talk to the service.  Both accept port 0
    for an ephemeral port — read the bound addresses back from
    :attr:`worker_address` / :attr:`control_address`.  ``cache`` may be a
    ready :class:`~repro.svc.cache.ResultCache`, a directory path, or
    None to run uncached (every cell always simulates).
    """

    def __init__(self, *, worker_bind: str = "127.0.0.1:0",
                 control_bind: str = "127.0.0.1:0",
                 cache=None,
                 heartbeat_timeout: float = 30.0,
                 worker_timeout: float = 600.0):
        if cache is None or isinstance(cache, ResultCache):
            self._cache = cache
        else:
            self._cache = ResultCache(cache)
        self._executor = DistributedExecutor(
            worker_bind,
            heartbeat_timeout=heartbeat_timeout,
            worker_timeout=worker_timeout,
            cell_cache=self._cache,
        )
        #: guards _jobs, _queue, _next_id, _closed; runner waits on it
        self._state = threading.Condition()
        self._jobs: Dict[str, JobRecord] = {}
        self._queue: collections.deque = collections.deque()
        self._next_id = 0
        self._closed = False
        host, port = protocol.parse_address(control_bind)
        self._control_listener = socket.create_server((host, port))
        self._runner_thread = threading.Thread(
            target=self._run_loop, name="svc-runner", daemon=True)
        self._runner_thread.start()
        self._control_thread = threading.Thread(
            target=self._control_accept_loop, name="svc-control", daemon=True)
        self._control_thread.start()

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------
    @property
    def worker_address(self) -> str:
        """``host:port`` that ``repro-dist-worker`` processes connect to."""
        return self._executor.bound_address

    @property
    def control_address(self) -> str:
        """``host:port`` of the TCP control plane."""
        host, port = self._control_listener.getsockname()[:2]
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        return protocol.format_address(host, port)

    @property
    def executor(self) -> DistributedExecutor:
        """The wrapped executor (e.g. to ``wait_for_workers``)."""
        return self._executor

    @property
    def cache(self) -> Optional[ResultCache]:
        """The service's result cache (None when running uncached)."""
        return self._cache

    # ------------------------------------------------------------------
    # the job API (also reachable over TCP and HTTP)
    # ------------------------------------------------------------------
    def submit(self, name: str, cells: List[RunSpec]) -> str:
        """Enqueue a sweep job; returns its job id immediately.

        Jobs run strictly FIFO; a busy executor queues the job rather
        than rejecting it.  Emits the ``job_submit`` telemetry span.
        """
        if not all(isinstance(cell, RunSpec) for cell in cells):
            raise TypeError("every submitted cell must be a RunSpec")
        with self._state:
            if self._closed:
                raise RuntimeError("the service is shut down")
            self._next_id += 1
            job = JobRecord(f"job-{self._next_id}", name, list(cells))
            self._jobs[job.job_id] = job
            self._queue.append(job.job_id)
            self._state.notify_all()
        telemetry.emit("job_submit", job_id=job.job_id, name=name,
                       n_cells=len(cells))
        logger.info("queued %s (%s, %d cells)", job.job_id, name, len(cells))
        return job.job_id

    def submit_scenario(self, scenario: str, scale: str = "smoke",
                        replicates: int = 1) -> str:
        """Enqueue a named registry scenario (lowered to cells here)."""
        cells = scenario_cells(scenario, scale=scale, replicates=replicates)
        return self.submit(scenario, cells)

    def status(self, job_id: Optional[str] = None):
        """One job's status dict, or every job's (in submission order)."""
        with self._state:
            if job_id is None:
                position = {jid: i for i, jid in enumerate(self._queue)}
                return [job.status(position.get(jid))
                        for jid, job in sorted(
                            self._jobs.items(),
                            key=lambda kv: int(kv[0].split("-")[1]))]
            job = self._require_job(job_id)
            try:
                position = list(self._queue).index(job_id)
            except ValueError:
                position = None
            return job.status(position)

    def wait(self, job_id: str, timeout: float = 600.0) -> dict:
        """Block until a job finishes; returns its final status dict."""
        stop = time.monotonic() + timeout
        with self._state:
            job = self._require_job(job_id)
            while job.state in (JOB_QUEUED, JOB_RUNNING):
                remaining = stop - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{job_id} still {job.state} after {timeout:.0f}s")
                self._state.wait(timeout=min(remaining, 0.5))
            return job.status()

    def results(self, job_id: str) -> dict:
        """The deterministic results document of a finished job."""
        with self._state:
            job = self._require_job(job_id)
            if job.state != JOB_DONE:
                raise RuntimeError(f"{job_id} is {job.state}, not done")
            return results_document(job.name, job.results)

    def result_cells(self, job_id: str):
        """The raw ordered :class:`CellResult` list of a finished job."""
        with self._state:
            job = self._require_job(job_id)
            if job.state != JOB_DONE:
                raise RuntimeError(f"{job_id} is {job.state}, not done")
            return list(job.results)

    def cache_stats(self) -> dict:
        """The cache's counters (an explicit marker when uncached)."""
        if self._cache is None:
            return {"enabled": False}
        stats = self._cache.stats()
        stats["enabled"] = True
        return stats

    def _require_job(self, job_id: str) -> JobRecord:
        # caller holds self._state
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (e.g. after a shutdown request)."""
        with self._state:
            return self._closed

    def close(self) -> None:
        """Stop the control plane, the runner thread and the executor."""
        with self._state:
            if self._closed:
                return
            self._closed = True
            self._state.notify_all()
        try:
            self._control_listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass
        self._executor.close()
        self._runner_thread.join(timeout=10.0)

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        """The single runner thread: drain the FIFO queue, one job at a time."""
        while True:
            with self._state:
                while not self._queue and not self._closed:
                    self._state.wait()
                if self._closed:
                    return
                job = self._jobs[self._queue.popleft()]
                job.state = JOB_RUNNING
            before = self._cache.stats() if self._cache is not None else None
            try:
                results = self._executor.execute(execute_run_spec, job.cells)
            except Exception as exc:
                with self._state:
                    job.state = JOB_FAILED
                    job.error = str(exc)
                    self._state.notify_all()
                logger.warning("%s failed: %s", job.job_id, exc)
                continue
            after = self._cache.stats() if self._cache is not None else None
            with self._state:
                job.results = results
                if before is not None:
                    job.cache_hits = after["hits"] - before["hits"]
                    job.cache_misses = after["misses"] - before["misses"]
                job.state = JOB_DONE
                self._state.notify_all()
            logger.info("%s done: %d cells (%d cache hit(s))",
                        job.job_id, len(results), job.cache_hits)

    def _control_accept_loop(self) -> None:
        while True:
            try:
                sock, address = self._control_listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_control, args=(sock,),
                name=f"svc-ctl-{address[0]}:{address[1]}", daemon=True,
            ).start()

    def _serve_control(self, sock: socket.socket) -> None:
        """Answer exactly one control request, then close the connection."""
        shutdown = False
        try:
            sock.settimeout(30.0)
            message = protocol.recv_message(sock)
            try:
                reply, shutdown = self._handle_control(message)
            except (KeyError, ValueError, TypeError, RuntimeError) as exc:
                reply = (MSG_SVC_ERROR, str(exc))
            protocol.send_message(sock, reply)
        except (ConnectionClosed, ProtocolError, OSError):
            pass  # a vanished client is not the service's problem
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            if shutdown:
                self.close()

    def _handle_control(self, message):
        """Dispatch one control-plane request tuple; returns (reply, shutdown)."""
        if not (isinstance(message, tuple) and message):
            raise ProtocolError(f"malformed control request: {message!r}")
        kind = message[0]
        if kind == MSG_SVC_SUBMIT:
            _, name, cells = message
            return (MSG_SVC_OK, self.submit(name, cells)), False
        if kind == MSG_SVC_STATUS:
            job_id = message[1] if len(message) > 1 else None
            return (MSG_SVC_OK, self.status(job_id)), False
        if kind == MSG_SVC_RESULTS:
            return (MSG_SVC_OK, self.results(message[1])), False
        if kind == MSG_SVC_CELLS:
            return (MSG_SVC_OK, self.result_cells(message[1])), False
        if kind == MSG_SVC_CACHE:
            return (MSG_SVC_OK, self.cache_stats()), False
        if kind == MSG_SVC_SHUTDOWN:
            # reply first, then close (the finally block in _serve_control)
            return (MSG_SVC_OK, "shutting down"), True
        raise ProtocolError(f"unknown control request kind {kind!r}")
