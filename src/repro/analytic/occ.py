"""Fixed-point model of the optimistic (certification) system.

The simulation resolves data contention by aborting and re-running
transactions; this module provides a fast analytical approximation of the
same system so that

* tests can check that the simulator's load/throughput curve has the
  predicted shape (rise, saturate, fall),
* the dynamic-tracking experiments can compute a *reference* optimum
  ``n_opt(t)`` for the workload parameters in effect at any time without
  running a sweep of full simulations, and
* the stationary benchmark can report a model-vs-simulation comparison.

Model (standard closed-network mean-value reasoning, in the spirit of
Dan et al. 1988 and Thomasian & Ryu 1990, simplified):

For a multiprogramming level ``n``:

1. CPU time per execution is ``c = cpu_init + k*cpu_access + cpu_commit``;
   disk time per execution is ``d`` (uncontended, constant).
2. With ``m`` processors and ``n`` concurrent transactions, the CPU
   congestion is approximated with the classic machine-repairman style
   factor: effective CPU residence ``c_eff = c * max(1, n * u / m)`` is
   captured implicitly by bounding the execution completion rate by the CPU
   capacity ``m / c``.
3. Let ``X_e`` be the *execution* completion rate (runs per second,
   committed or not).  Residence time of one run is then roughly
   ``r = n / X_e`` (Little's law inside the processing system).
4. An execution fails certification with probability
   ``q = 1 - exp(-lambda_conflict * r)`` where
   ``lambda_conflict = X_c * p_pair`` is the rate at which *commits* of
   other transactions invalidate this one's read set, ``X_c = (1-q) X_e``
   the commit rate and ``p_pair ≈ k_r * k_w / D`` the probability that one
   committing updater's write set hits this transaction's read set.
5. Useful throughput is ``T(n) = (1 - q) * X_e``.

Equations 3-5 are mutually dependent; :meth:`OccModel.evaluate` solves them
by damped fixed-point iteration.  The resulting ``T(n)`` rises roughly
linearly, saturates near ``m / c`` and decreases once the wasted re-runs
dominate -- the Figure 1 shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.tp.params import SystemParams, WorkloadParams


@dataclass(frozen=True)
class OccOperatingPoint:
    """Solution of the fixed point at one multiprogramming level."""

    #: multiprogramming level the point was evaluated at
    mpl: float
    #: useful (committed) transactions per second
    throughput: float
    #: execution rate including re-runs
    execution_rate: float
    #: probability that one execution fails certification
    abort_probability: float
    #: mean residence time of one execution
    residence_time: float
    #: fraction of CPU capacity spent on work that is later discarded
    wasted_cpu_fraction: float


class OccModel:
    """Analytic load/throughput model of the certification-based system."""

    def __init__(self, params: SystemParams, workload: Optional[WorkloadParams] = None):
        self.params = params
        self.workload = workload or params.workload

    # ------------------------------------------------------------------
    # workload-derived coefficients
    # ------------------------------------------------------------------
    def _conflict_coefficient(self) -> float:
        """Probability that one committing updater invalidates a given run."""
        w = self.workload
        k = w.accesses_per_txn
        updater_fraction = 1.0 - w.query_fraction
        writes_per_updater = max(w.write_fraction * k, 1.0 if w.write_fraction > 0 else 0.0)
        if updater_fraction <= 0.0 or writes_per_updater <= 0.0:
            return 0.0
        # a committing updater writes `writes_per_updater` granules; each hits
        # this transaction's read set (size k) with probability k / D
        pair_probability = 1.0 - (1.0 - k / w.db_size) ** writes_per_updater
        return updater_fraction * min(1.0, pair_probability)

    def _cpu_demand(self) -> float:
        p = self.params
        return p.cpu_init + self.workload.accesses_per_txn * p.cpu_per_access + p.cpu_commit

    def _disk_demand(self) -> float:
        p = self.params
        return self.workload.accesses_per_txn * p.disk_per_access + p.disk_commit

    # ------------------------------------------------------------------
    def evaluate(self, mpl: float, iterations: int = 200, damping: float = 0.5,
                 tolerance: float = 1e-9) -> OccOperatingPoint:
        """Solve the fixed point at multiprogramming level ``mpl``."""
        if mpl <= 0:
            return OccOperatingPoint(mpl, 0.0, 0.0, 0.0, 0.0, 0.0)
        cpu = self._cpu_demand()
        disk = self._disk_demand()
        m = self.params.n_cpus
        conflict = self._conflict_coefficient()
        cpu_capacity = m / cpu if cpu > 0 else math.inf

        # initial guess: no contention at all
        abort_probability = 0.0
        execution_rate = min(mpl / max(cpu + disk, 1e-12), cpu_capacity)
        for _ in range(iterations):
            residence = mpl / max(execution_rate, 1e-12)
            commit_rate = (1.0 - abort_probability) * execution_rate
            new_abort = 1.0 - math.exp(-conflict * commit_rate * residence) if conflict > 0 else 0.0
            # CPU queueing: the execution rate cannot exceed the CPU capacity,
            # and when below capacity it is set by the uncontended cycle time
            uncontended_rate = mpl / max(cpu + disk, 1e-12)
            new_execution = min(uncontended_rate, cpu_capacity)
            # damped update for stability of the fixed point
            next_abort = (1 - damping) * abort_probability + damping * new_abort
            next_execution = (1 - damping) * execution_rate + damping * new_execution
            if (abs(next_abort - abort_probability) < tolerance
                    and abs(next_execution - execution_rate) < tolerance):
                abort_probability, execution_rate = next_abort, next_execution
                break
            abort_probability, execution_rate = next_abort, next_execution

        throughput = (1.0 - abort_probability) * execution_rate
        residence = mpl / max(execution_rate, 1e-12)
        wasted = abort_probability  # share of runs whose CPU work is discarded
        return OccOperatingPoint(
            mpl=mpl,
            throughput=throughput,
            execution_rate=execution_rate,
            abort_probability=abort_probability,
            residence_time=residence,
            wasted_cpu_fraction=wasted,
        )

    def throughput(self, mpl: float) -> float:
        """Useful throughput at multiprogramming level ``mpl``."""
        return self.evaluate(mpl).throughput

    def throughput_curve(self, levels: Sequence[float]) -> list:
        """Throughput at each level in ``levels``."""
        return [self.throughput(level) for level in levels]

    # ------------------------------------------------------------------
    def optimal_mpl(self, lower: float = 1.0, upper: Optional[float] = None,
                    resolution: int = 64) -> float:
        """Multiprogramming level that maximises the modelled throughput.

        Golden-section search over [lower, upper] after a coarse scan; the
        modelled curve is unimodal by construction, matching the paper's
        Section 3 assumption.
        """
        if upper is None:
            upper = max(4.0 * self.params.saturation_mpl(), lower + 1.0)
        # coarse scan to bracket the maximum
        levels = [lower + (upper - lower) * i / (resolution - 1) for i in range(resolution)]
        values = [self.throughput(level) for level in levels]
        best_index = max(range(len(values)), key=values.__getitem__)
        lo = levels[max(0, best_index - 1)]
        hi = levels[min(len(levels) - 1, best_index + 1)]
        # golden-section refinement
        phi = (math.sqrt(5.0) - 1.0) / 2.0
        a, b = lo, hi
        c = b - phi * (b - a)
        d = a + phi * (b - a)
        fc, fd = self.throughput(c), self.throughput(d)
        for _ in range(60):
            if b - a < 1e-3:
                break
            if fc > fd:
                b, d, fd = d, c, fc
                c = b - phi * (b - a)
                fc = self.throughput(c)
            else:
                a, c, fc = c, d, fd
                d = a + phi * (b - a)
                fd = self.throughput(d)
        return (a + b) / 2.0

    def optimal_point(self) -> OccOperatingPoint:
        """The operating point at the modelled optimum."""
        return self.evaluate(self.optimal_mpl())
