"""Data types exchanged between the measurement layer and the controllers.

Keeping these as plain dataclasses decouples the controllers from the
simulator: a controller can be driven from the discrete-event model, from
the synthetic overload function, or (in a real deployment) from a DBMS
monitoring facility, as long as someone fills in an
:class:`IntervalMeasurement` per sampling interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class IntervalMeasurement:
    """Quantities observed during one measurement interval ``[t_i, t_{i+1})``.

    The paper's controllers use the realized (load, performance) pair of the
    interval; the remaining fields support the alternative performance
    indices discussed in Section 6 and the rule-of-thumb controllers.
    """

    #: time at the *end* of the interval (the sampling instant ``t_{i+1}``)
    time: float
    #: length of the interval in simulated seconds
    interval_length: float
    #: committed transactions per second during the interval (``P(t_i)``)
    throughput: float
    #: time-averaged number of admitted transactions during the interval
    mean_concurrency: float
    #: number of admitted transactions at the sampling instant (``n(t_i)``)
    concurrency_at_sample: float
    #: threshold ``n*`` that was in effect during the interval
    current_limit: float
    #: commits during the interval
    commits: int = 0
    #: abandoned executions (restarts) during the interval
    aborts: int = 0
    #: certification conflicts (or deadlocks) during the interval
    conflicts: int = 0
    #: mean submission-to-commit latency of the interval's commits
    mean_response_time: float = 0.0
    #: transactions waiting in front of the admission gate at the sample
    admission_queue_length: float = 0.0
    #: mean number of data accesses per transaction observed (for rule-based
    #: controllers that need the current ``k``)
    mean_accesses_per_txn: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval_length <= 0:
            raise ValueError(
                f"interval_length must be positive, got {self.interval_length}"
            )
        if self.throughput < 0:
            raise ValueError(f"throughput must be non-negative, got {self.throughput}")

    @property
    def conflicts_per_commit(self) -> float:
        """Average conflicts per committed transaction in the interval."""
        if self.commits == 0:
            return 0.0
        return self.conflicts / self.commits

    @property
    def abort_ratio(self) -> float:
        """Abandoned executions per commit in the interval."""
        if self.commits == 0:
            return float(self.aborts)
        return self.aborts / self.commits

    @property
    def effective_utilisation_proxy(self) -> float:
        """Commits per started execution -- a cheap useful-work indicator."""
        started = self.commits + self.aborts
        if started == 0:
            return 0.0
        return self.commits / started


@dataclass
class ControlTrace:
    """Trajectory of the control loop over a run.

    One entry is appended per measurement interval; benchmarks use the trace
    to regenerate the trajectory figures (13 and 14) and the tracking-error
    metrics.
    """

    times: List[float] = field(default_factory=list)
    limits: List[float] = field(default_factory=list)
    concurrency: List[float] = field(default_factory=list)
    throughput: List[float] = field(default_factory=list)
    response_times: List[float] = field(default_factory=list)
    conflicts_per_commit: List[float] = field(default_factory=list)

    def append(self, measurement: IntervalMeasurement, new_limit: float) -> None:
        """Record one closed-loop step."""
        self.times.append(measurement.time)
        self.limits.append(new_limit)
        self.concurrency.append(measurement.mean_concurrency)
        self.throughput.append(measurement.throughput)
        self.response_times.append(measurement.mean_response_time)
        self.conflicts_per_commit.append(measurement.conflicts_per_commit)

    def __len__(self) -> int:
        return len(self.times)

    def mean_throughput(self) -> float:
        """Average of the per-interval throughputs (0 if empty)."""
        if not self.throughput:
            return 0.0
        return sum(self.throughput) / len(self.throughput)

    def limit_series(self) -> Sequence[tuple]:
        """The (time, limit) series, e.g. for plotting figure 13/14 style."""
        return tuple(zip(self.times, self.limits))
