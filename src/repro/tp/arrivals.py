"""Arrival models: closed terminals, open Poisson, partly-open sessions.

The paper's physical model is *closed*: ``N`` terminals resubmit after an
exponential think time, so the offered load is bounded by construction and
the admission queue can never grow without limit.  Real transaction systems
face *open* traffic — arrivals keep coming whether or not earlier work has
finished — and the partly-open middle ground, where independent sessions
arrive from outside but each session submits a finite burst of transactions
before leaving.  The load-control question changes character across these
shapes: an open overload cannot be absorbed by slowing the sources down, so
the gate must shed work instead of merely queueing it.

This module describes the arrival shape as picklable plain configuration,
mirroring :class:`~repro.tp.workload.ParameterSchedule`:

* :class:`ClosedArrivals` — the paper's terminal model (also selected by
  ``arrivals=None`` everywhere, which keeps every existing trajectory
  bit-identical);
* :class:`OpenArrivals` — a Poisson source whose rate is a
  :class:`~repro.tp.workload.ParameterSchedule`, so diurnal sinusoids and
  flash-crowd jumps reuse the existing schedule machinery.  Nonhomogeneous
  rates are realised by Lewis–Shedler thinning against the schedule's
  static peak;
* :class:`PartlyOpenArrivals` — sessions arrive Poisson, each submitting a
  bounded-Pareto number of transactions back to back (with an optional
  exponential intra-session think time).

All draws use dedicated :class:`~repro.sim.random_streams.RandomStreams`
names (``arrival-interarrival``, ``arrival-thinning``, ``session-size``,
``session-think``), so attaching an arrival process never perturbs the
streams a closed run consumes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.tp.workload import (
    ConstantSchedule,
    JumpSchedule,
    ParameterSchedule,
    SinusoidSchedule,
    StepSchedule,
    _as_schedule,
    static_schedule_values,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.random_streams import RandomStreams

#: stream names consumed by the arrival machinery — dedicated names so the
#: closed model's streams ("think-time", "txn-class", ...) are untouched
INTERARRIVAL_STREAM = "arrival-interarrival"
THINNING_STREAM = "arrival-thinning"
SESSION_SIZE_STREAM = "session-size"
SESSION_THINK_STREAM = "session-think"


def schedule_upper_bound(schedule: ParameterSchedule) -> float:
    """A static upper bound on the values a rate schedule can take.

    Used as the majorising rate of the Lewis–Shedler thinning loop, so it
    must dominate ``schedule.value(t)`` for every ``t``.  Exact for the
    four shipped schedule families; unknown schedule types are rejected
    because an under-estimated bound would silently distort the arrival
    process rather than fail.
    """
    if isinstance(schedule, ConstantSchedule):
        return schedule.value(0.0)
    if isinstance(schedule, JumpSchedule):
        return max(schedule.before, schedule.after)
    if isinstance(schedule, StepSchedule):
        return max((schedule.initial,) + tuple(v for _, v in schedule.steps))
    if isinstance(schedule, SinusoidSchedule):
        return schedule.mean + abs(schedule.amplitude)
    raise ValueError(
        f"cannot bound the peak of schedule type {type(schedule).__name__}; "
        "thinning needs a static majorising rate"
    )


class ArrivalProcess(ABC):
    """How transactions enter the system, as picklable plain configuration.

    Like :class:`~repro.tp.workload.ParameterSchedule`, instances are pure
    configuration and compare/hash by it (runtime counters, stored under
    underscore-prefixed attributes, are excluded), so a
    :class:`~repro.runner.specs.RunSpec` carrying an arrival process equals
    its copy after a trip through the dist wire protocol.
    """

    #: wire-format discriminator, set by each concrete subclass
    kind: str = ""

    @abstractmethod
    def next_interarrival(self, streams: "RandomStreams", now: float) -> float:
        """Draw the gap until the next arrival after ``now``."""

    def session_size(self, streams: "RandomStreams") -> int:
        """Transactions submitted per arrival (1 unless partly-open)."""
        return 1

    #: mean think time between a session's transactions (0 = back to back)
    session_think_time: float = 0.0

    def _config(self) -> tuple:
        return tuple(sorted(
            (name, attr) for name, attr in self.__dict__.items()
            if not name.startswith("_")
        ))

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._config() == other._config()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._config()))


class ClosedArrivals(ArrivalProcess):
    """The paper's closed model: ``N`` terminals with exponential think.

    Exists so specs can *name* the closed shape explicitly; it carries no
    configuration of its own (the terminal count and think time live in
    :class:`~repro.tp.params.SystemParams`) and the system treats it
    exactly like ``arrivals=None``.
    """

    kind = "closed"

    def next_interarrival(self, streams: "RandomStreams", now: float) -> float:
        """Refuse to draw: closed traffic comes from the terminals."""
        raise NotImplementedError(
            "closed arrivals are generated by the terminal processes, "
            "not by an arrival source"
        )


class OpenArrivals(ArrivalProcess):
    """A Poisson source with a (possibly time-varying) rate schedule.

    Every arrival submits exactly one transaction and leaves; the offered
    load is whatever the rate schedule says, regardless of how congested
    the system already is.  Nonhomogeneous rates use Lewis–Shedler
    thinning: candidate gaps are exponential at the schedule's static peak
    rate, and each candidate is accepted with probability ``rate(t)/peak``
    drawn on a separate thinning stream.  Constant-rate schedules skip the
    thinning draws entirely (one exponential per arrival).

    A dynamic schedule (sinusoid) may dip below zero; such instants get an
    arrival rate of zero and each clamped evaluation is counted in
    :attr:`clamped_evaluations`, mirroring the workload schedules'
    ``schedule_clamped`` diagnostic.
    """

    kind = "open"

    def __init__(self, rate):
        self.rate = _as_schedule(rate)
        peak = schedule_upper_bound(self.rate)
        if not math.isfinite(peak) or peak <= 0.0:
            raise ValueError(
                f"arrival rate schedule must have a positive finite peak, got {peak}"
            )
        for value in static_schedule_values(self.rate):
            if value < 0.0:
                raise ValueError(
                    f"arrival rate schedule value {value} is negative; the "
                    "source would silently emit nothing at that rate"
                )
        self._peak = peak
        self._constant_rate = (
            self.rate.value(0.0) if isinstance(self.rate, ConstantSchedule) else None
        )
        #: evaluations of a dynamic rate schedule clamped up to zero
        self._clamped = 0

    @property
    def clamped_evaluations(self) -> int:
        """How often a dynamic rate value had to be clamped up to zero."""
        return self._clamped

    def next_interarrival(self, streams: "RandomStreams", now: float) -> float:
        """Gap to the next arrival, by thinning against the peak rate."""
        constant = self._constant_rate
        if constant is not None:
            return float(streams.exponential(INTERARRIVAL_STREAM, 1.0 / constant))
        peak = self._peak
        gap_rng = streams.stream(INTERARRIVAL_STREAM)
        rate_at = self.rate.value
        gap = 0.0
        while True:
            gap += float(gap_rng.exponential(1.0 / peak))
            rate = rate_at(now + gap)
            if rate < 0.0:
                rate = 0.0
                self._clamped += 1
            accept = float(streams.uniform(THINNING_STREAM, 0.0, peak))
            if accept < rate:
                return gap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpenArrivals(rate={self.rate!r})"


class PartlyOpenArrivals(OpenArrivals):
    """Sessions arrive Poisson; each submits a bounded-Pareto burst.

    The rate schedule governs *session* arrivals.  Each session draws its
    transaction count from a bounded Pareto on ``[min_session,
    max_session]`` with shape ``session_alpha`` (heavy-tailed session
    lengths are the standard partly-open workload model), then submits
    that many transactions sequentially, separated by an exponential think
    time of mean :attr:`session_think_time` (0 = back to back).
    """

    kind = "partly_open"

    def __init__(self, rate, session_alpha: float = 1.5,
                 min_session: int = 1, max_session: int = 50,
                 session_think_time: float = 0.0):
        super().__init__(rate)
        if session_alpha <= 0.0:
            raise ValueError(f"session_alpha must be positive, got {session_alpha}")
        if not 1 <= int(min_session) <= int(max_session):
            raise ValueError(
                f"session bounds must satisfy 1 <= min <= max, got "
                f"[{min_session}, {max_session}]"
            )
        if session_think_time < 0.0:
            raise ValueError(
                f"session_think_time must be non-negative, got {session_think_time}"
            )
        self.session_alpha = float(session_alpha)
        self.min_session = int(min_session)
        self.max_session = int(max_session)
        self.session_think_time = float(session_think_time)

    def session_size(self, streams: "RandomStreams") -> int:
        """Draw a session's transaction count (bounded-Pareto inverse CDF).

        Always consumes exactly one draw on the ``session-size`` stream, so
        the draw discipline is independent of the configured bounds.
        """
        u = float(streams.uniform(SESSION_SIZE_STREAM, 0.0, 1.0))
        alpha = self.session_alpha
        low = float(self.min_session)
        high = float(self.max_session)
        if low == high:
            return self.min_session
        # inverse CDF of the Pareto truncated to [low, high]:
        # F(x) = (1 - (low/x)^alpha) / (1 - (low/high)^alpha)
        x = low / (1.0 - u * (1.0 - (low / high) ** alpha)) ** (1.0 / alpha)
        return max(self.min_session, min(self.max_session, int(math.floor(x))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartlyOpenArrivals(rate={self.rate!r}, alpha={self.session_alpha}, "
            f"sessions=[{self.min_session}, {self.max_session}], "
            f"think={self.session_think_time})"
        )
