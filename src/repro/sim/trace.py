"""Opt-in trajectory tracing for the transaction system.

The golden-trajectory regression harness (``tests/golden/``) pins the
simulator's behavior down to the individual transaction lifecycle event:
every submission, admission, commit, abort and departure, with its exact
simulation timestamp.  Collecting that log from inside the hot path must
cost nothing when tracing is off, so the hook is a single module-level
slot: :class:`TransactionSystem <repro.tp.system.TransactionSystem>` reads
it once at construction time and afterwards pays only a ``None`` check per
lifecycle event (never per kernel event).

Tracing is process-local and deliberately does NOT propagate to worker
processes; the golden harness therefore captures full event logs serially
and checks the (equally deterministic) summary metrics for the parallel
path.  This is one of three observation channels with distinct
propagation rules — the in-sim probes ride the cell spec as plain names
and are rebuilt inside whichever worker runs the cell, and the telemetry
spans propagate via an inherited environment variable and carry a
``worker`` field attributing each span to its emitting process.  The full
contract is documented in ``docs/observability.md``.

Usage::

    tracer = TrajectoryTracer()
    with tracing(tracer):
        execute_run_spec(spec)
    tracer.events  # [(time, kind, txn_id, detail), ...]
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Tuple

#: one trajectory record: (simulation time, event kind, txn id, detail)
TraceEvent = Tuple[float, str, int, str]

#: lifecycle event kinds recorded by the transaction system
SUBMIT = "submit"
ADMIT = "admit"
COMMIT = "commit"
ABORT = "abort"
DEPART = "depart"
#: open-system runs: an arrival rejected outright by a tenant queue quota
SHED = "shed"


class TrajectoryTracer:
    """Accumulates the per-transaction lifecycle log of one run."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, time: float, kind: str, txn_id: int, detail: str = "") -> None:
        """Append one lifecycle record (called by the transaction system)."""
        self.events.append((time, kind, txn_id, detail))

    def __len__(self) -> int:
        return len(self.events)


_active: Optional[TrajectoryTracer] = None


def install_tracer(tracer: Optional[TrajectoryTracer]) -> None:
    """Install ``tracer`` as the process-wide trajectory tracer (None clears)."""
    global _active
    _active = tracer


def active_tracer() -> Optional[TrajectoryTracer]:
    """The currently installed tracer, or None when tracing is off."""
    return _active


@contextmanager
def tracing(tracer: TrajectoryTracer) -> Iterator[TrajectoryTracer]:
    """Install ``tracer`` for the duration of the block, restoring the old one."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
