"""Admission control gate (Section 4.3, Figure 5).

"The admission to the transaction processing system is controlled by a
'gate' that accepts an arriving transaction if and only if the actual load
``n`` is below the current threshold ``n*``.  Otherwise the transaction has
to wait in a FCFS queue.  Waiting transactions are admitted as soon as
``n < n*`` holds again."

The gate is the single point where the concurrency level is defined: a
transaction counts against ``n`` from the moment it is admitted until it
departs (commits or is displaced), *including* all restarted executions in
between — a restart does not go back through the gate, which matches the
paper's model where the load ``n`` is the number of transactions inside the
processing system.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Tuple

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.stats import TimeWeightedStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.transaction import Transaction


class AdmissionGate:
    """FCFS admission queue in front of the transaction processing system."""

    def __init__(self, sim: Simulator, initial_limit: float = math.inf,
                 name: str = "admission-gate"):
        if initial_limit < 1:
            raise ValueError(f"initial_limit must be >= 1, got {initial_limit}")
        self.sim = sim
        self.name = name
        self._limit = float(initial_limit)
        self._admitted: set[int] = set()
        self._waiting: Deque[Tuple["Transaction", Event]] = deque()
        # time-weighted statistics of the in-system load and the queue
        self.load_stats = TimeWeightedStats(sim.now, 0.0)
        self.queue_stats = TimeWeightedStats(sim.now, 0.0)
        self.total_admitted = 0
        self.total_departed = 0

    # ------------------------------------------------------------------
    @property
    def limit(self) -> float:
        """The current threshold ``n*``."""
        return self._limit

    @property
    def current_load(self) -> int:
        """The actual load ``n``: transactions admitted and not yet departed."""
        return len(self._admitted)

    @property
    def queue_length(self) -> int:
        """Transactions waiting in front of the gate."""
        return len(self._waiting)

    # ------------------------------------------------------------------
    def set_limit(self, new_limit: float) -> None:
        """Install a new threshold and admit waiters if it increased.

        Lowering the threshold below the current load does *not* evict
        admitted transactions; that is the job of the (optional) displacement
        policy.  Admission control alone "was responsive enough to prevent
        thrashing even with dramatically changing workloads" (Section 4.3).
        """
        if new_limit < 1:
            raise ValueError(f"limit must be >= 1, got {new_limit}")
        self._limit = float(new_limit)
        self._admit_waiters()

    def submit(self, txn: "Transaction") -> Event:
        """Ask for admission; the returned event succeeds when admitted."""
        event = Event(self.sim)
        if self.current_load < self._limit and not self._waiting:
            self._admit(txn, event)
        else:
            self._waiting.append((txn, event))
            self.queue_stats.update(self.sim.now, len(self._waiting))
        return event

    def depart(self, txn: "Transaction") -> None:
        """A transaction left the system (commit or displacement)."""
        if txn.txn_id not in self._admitted:
            raise SimulationError(
                f"transaction {txn.txn_id} departed without having been admitted"
            )
        self._admitted.discard(txn.txn_id)
        self.total_departed += 1
        self.load_stats.update(self.sim.now, len(self._admitted))
        self._admit_waiters()

    def cancel(self, txn: "Transaction") -> bool:
        """Withdraw a waiting transaction (e.g. simulation shutdown).

        Returns True if the transaction was waiting and has been removed.
        """
        for index, (waiting_txn, event) in enumerate(self._waiting):
            if waiting_txn.txn_id == txn.txn_id:
                del self._waiting[index]
                self.queue_stats.update(self.sim.now, len(self._waiting))
                if not event.triggered:
                    event.fail(SimulationError("admission request cancelled"))
                return True
        return False

    # ------------------------------------------------------------------
    def _admit(self, txn: "Transaction", event: Event) -> None:
        self._admitted.add(txn.txn_id)
        self.total_admitted += 1
        txn.admitted_at = self.sim.now
        self.load_stats.update(self.sim.now, len(self._admitted))
        event.succeed(txn)

    def _admit_waiters(self) -> None:
        while self._waiting and self.current_load < self._limit:
            txn, event = self._waiting.popleft()
            self.queue_stats.update(self.sim.now, len(self._waiting))
            self._admit(txn, event)

    # ------------------------------------------------------------------
    def mean_load(self, until: Optional[float] = None) -> float:
        """Time-averaged in-system load since the last statistics reset."""
        return self.load_stats.mean(until if until is not None else self.sim.now)

    def reset_statistics(self) -> None:
        """Restart the time-weighted averages (end of warm-up or interval)."""
        self.load_stats.reset(self.sim.now)
        self.queue_stats.reset(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdmissionGate limit={self._limit:.1f} load={self.current_load} "
            f"queued={self.queue_length}>"
        )
