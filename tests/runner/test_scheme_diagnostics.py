"""Diagnostics on real stationary cells: per-reason aborts, anomalies, refs.

``tp.metrics`` has always counted aborts per reason, but until the
``deadlock_resolution`` scenario nothing at the *sweep* level pinned that
the restart-heavy deadlock-avoiding schemes report their restarts under
the right label.  These tests run real cells through
:func:`~repro.runner.cells.execute_run_spec` and assert the full chain:
scheme -> RunMetrics -> StationaryPoint -> cell metrics.

``isolation_diagnostics`` follows the same opt-in pattern one layer
deeper: the cell's committed history flows through the isolation oracle
(:mod:`repro.cc.history`) and per-kind ``anomalies_<kind>`` counts land in
the metrics — zero across the board for serializable schemes, write skew
(and nothing else) for snapshot isolation on a contended cell.
"""

import pytest

from repro.cc import ANOMALY_KINDS, CCSpec
from repro.experiments.config import ExperimentScale
from repro.runner.cells import execute_run_spec
from repro.runner.specs import KIND_STATIONARY, KIND_TRACKING, RunSpec
from repro.tp.params import SystemParams, WorkloadParams

#: every metric key a diagnostics cell must carry, one per AbortReason
ABORT_METRICS = ("aborts_certification", "aborts_deadlock", "aborts_die",
                 "aborts_displacement", "aborts_wound")

#: every metric key an isolation-diagnostics cell must carry
ANOMALY_METRICS = tuple(f"anomalies_{kind}" for kind in ANOMALY_KINDS)


def contended_params(seed: int = 11) -> SystemParams:
    return SystemParams(
        n_terminals=40, think_time=0.0, n_cpus=2,
        cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
        disk_per_access=0.004, disk_commit=0.004, restart_delay=0.005,
        seed=seed,
        workload=WorkloadParams(db_size=150, accesses_per_txn=6,
                                query_fraction=0.1, write_fraction=0.8))


def run_cell(kind: str, **spec_kwargs):
    spec = RunSpec(
        kind=KIND_STATIONARY,
        cell_id=f"diag/{kind}",
        params=contended_params(),
        scale=ExperimentScale.smoke(),
        cc=CCSpec.make(kind),
        label=kind,
        **spec_kwargs,
    )
    return execute_run_spec(spec)


class TestAbortReasonPropagation:
    def test_wound_wait_reports_wounds_not_deadlocks(self):
        """The restart-family reason survives to the sweep level."""
        result = run_cell("wound_wait", scheme_diagnostics=True)
        for key in ABORT_METRICS:
            assert key in result.metrics
        assert result.metrics["aborts_wound"] > 0, (
            "the contended cell never wounded — vacuous")
        assert result.metrics["aborts_deadlock"] == 0.0
        assert result.metrics["aborts_die"] == 0.0
        assert result.metrics["aborts_certification"] == 0.0
        # the payload carries the same counts for figure-level consumers
        assert result.payload.aborts_by_reason["wound"] == int(
            result.metrics["aborts_wound"])

    def test_wait_die_reports_deaths(self):
        result = run_cell("wait_die", scheme_diagnostics=True)
        assert result.metrics["aborts_die"] > 0
        assert result.metrics["aborts_deadlock"] == 0.0
        assert result.metrics["aborts_wound"] == 0.0

    def test_detector_reports_deadlocks(self):
        result = run_cell("two_phase_locking", scheme_diagnostics=True)
        assert result.metrics["aborts_deadlock"] > 0
        assert result.metrics["aborts_wound"] == 0.0
        assert result.metrics["aborts_die"] == 0.0

    def test_optimistic_schemes_report_certification(self):
        for kind in ("timestamp_cert", "occ_forward"):
            result = run_cell(kind, scheme_diagnostics=True)
            assert result.metrics["aborts_certification"] > 0, kind
            assert result.metrics["aborts_deadlock"] == 0.0, kind


class TestReplicatedDiagnostics:
    def test_replicated_sweeps_keep_per_reason_aborts(self):
        """The synthetic mean point folds the aborts_<reason> means back
        (regression: replicates > 1 used to reset aborts_by_reason to {})."""
        from repro.experiments.stationary import stationary_sweep_spec
        from repro.runner import run_sweep, stationary_sweeps

        tiny = ExperimentScale(
            stationary_horizon=3.0, warmup=0.5, offered_loads=(40,),
            tracking_horizon=12.0, measurement_interval=2.0, synthetic_steps=30)
        spec = stationary_sweep_spec(contended_params(), scale=tiny,
                                     label="wound-wait", name="diag_replicated",
                                     cc=CCSpec.make("wound_wait"),
                                     scheme_diagnostics=True)
        result = run_sweep(spec, replicates=2)
        (sweep,) = stationary_sweeps(result).values()
        (point,) = sweep.points
        assert point.aborts_by_reason["wound"] > 0
        assert point.aborts_by_reason["deadlock"] == 0


class TestIsolationDiagnostics:
    def test_serializable_schemes_report_zero_anomalies(self):
        """The recording wrapper sees clean histories under real load."""
        for kind in ("two_phase_locking", "timestamp_cert"):
            result = run_cell(kind, isolation_diagnostics=True)
            for key in ANOMALY_METRICS:
                assert result.metrics[key] == 0.0, (kind, key)

    def test_snapshot_isolation_reports_write_skew_and_nothing_else(self):
        result = run_cell("snapshot_isolation", isolation_diagnostics=True)
        assert result.metrics["anomalies_write_skew"] > 0, (
            "the contended cell produced no write skew — vacuous")
        assert result.metrics["anomalies_lost_update"] == 0.0
        assert result.metrics["anomalies_long_fork"] == 0.0
        assert result.metrics["anomalies_non_repeatable_read"] == 0.0
        # the payload carries the same counts for figure-level consumers
        assert result.payload.anomalies["write_skew"] == int(
            result.metrics["anomalies_write_skew"])

    def test_recording_preserves_the_trajectory(self):
        """Observation must not change the run it observes."""
        plain = run_cell("snapshot_isolation")
        recorded = run_cell("snapshot_isolation", isolation_diagnostics=True)
        for key in plain.metrics:
            assert recorded.metrics[key] == plain.metrics[key], key

    def test_isolation_diagnostics_rejected_for_tracking_runs(self):
        from repro.experiments.dynamic import jump_scenario
        from repro.runner.specs import ControllerSpec

        with pytest.raises(ValueError, match="stationary runs only"):
            RunSpec(
                kind=KIND_TRACKING,
                cell_id="diag/tracking-isolation",
                params=contended_params(),
                scale=ExperimentScale.smoke(),
                controller=ControllerSpec.make("incremental_steps"),
                scenario=jump_scenario("accesses", 4, 16, jump_time=30.0),
                isolation_diagnostics=True,
            )

    def test_replicated_sweeps_keep_per_kind_anomalies(self):
        """The synthetic mean point folds the anomalies_<kind> means back."""
        from repro.experiments.stationary import stationary_sweep_spec
        from repro.runner import run_sweep, stationary_sweeps

        tiny = ExperimentScale(
            stationary_horizon=3.0, warmup=0.5, offered_loads=(40,),
            tracking_horizon=12.0, measurement_interval=2.0, synthetic_steps=30)
        # tighten the database so the short horizon still produces skew
        # in every replicate (the fold rounds the replicate mean)
        base = contended_params()
        base = base.with_changes(
            workload=base.workload.with_changes(db_size=40))
        spec = stationary_sweep_spec(base, scale=tiny,
                                     label="SI", name="diag_isolation",
                                     cc=CCSpec.make("snapshot_isolation"),
                                     isolation_diagnostics=True)
        result = run_sweep(spec, replicates=2)
        (sweep,) = stationary_sweeps(result).values()
        (point,) = sweep.points
        assert point.anomalies["write_skew"] > 0
        assert point.anomalies["lost_update"] == 0


class TestModelReferenceLabel:
    def test_locking_cells_are_referenced_against_tay(self):
        for kind in ("two_phase_locking", "wound_wait", "wait_die"):
            assert run_cell(kind, scheme_diagnostics=True).model_reference == "TayModel"

    def test_optimistic_cells_keep_the_occ_reference(self):
        for kind in ("timestamp_cert", "occ_forward"):
            assert run_cell(kind, scheme_diagnostics=True).model_reference == "OccModel"


class TestOptInContract:
    def test_without_diagnostics_the_metric_schema_is_unchanged(self):
        """The pre-existing goldens rely on this exact key set."""
        result = run_cell("wound_wait")
        assert result.model_reference == ""
        assert set(result.metrics) == {
            "throughput", "mean_response_time", "restart_ratio",
            "mean_concurrency", "cpu_utilisation", "commits", "final_limit",
        }

    def test_diagnostics_rejected_for_tracking_runs(self):
        from repro.experiments.dynamic import jump_scenario
        from repro.runner.specs import ControllerSpec

        with pytest.raises(ValueError, match="stationary runs only"):
            RunSpec(
                kind=KIND_TRACKING,
                cell_id="diag/tracking",
                params=contended_params(),
                scale=ExperimentScale.smoke(),
                controller=ControllerSpec.make("incremental_steps"),
                scenario=jump_scenario("accesses", 4, 16, jump_time=30.0),
                scheme_diagnostics=True,
            )
