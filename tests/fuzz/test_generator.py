"""Tests for the seeded deterministic candidate generator."""

import pytest

from repro.fuzz.adversaries import adversary_kinds
from repro.fuzz.corpus import canonical_json
from repro.fuzz.generator import generate_candidates


class TestDeterminism:
    def test_same_seed_and_budget_give_the_identical_stream(self):
        first = generate_candidates(seed=11, budget=10)
        second = generate_candidates(seed=11, budget=10)
        assert first == second

    def test_encoded_stream_is_byte_identical(self):
        encode = lambda batch: canonical_json([c.to_jsonable() for c in batch])  # noqa: E731
        assert encode(generate_candidates(7, 12)) == encode(generate_candidates(7, 12))

    def test_different_seeds_diverge(self):
        assert generate_candidates(1, 10) != generate_candidates(2, 10)

    def test_prefix_stability_under_larger_budget(self):
        # growing the budget only appends: the first N candidates are the
        # same stream (per-kind streams + round-robin order)
        short = generate_candidates(seed=5, budget=5)
        long = generate_candidates(seed=5, budget=10)
        assert long[: len(short)] == short

    def test_kind_restriction_does_not_perturb_that_kinds_stream(self):
        # one named stream per kind: a hot_key-only campaign draws the same
        # hot_key candidates the all-kinds campaign does
        all_kinds = [c for c in generate_candidates(3, 20) if c.kind == "hot_key"]
        only = generate_candidates(3, len(all_kinds), kinds=["hot_key"])
        assert only == all_kinds


class TestStreamShape:
    def test_budget_is_respected(self):
        assert len(generate_candidates(1, 7)) == 7

    def test_round_robin_covers_every_kind(self):
        batch = generate_candidates(seed=9, budget=len(adversary_kinds()))
        assert tuple(sorted(c.kind for c in batch)) == adversary_kinds()

    def test_candidates_are_distinct_by_fingerprint(self):
        batch = generate_candidates(seed=4, budget=25)
        fingerprints = [c.fingerprint() for c in batch]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_every_candidate_validates_and_lowers(self):
        from repro.experiments.config import ExperimentScale

        scale = ExperimentScale.smoke()
        for candidate in generate_candidates(seed=2, budget=10):
            cell = candidate.lower(scale)
            assert cell.cell_id == candidate.cell_id()


class TestValidation:
    def test_zero_budget_is_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            generate_candidates(seed=1, budget=0)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary kinds"):
            generate_candidates(seed=1, budget=3, kinds=["meteor_strike"])

    def test_empty_kinds_is_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            generate_candidates(seed=1, budget=3, kinds=[])
