"""Transaction processing system model (the paper's simulation substrate).

This package implements the closed simulation model of Section 7:

* a *physical model*: ``N`` terminals with exponential think times, a
  homogeneous multiprocessor serving a single shared queue, and a disk
  subsystem with constant service times and no contention;
* a *logical model*: each transaction accesses a constant number ``k`` of
  uniformly chosen data granules in ``k + 2`` phases (initialization, ``k``
  access phases with gradually growing data set, commit processing);
* a workload generator that can vary ``k``, the fraction of read-only
  queries and the fraction of write accesses over time, either abruptly
  (jump) or gradually (sinusoid), to reproduce the dynamic experiments.
"""

from repro.tp.database import Database
from repro.tp.metrics import RunMetrics
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem
from repro.tp.transaction import Transaction, TransactionClass
from repro.tp.workload import (
    ConstantSchedule,
    JumpSchedule,
    MixedClassWorkload,
    ParameterSchedule,
    SinusoidSchedule,
    StepSchedule,
    TransactionClassSpec,
    Workload,
    mixed_class_params,
)

__all__ = [
    "Database",
    "RunMetrics",
    "SystemParams",
    "WorkloadParams",
    "TransactionSystem",
    "Transaction",
    "TransactionClass",
    "Workload",
    "MixedClassWorkload",
    "TransactionClassSpec",
    "ParameterSchedule",
    "ConstantSchedule",
    "JumpSchedule",
    "SinusoidSchedule",
    "StepSchedule",
    "mixed_class_params",
]
