"""Statistics utilities for simulation output analysis.

The measurement layer of the load controller (Section 5 of the paper) needs
to estimate throughput and concurrency over finite intervals and to reason
about how long an interval must be to reach a given accuracy at a given
confidence level.  The classes here provide the required building blocks:

* :class:`ObservationStats` -- streaming mean/variance (Welford) over
  discrete observations such as response times.
* :class:`TimeWeightedStats` -- time-weighted averages of piecewise-constant
  quantities such as the concurrency level ``n(t)``.
* :class:`P2Quantile` -- deterministic streaming quantile estimation (the
  P-squared algorithm of Jain & Chlamtac), used for the p95/p99 SLO
  metrics of open-system runs.
* :class:`BatchMeans` -- the classic batch-means method for confidence
  intervals on steady-state means from a single run.
* :func:`confidence_interval` -- half-width of a t/normal confidence
  interval.
* :func:`required_observations` -- how many observations are needed for a
  target relative accuracy, the quantity Heiss (1988) uses to size the
  measurement interval ("rather hundreds of departures than some tens").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


def _student_t_quantile(probability: float, dof: int) -> float:
    """Two-sided Student-t quantile, falling back to the normal for large dof.

    SciPy is an optional dependency of the core library; when it is present
    the exact quantile is used, otherwise the Cornish-Fisher style expansion
    of the normal quantile is applied, which is accurate to ~1e-3 for the
    degrees of freedom encountered in practice (>= 5).
    """
    if dof <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {dof}")
    try:  # pragma: no cover - exercised when scipy is installed
        from scipy import stats as _scipy_stats

        return float(_scipy_stats.t.ppf(probability, dof))
    except ImportError:  # pragma: no cover - fallback path
        z = _normal_quantile(probability)
        g1 = (z**3 + z) / 4.0
        g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
        g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
        return z + g1 / dof + g2 / dof**2 + g3 / dof**3


def _normal_quantile(probability: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if probability < p_low:
        q = math.sqrt(-2 * math.log(probability))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if probability <= 1 - p_low:
        q = probability - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
    q = math.sqrt(-2 * math.log(1 - probability))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)


class ObservationStats:
    """Streaming mean and variance of discrete observations (Welford).

    ``add`` sits on the simulation hot path (every commit and admission
    records an observation), so the class is slotted and the accumulation
    reads each attribute once.
    """

    __slots__ = ("count", "_mean", "_m2", "_minimum", "_maximum", "_total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf
        self._total = 0.0

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        count = self.count + 1
        self.count = count
        mean = self._mean
        delta = value - mean
        mean += delta / count
        self._mean = mean
        self._m2 += delta * (value - mean)
        self._total += value
        if value < self._minimum:
            self._minimum = value
        if value > self._maximum:
            self._maximum = value

    def merge(self, other: "ObservationStats") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self._minimum = other._minimum
            self._maximum = other._maximum
            self._total = other._total
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean = (self.count * self._mean + other.count * other._mean) / combined
        self.count = combined
        self._total += other._total
        self._minimum = min(self._minimum, other._minimum)
        self._maximum = max(self._maximum, other._maximum)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._total

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return self._minimum if self.count else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return self._maximum if self.count else 0.0

    def reset(self) -> None:
        """Forget all observations."""
        self.__init__()


class TimeWeightedStats:
    """Time-weighted average of a piecewise-constant quantity.

    Typical use: track the concurrency level ``n(t)``; every time it changes
    call :meth:`update` with the new value, then read :attr:`mean` at the end
    of a measurement interval.

    ``update`` runs on every admission, departure and queue change, so the
    class is slotted and the update path avoids repeated attribute reads.
    """

    __slots__ = ("_last_time", "_value", "_area", "_start_time",
                 "_minimum", "_maximum")

    def __init__(self, time: float, value: float = 0.0) -> None:
        self._last_time = float(time)
        self._value = float(value)
        self._area = 0.0
        self._start_time = float(time)
        self._minimum = float(value)
        self._maximum = float(value)

    @property
    def current(self) -> float:
        """Value currently in effect."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Record that the quantity changed to ``value`` at ``time``."""
        time = float(time)
        last_time = self._last_time
        if time < last_time - 1e-12:
            raise ValueError(
                f"time must be non-decreasing: got {time} after {last_time}"
            )
        value = float(value)
        self._area += (time - last_time) * self._value
        self._last_time = time
        self._value = value
        if value < self._minimum:
            self._minimum = value
        if value > self._maximum:
            self._maximum = value

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean from the start (or last reset) until ``until``."""
        end = self._last_time if until is None else float(until)
        if end < self._last_time:
            raise ValueError("cannot compute a mean ending before the last update")
        area = self._area + (end - self._last_time) * self._value
        horizon = end - self._start_time
        if horizon <= 0:
            return self._value
        return area / horizon

    @property
    def minimum(self) -> float:
        """Smallest value seen since the last reset."""
        return self._minimum

    @property
    def maximum(self) -> float:
        """Largest value seen since the last reset."""
        return self._maximum

    def reset(self, time: float) -> None:
        """Restart the averaging window at ``time``, keeping the current value."""
        time = float(time)
        self._area = 0.0
        self._start_time = time
        self._last_time = time
        self._minimum = self._value
        self._maximum = self._value


class P2Quantile:
    """Streaming quantile estimate via the P-squared algorithm.

    Jain & Chlamtac (1985): five markers track the minimum, the maximum,
    the target quantile and the two intermediate quantiles; every new
    observation shifts the markers by at most one position, adjusting the
    interior heights with a piecewise-parabolic prediction.  The estimate
    is a pure function of the observation sequence — no random numbers, no
    stored samples beyond the five markers — so the same trajectory yields
    bit-identical quantiles on every executor, which is what lets the
    ``p95_response_time``/``p99_response_time`` cell metrics be pinned by
    the golden harness across serial, multiprocessing and dist runs.

    Until five observations have arrived the estimate is the exact sample
    quantile (linear interpolation of the sorted observations, which the
    marker array still holds verbatim at that point).
    """

    __slots__ = ("probability", "_increments", "_heights", "_positions",
                 "_desired", "count")

    def __init__(self, probability: float) -> None:
        if not 0.0 < probability < 1.0:
            raise ValueError(
                f"probability must be in (0, 1), got {probability}"
            )
        self.probability = float(probability)
        p = self.probability
        #: per-observation growth of the desired marker positions
        self._increments = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self.count = 0

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # locate the marker cell containing the observation, widening the
        # extreme markers when the observation falls outside them
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        increments = self._increments
        for index in range(5):
            desired[index] += increments[index]
        for index in (1, 2, 3):
            deviation = desired[index] - positions[index]
            if (deviation >= 1.0 and positions[index + 1] - positions[index] > 1.0) or \
               (deviation <= -1.0 and positions[index - 1] - positions[index] < -1.0):
                step = 1.0 if deviation >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        q = self._heights
        n = self._positions
        return q[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (q[index + 1] - q[index]) / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (q[index] - q[index - 1]) / (n[index] - n[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        q = self._heights
        n = self._positions
        neighbour = index + int(step)
        return q[index] + step * (q[neighbour] - q[index]) / (n[neighbour] - n[index])

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        count = self.count
        if count == 0:
            return 0.0
        heights = self._heights
        if count <= 5:
            rank = self.probability * (count - 1)
            low = int(math.floor(rank))
            high = min(low + 1, count - 1)
            fraction = rank - low
            return heights[low] * (1.0 - fraction) + heights[high] * fraction
        return heights[2]

    def reset(self) -> None:
        """Forget all observations (the quantile target is kept)."""
        self.__init__(self.probability)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P2Quantile(p={self.probability}, n={self.count}, value={self.value:.4g})"


@dataclass
class BatchMeans:
    """Batch-means estimator for steady-state means from one long run.

    Observations are grouped into batches of ``batch_size``; the batch means
    are treated as (approximately) independent samples, which gives a
    defensible confidence interval without independent replications.
    """

    batch_size: int
    _current: ObservationStats = field(default_factory=ObservationStats)
    _batch_means: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def add(self, value: float) -> None:
        """Record one observation, closing a batch when it fills up."""
        self._current.add(value)
        if self._current.count >= self.batch_size:
            self._batch_means.append(self._current.mean)
            self._current = ObservationStats()

    @property
    def batch_count(self) -> int:
        """Number of completed batches."""
        return len(self._batch_means)

    @property
    def mean(self) -> float:
        """Grand mean over completed batches."""
        if not self._batch_means:
            return self._current.mean
        return sum(self._batch_means) / len(self._batch_means)

    def half_width(self, confidence: float = 0.95) -> float:
        """Half-width of the confidence interval on the grand mean."""
        if len(self._batch_means) < 2:
            return math.inf
        return confidence_interval(self._batch_means, confidence)


def confidence_interval(samples: Sequence[float], confidence: float = 0.95) -> float:
    """Half-width of the two-sided t confidence interval for the mean."""
    n = len(samples)
    if n < 2:
        return math.inf
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = sum(samples) / n
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    quantile = _student_t_quantile(0.5 + confidence / 2.0, n - 1)
    return quantile * math.sqrt(variance / n)


def required_observations(coefficient_of_variation: float,
                          relative_accuracy: float,
                          confidence: float = 0.95) -> int:
    """Observations needed to estimate a mean to a given relative accuracy.

    For i.i.d. observations with coefficient of variation ``c``, the number
    of samples needed so that the confidence-interval half-width is at most
    ``relative_accuracy`` times the mean is ``(z * c / eps)^2`` where ``z``
    is the normal quantile of the confidence level.  Heiss (1988) uses this
    relation to size the measurement interval of the load controller; the
    paper's rule of thumb ("rather hundreds of departures than some tens")
    corresponds to c around 1 and a 10% accuracy target.
    """
    if coefficient_of_variation < 0:
        raise ValueError("coefficient of variation must be non-negative")
    if relative_accuracy <= 0:
        raise ValueError("relative accuracy must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = _normal_quantile(0.5 + confidence / 2.0)
    needed = (z * coefficient_of_variation / relative_accuracy) ** 2
    return max(1, int(math.ceil(needed)))
