"""Archiving counterexamples as replayable JSON regression fixtures.

Every counterexample a campaign finds is written under a corpus directory
(the repository pins ``tests/fuzz_corpus/``) as one canonical-JSON document
carrying the adversary spec, the lowered
:class:`~repro.runner.specs.RunSpec` (via the runner's JSON round-trip),
the oracle's verdict and the metrics the failing run produced.  A pinned
regression test replays every archived cell through
:func:`~repro.runner.cells.execute_run_spec` and asserts the metrics are
*bit-identical* — the fuzzer's scenario-diversity flywheel: once found,
a controller failure can never silently disappear or change shape.

File names are ``<kind>__<fingerprint>.json`` — a pure function of the
adversary's content — and the documents contain no timestamps, so two
campaigns that find the same counterexample write byte-identical files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.canonical import canonical_json, restore as _restore, sanitize as _sanitize  # noqa: F401
from repro.fuzz.adversaries import AdversarySpec, adversary_from_jsonable
from repro.fuzz.oracle import Verdict
from repro.runner.cells import execute_run_spec
from repro.runner.specs import RunSpec, run_spec_from_jsonable, run_spec_to_jsonable

#: corpus document format tag (bump on breaking changes)
CORPUS_FORMAT = 1


# the corpus's canonical serialisation is the repository-wide one
# (repro.canonical): sorted keys, no whitespace, tagged non-finite floats.
# CI byte-compares freshly archived counterexamples against the committed
# corpus, so this delegation must never change the produced bytes —
# pinned by tests/svc/test_canonical.py.


@dataclass(frozen=True)
class Counterexample:
    """One archived controller failure: adversary, cell, verdict, evidence."""

    adversary: AdversarySpec
    spec: RunSpec
    verdict: Verdict
    #: the failing run's metrics, exactly as the runner reported them
    metrics: Dict[str, float]

    def file_name(self) -> str:
        """Deterministic corpus file name for this counterexample."""
        return f"{self.adversary.kind}__{self.adversary.fingerprint()}.json"

    def to_jsonable(self) -> dict:
        """Encode the full document (inverse of :func:`counterexample_from_jsonable`)."""
        return {
            "format": CORPUS_FORMAT,
            "adversary": self.adversary.to_jsonable(),
            "run_spec": run_spec_to_jsonable(self.spec),
            "verdict": self.verdict.to_jsonable(),
            "metrics": dict(self.metrics),
        }


def counterexample_from_jsonable(data: dict) -> Counterexample:
    """Reconstruct an archived counterexample document."""
    fmt = data.get("format")
    if fmt != CORPUS_FORMAT:
        raise ValueError(
            f"unsupported corpus format {fmt!r} (expected {CORPUS_FORMAT})"
        )
    verdict_data = data["verdict"]
    return Counterexample(
        adversary=adversary_from_jsonable(data["adversary"]),
        spec=run_spec_from_jsonable(data["run_spec"]),
        verdict=Verdict(
            cell_id=verdict_data["cell_id"],
            failed=verdict_data["failed"],
            reasons=tuple(verdict_data["reasons"]),
            throughput=verdict_data["throughput"],
            throughput_fraction=verdict_data["throughput_fraction"],
            reference=verdict_data["reference"],
        ),
        metrics=dict(data["metrics"]),
    )


def archive_counterexamples(counterexamples: List[Counterexample],
                            directory) -> List[Path]:
    """Write each counterexample to ``directory``; return the paths written.

    Deterministic: the same counterexamples produce byte-identical files
    regardless of when or where the campaign ran.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for counterexample in counterexamples:
        path = directory / counterexample.file_name()
        path.write_text(canonical_json(counterexample.to_jsonable()) + "\n",
                        encoding="utf-8")
        paths.append(path)
    return paths


def load_counterexample(path) -> Counterexample:
    """Load one archived counterexample document (inf/nan metrics restored)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return counterexample_from_jsonable(_restore(data))


def corpus_paths(directory) -> List[Path]:
    """The archived documents under ``directory``, in sorted order."""
    return sorted(Path(directory).glob("*.json"))


def replay_counterexample(counterexample: Counterexample,
                          ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Re-run an archived cell; return ``(archived, fresh)`` metrics.

    The regression contract is bitwise: a caller asserts
    ``archived == fresh`` — any drift in the simulator, the schedules or the
    controllers that changes the trajectory of an archived failure is a
    test failure, not a silent re-interpretation of the corpus.
    """
    result = execute_run_spec(counterexample.spec)
    return dict(counterexample.metrics), dict(result.metrics)
