"""Tests for the statistics utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    BatchMeans,
    ObservationStats,
    P2Quantile,
    TimeWeightedStats,
    confidence_interval,
    required_observations,
)


class TestObservationStats:
    def test_empty_stats_are_zero(self):
        stats = ObservationStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.stddev == 0.0

    def test_single_observation(self):
        stats = ObservationStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0

    def test_mean_and_variance_match_numpy(self):
        values = [3.1, -2.0, 7.5, 0.0, 11.2, 4.4]
        stats = ObservationStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))
        assert stats.total == pytest.approx(sum(values))

    def test_merge_equivalent_to_combined(self):
        left_values = [1.0, 2.0, 3.0]
        right_values = [10.0, 20.0, 30.0, 40.0]
        left = ObservationStats()
        right = ObservationStats()
        for value in left_values:
            left.add(value)
        for value in right_values:
            right.add(value)
        left.merge(right)
        combined = left_values + right_values
        assert left.count == len(combined)
        assert left.mean == pytest.approx(np.mean(combined))
        assert left.variance == pytest.approx(np.var(combined, ddof=1))

    def test_merge_into_empty(self):
        left = ObservationStats()
        right = ObservationStats()
        right.add(4.0)
        right.add(6.0)
        left.merge(right)
        assert left.mean == pytest.approx(5.0)

    def test_merge_empty_is_noop(self):
        left = ObservationStats()
        left.add(1.0)
        left.merge(ObservationStats())
        assert left.count == 1

    def test_reset(self):
        stats = ObservationStats()
        stats.add(1.0)
        stats.reset()
        assert stats.count == 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_welford_matches_numpy_property(self, values):
        stats = ObservationStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-6)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)


class TestTimeWeightedStats:
    def test_constant_value(self):
        stats = TimeWeightedStats(0.0, 3.0)
        assert stats.mean(10.0) == pytest.approx(3.0)

    def test_step_function_average(self):
        stats = TimeWeightedStats(0.0, 0.0)
        stats.update(4.0, 10.0)   # value 0 for 4s, then 10
        assert stats.mean(8.0) == pytest.approx(5.0)

    def test_multiple_steps(self):
        stats = TimeWeightedStats(0.0, 1.0)
        stats.update(2.0, 3.0)
        stats.update(5.0, 0.0)
        # 1*2 + 3*3 + 0*5 over 10 seconds
        assert stats.mean(10.0) == pytest.approx(1.1)

    def test_non_monotone_time_raises(self):
        stats = TimeWeightedStats(5.0, 1.0)
        with pytest.raises(ValueError):
            stats.update(4.0, 2.0)

    def test_mean_before_last_update_raises(self):
        stats = TimeWeightedStats(0.0, 1.0)
        stats.update(5.0, 2.0)
        with pytest.raises(ValueError):
            stats.mean(4.0)

    def test_min_max_tracking(self):
        stats = TimeWeightedStats(0.0, 5.0)
        stats.update(1.0, 2.0)
        stats.update(2.0, 9.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_reset_restarts_window(self):
        stats = TimeWeightedStats(0.0, 10.0)
        stats.update(5.0, 0.0)
        stats.reset(5.0)
        assert stats.mean(10.0) == pytest.approx(0.0)
        assert stats.current == 0.0

    def test_zero_horizon_returns_current(self):
        stats = TimeWeightedStats(2.0, 7.0)
        assert stats.mean(2.0) == 7.0

    @given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=10.0),
                              st.floats(min_value=-100, max_value=100)),
                    min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_time_weighted_mean_within_bounds_property(self, steps):
        stats = TimeWeightedStats(0.0, 0.0)
        now = 0.0
        values = [0.0]
        for delta, value in steps:
            now += delta
            stats.update(now, value)
            values.append(value)
        end = now + 1.0
        mean = stats.mean(end)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestP2Quantile:
    def test_probability_must_be_in_open_interval(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(bad)

    def test_empty_estimate_is_zero(self):
        assert P2Quantile(0.95).value == 0.0
        assert P2Quantile(0.95).count == 0

    def test_small_samples_are_exact(self):
        # below five observations the markers are the raw sorted sample, so
        # the estimate is the exact interpolated sample quantile
        estimator = P2Quantile(0.5)
        for value in (9.0, 1.0, 5.0):
            estimator.add(value)
        assert estimator.value == pytest.approx(5.0)
        estimator.add(7.0)
        assert estimator.value == pytest.approx(6.0)  # median of 1,5,7,9

    def test_converges_on_uniform_sample(self):
        rng = np.random.default_rng(7)
        estimator = P2Quantile(0.95)
        values = rng.uniform(0.0, 100.0, size=20_000)
        for value in values:
            estimator.add(float(value))
        exact = float(np.quantile(values, 0.95))
        assert estimator.value == pytest.approx(exact, rel=0.02)

    def test_converges_on_heavy_tailed_sample(self):
        rng = np.random.default_rng(11)
        estimator = P2Quantile(0.99)
        values = rng.pareto(2.0, size=50_000)
        for value in values:
            estimator.add(float(value))
        exact = float(np.quantile(values, 0.99))
        assert estimator.value == pytest.approx(exact, rel=0.05)

    def test_deterministic_replay(self):
        # the estimate is a pure function of the observation sequence —
        # the property the cross-executor golden assertions rely on
        rng = np.random.default_rng(3)
        values = [float(v) for v in rng.exponential(2.0, size=500)]
        first = P2Quantile(0.95)
        second = P2Quantile(0.95)
        for value in values:
            first.add(value)
        for value in values:
            second.add(value)
        assert first.value == second.value

    def test_reset_forgets_observations(self):
        estimator = P2Quantile(0.9)
        for value in range(100):
            estimator.add(float(value))
        estimator.reset()
        assert estimator.count == 0
        assert estimator.value == 0.0
        assert estimator.probability == 0.9

    def test_constant_stream(self):
        estimator = P2Quantile(0.99)
        for _ in range(50):
            estimator.add(4.2)
        assert estimator.value == pytest.approx(4.2)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_estimate_stays_within_observed_range(self, values):
        estimator = P2Quantile(0.95)
        for value in values:
            estimator.add(value)
        assert min(values) - 1e-9 <= estimator.value <= max(values) + 1e-9


class TestBatchMeans:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchMeans(batch_size=0)

    def test_batches_close_at_the_right_size(self):
        batches = BatchMeans(batch_size=3)
        for value in range(9):
            batches.add(float(value))
        assert batches.batch_count == 3
        assert batches.mean == pytest.approx(4.0)

    def test_half_width_infinite_with_few_batches(self):
        batches = BatchMeans(batch_size=5)
        for value in range(5):
            batches.add(float(value))
        assert batches.half_width() == math.inf

    def test_half_width_shrinks_with_more_data(self):
        rng = np.random.default_rng(0)
        small = BatchMeans(batch_size=10)
        large = BatchMeans(batch_size=10)
        for value in rng.normal(10, 2, size=100):
            small.add(float(value))
        for value in rng.normal(10, 2, size=2000):
            large.add(float(value))
        assert large.half_width() < small.half_width()


class TestConfidenceInterval:
    def test_needs_two_samples(self):
        assert confidence_interval([1.0]) == math.inf

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    def test_identical_samples_zero_width(self):
        assert confidence_interval([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_higher_confidence_wider_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert confidence_interval(samples, 0.99) > confidence_interval(samples, 0.90)

    def test_matches_scipy_t_interval(self):
        from scipy import stats as scipy_stats

        samples = [2.1, 2.9, 3.4, 1.8, 2.6, 3.1, 2.2]
        half_width = confidence_interval(samples, 0.95)
        mean = np.mean(samples)
        sem = scipy_stats.sem(samples)
        low, high = scipy_stats.t.interval(0.95, len(samples) - 1, loc=mean, scale=sem)
        assert half_width == pytest.approx((high - low) / 2, rel=1e-6)


class TestRequiredObservations:
    def test_hundreds_of_departures_guideline(self):
        # the paper's guidance: coefficient of variation around one and a
        # 10% accuracy target need a few hundred departures
        needed = required_observations(1.0, 0.1, 0.95)
        assert 300 <= needed <= 500

    def test_tighter_accuracy_needs_more(self):
        assert required_observations(1.0, 0.05) > required_observations(1.0, 0.1)

    def test_lower_variability_needs_fewer(self):
        assert required_observations(0.3, 0.1) < required_observations(1.0, 0.1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            required_observations(-1.0, 0.1)
        with pytest.raises(ValueError):
            required_observations(1.0, 0.0)
        with pytest.raises(ValueError):
            required_observations(1.0, 0.1, confidence=2.0)

    def test_at_least_one(self):
        assert required_observations(0.0, 0.5) >= 1
