"""Figure 13: trajectory of the Incremental Steps controller under a jump.

The workload changes abruptly mid-run (the number of accesses per
transaction jumps), which moves the position of the throughput optimum.
Figure 13 shows the IS threshold trajectory: it reacts quickly but adjusts
to the new optimum far less accurately than PA (Figure 14).

The benchmark runs the full discrete-event system with the contention-bound
preset, records the (time, n*) trajectory together with the analytic
reference optimum, prints the Figure 13 series and reports the tracking
metrics that the Figure 14 benchmark compares against.
"""

from conftest import run_once

from repro.core.incremental_steps import IncrementalStepsController
from repro.experiments.config import contention_bound_params
from repro.experiments.dynamic import jump_scenario, run_tracking_experiment
from repro.experiments.report import format_series_table
from repro.experiments.tracking import compute_tracking_metrics

#: the jump scenario shared by the Figure 13 and Figure 14 benchmarks:
#: transaction size jumps from 4 to 16 accesses halfway through the run,
#: which moves the optimum MPL upward by roughly a factor of two
JUMP_BEFORE = 4
JUMP_AFTER = 16


def build_scenario(scale):
    return jump_scenario("accesses", JUMP_BEFORE, JUMP_AFTER,
                         jump_time=scale.tracking_horizon / 2.0)


def tracking_params():
    return contention_bound_params(seed=17)


def test_fig13_incremental_steps_jump_trajectory(benchmark, scale):
    params = tracking_params()
    scenario = build_scenario(scale)
    controller = IncrementalStepsController(
        initial_limit=30, beta=0.5, gamma=8, delta=20, min_step=4.0,
        lower_bound=4, upper_bound=params.n_terminals)

    def experiment():
        return run_tracking_experiment(controller, scenario, base_params=params, scale=scale)

    result = run_once(benchmark, experiment)
    metrics = compute_tracking_metrics(
        result, disturbance_time=scale.tracking_horizon / 2.0,
        evaluate_after=scale.tracking_horizon * 0.15)

    print()
    print("Figure 13 — IS threshold trajectory under an abrupt workload change")
    print(format_series_table(result, every=max(1, len(result.trace) // 25)))
    print(f"mean |n* - n_opt| = {metrics.mean_absolute_error:.1f}, "
          f"settling time = {metrics.settling_time:.1f}s, "
          f"throughput ratio = {metrics.throughput_ratio:.2f}")

    benchmark.extra_info["threshold_series"] = [
        (round(t, 2), round(limit, 1)) for t, limit in result.threshold_series()]
    benchmark.extra_info["reference_series"] = [
        (round(t, 2), round(opt, 1)) for t, opt in result.reference_series()]
    benchmark.extra_info["mean_abs_error"] = round(metrics.mean_absolute_error, 2)
    benchmark.extra_info["settling_time"] = metrics.settling_time
    benchmark.extra_info["total_commits"] = result.total_commits

    # the trajectory exists, stays within bounds, and work keeps flowing
    assert len(result.trace) >= 10
    assert all(4 <= limit <= params.n_terminals for limit in result.trace.limits)
    assert result.total_commits > 0
    # the reference optimum genuinely moved at the jump
    assert max(result.reference_optima) > 1.3 * min(result.reference_optima)
