"""Content-addressed, on-disk cache of cell results.

The key is :func:`~repro.runner.specs.run_spec_fingerprint` — a
blake2b-256 hex digest of the resolved :class:`~repro.runner.specs.RunSpec`
canonical JSON (:mod:`repro.canonical`), salted with
:data:`~repro.runner.specs.SPEC_FINGERPRINT_VERSION` and embedding the
spec encoder's own ``format`` tag, so any change to either encoding
invalidates cleanly by producing different keys.  The value is the
pickled :class:`~repro.runner.cells.CellResult` the runner produced.

Soundness rests entirely on the repository's determinism contract: a
cell's result is a pure function of its spec (every run seeds its own
:class:`~repro.sim.random_streams.RandomStreams`), so equal fingerprints
imply byte-identical results — serving from the cache is not an
approximation, it is the same answer.  ``tests/svc/test_cache_soundness.py``
pins this end to end against the golden trajectory fixtures.

Layout and durability:

* entries live at ``<directory>/v<CACHE_FORMAT>/<fingerprint>.pkl`` — the
  format-versioned subdirectory means a breaking change to the entry
  encoding can never misread old files, it simply starts a fresh tree;
* writes are atomic (unique temp file + ``os.replace``), so a cache
  directory shared by concurrent fills, or a service killed mid-write,
  can never yield a torn entry;
* unreadable or truncated entries are treated as misses (and re-filled
  on the next store), never as errors — the cache is an accelerator, not
  a dependency.

The executor-facing seam (:meth:`ResultCache.lookup` /
:meth:`ResultCache.store`) only engages for the canonical cell entry
point :func:`~repro.runner.cells.execute_run_spec` mapped over
:class:`~repro.runner.specs.RunSpec` items; any other function or item
type bypasses the cache entirely, so a cache-backed executor stays a
correct general-purpose executor.  Specs the JSON encoder refuses
(ad-hoc callables, interval tuners) are uncacheable and always simulate.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
from pathlib import Path
from typing import Optional

from repro.obs import telemetry
from repro.runner.cells import execute_run_spec
from repro.runner.specs import RunSpec, run_spec_fingerprint

logger = logging.getLogger("repro.svc.cache")

#: bump when the *entry* encoding (the pickled value layout) changes; the
#: key encoding is versioned separately by SPEC_FINGERPRINT_VERSION and
#: RUN_SPEC_FORMAT, which are hashed into every fingerprint
CACHE_FORMAT = 1


class ResultCache:
    """On-disk content-addressed store of :class:`CellResult` values.

    ``get``/``put`` are the spec-keyed primitives; ``lookup``/``store``
    are the guarded seam :class:`~repro.dist.coordinator.DistributedExecutor`
    calls with its generic ``(function, item)`` pairs.  All methods are
    thread-safe (the coordinator fills from per-worker serving threads)
    and a single directory may be shared by any number of processes —
    atomic writes make concurrent fills of the same key converge on one
    valid entry.
    """

    def __init__(self, directory):
        self._root = Path(directory)
        self._dir = self._root / f"v{CACHE_FORMAT}"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._uncacheable = 0

    # ------------------------------------------------------------------
    # spec-keyed primitives
    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> Optional[str]:
        """The cache key of ``spec``, or None if it cannot be encoded."""
        try:
            return run_spec_fingerprint(spec)
        except ValueError:
            return None

    def path_for(self, key: str) -> Path:
        """The on-disk entry path of a fingerprint."""
        return self._dir / f"{key}.pkl"

    def get(self, spec: RunSpec):
        """The cached result of ``spec``, or None on a miss.

        Counts a hit or a miss and emits the matching telemetry span
        (``cache_hit`` / ``cache_miss``).  Uncacheable specs count
        separately and emit nothing — they are invisible to the hit-rate.
        """
        key = self.key_for(spec)
        if key is None:
            with self._lock:
                self._uncacheable += 1
            return None
        result = self._read(key)
        if result is not None:
            with self._lock:
                self._hits += 1
            telemetry.emit("cache_hit", key=key, cell_id=spec.cell_id)
            return result
        with self._lock:
            self._misses += 1
        telemetry.emit("cache_miss", key=key, cell_id=spec.cell_id)
        return None

    def put(self, spec: RunSpec, result) -> Optional[str]:
        """Store ``result`` under ``spec``'s key; returns the key used.

        Atomic: a concurrent reader sees either no entry or a complete
        one.  Uncacheable specs are silently skipped (returns None).
        """
        key = self.key_for(spec)
        if key is None:
            return None
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError as exc:  # pragma: no cover - disk-full etc.
            logger.warning("cache store of %s failed: %s", key, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
        with self._lock:
            self._stores += 1
        return key

    def _read(self, key: str):
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # torn/corrupt entries degrade to misses; the next fill heals
            logger.warning("cache entry %s unreadable (%s); treating as miss",
                           key, exc)
            return None

    # ------------------------------------------------------------------
    # the executor seam
    # ------------------------------------------------------------------
    def lookup(self, function, item):
        """Coordinator-side read: None unless this is a cacheable cell hit."""
        if function is not execute_run_spec or not isinstance(item, RunSpec):
            return None
        return self.get(item)

    def store(self, function, item, result) -> None:
        """Coordinator-side fill after a worker returns a fresh result."""
        if function is not execute_run_spec or not isinstance(item, RunSpec):
            return
        self.put(item, result)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The cache root (the versioned subdirectory lives under it)."""
        return self._root

    def entries(self) -> int:
        """Number of complete entries currently on disk."""
        return sum(1 for _ in self._dir.glob("*.pkl"))

    def stats(self) -> dict:
        """Counters since this handle was opened, plus the on-disk size."""
        with self._lock:
            return {
                "format": CACHE_FORMAT,
                "directory": str(self._root),
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "uncacheable": self._uncacheable,
                "entries": self.entries(),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self._root)!r}, entries={self.entries()})"
