"""Base class shared by all load controllers.

A load controller solves the "dynamic optimum search problem" of Section 3:
given the series of realized (load, performance) pairs from the past, choose
the next upper bound ``n*`` for the concurrency level so that the system
operates at the ridge of the load/performance mountain as it moves over
time.

Controllers are deliberately plant-agnostic: they see only
:class:`~repro.core.types.IntervalMeasurement` records and return the next
threshold.  Static lower and upper bounds (Section 5.1 recommends them to
keep the simple IS algorithm recoverable) are enforced here so individual
controllers cannot forget them.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.core.types import IntervalMeasurement

#: a performance index maps an interval measurement to the scalar the
#: controller maximises (Section 6: throughput is the default, but other
#: quantities with a similar unimodal shape are eligible)
PerformanceIndex = Callable[[IntervalMeasurement], float]


def throughput_index(measurement: IntervalMeasurement) -> float:
    """The default performance index: committed transactions per second."""
    return measurement.throughput


def effective_utilisation_index(measurement: IntervalMeasurement) -> float:
    """Useful-work share: commits per started execution, scaled by throughput.

    Section 6 discusses alternative performance measures; this one rewards
    both getting work done and not wasting executions on restarts.
    """
    return measurement.throughput * measurement.effective_utilisation_proxy


def inverse_response_time_index(measurement: IntervalMeasurement) -> float:
    """Responsiveness: the reciprocal of the mean response time.

    Falls back to the throughput when no transaction committed during the
    interval (the reciprocal would be undefined).
    """
    if measurement.mean_response_time <= 0.0:
        return measurement.throughput
    return 1.0 / measurement.mean_response_time


class LoadController(ABC):
    """Abstract adaptive (or static) multiprogramming-level controller."""

    #: short name used in reports and benchmark tables
    name: str = "abstract"

    def __init__(self, initial_limit: float, lower_bound: float = 1.0,
                 upper_bound: float = math.inf,
                 performance_index: Optional[PerformanceIndex] = None):
        if lower_bound < 1.0:
            raise ValueError(f"lower_bound must be >= 1, got {lower_bound}")
        if upper_bound < lower_bound:
            raise ValueError(
                f"upper_bound ({upper_bound}) must be >= lower_bound ({lower_bound})"
            )
        self.lower_bound = float(lower_bound)
        self.upper_bound = float(upper_bound)
        self.performance_index = performance_index or throughput_index
        self._initial_limit = self.clamp(float(initial_limit))
        self.current_limit = self._initial_limit
        self.updates = 0

    # ------------------------------------------------------------------
    @property
    def initial_limit(self) -> float:
        """Threshold in effect before the first measurement arrives."""
        return self._initial_limit

    def clamp(self, limit: float) -> float:
        """Force ``limit`` into the static [lower_bound, upper_bound] band."""
        if math.isnan(limit):
            return self.lower_bound
        return min(self.upper_bound, max(self.lower_bound, limit))

    def performance_of(self, measurement: IntervalMeasurement) -> float:
        """The scalar performance value this controller maximises."""
        return self.performance_index(measurement)

    # ------------------------------------------------------------------
    def update(self, measurement: IntervalMeasurement) -> float:
        """Consume one interval measurement and return the next threshold."""
        proposed = self._propose(measurement)
        self.current_limit = self.clamp(proposed)
        self.updates += 1
        return self.current_limit

    @abstractmethod
    def _propose(self, measurement: IntervalMeasurement) -> float:
        """Controller-specific update rule (before clamping)."""

    def reset(self) -> None:
        """Return to the initial state (between experiment repetitions)."""
        self.current_limit = self._initial_limit
        self.updates = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} limit={self.current_limit:.1f}>"
