"""Scheme-aware analytic references: which model explains which scheme.

The paper's load-control argument leans on *two* analytic traditions
(Section 1): Tay's mean-value blocking model for two-phase locking and the
optimistic fixed-point models (Dan et al.; Thomasian & Ryu) for
certification schemes.  The experiment layer used to compare every series
against the OCC fixed point regardless of the scheme that produced it;
with the concurrency control registry carrying a *family* per kind
(:func:`repro.cc.registry.cc_family`), the reference can follow the
scheme:

* **locking** family (``two_phase_locking``, ``wound_wait``, ``wait_die``)
  → :class:`~repro.analytic.tay.TayThroughputModel` (Tay's quadratic
  blocking with a calibrated waiting share, adapted to absolute
  throughput);
* **optimistic** family (``timestamp_cert``, ``occ_forward``), the
  **multiversion** family (``snapshot_isolation`` — first-committer-wins
  certification is an optimistic validation over write sets, so the OCC
  fixed point remains the right first-order theory) and runs without an
  explicit scheme → :class:`~repro.analytic.occ.OccModel`.

:func:`reference_model_for` is the single decision point; the runner's
sweep converters, the scenario goldens and the report tables all label
series with the name it returns, so a reader of any table knows which
first-order theory the ``model_reference`` column came from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.analytic.occ import OccModel
from repro.analytic.tay import TayThroughputModel
from repro.cc.registry import CCSpec, cc_family

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.tp.params import SystemParams, WorkloadParams

#: names reported for the two reference models
TAY_REFERENCE = "TayModel"
OCC_REFERENCE = "OccModel"


def reference_family(cc: Optional[object]) -> str:
    """The analytic family of a cell's ``cc`` field.

    ``None`` (the system default, timestamp certification) and ad-hoc
    factories — whose scheme class the runner cannot know — fall back to
    the optimistic reference, matching the historical behaviour.
    """
    if isinstance(cc, CCSpec):
        return cc_family(cc.kind)
    return "optimistic"


def reference_model_name(cc: Optional[object]) -> str:
    """The reported name of the reference model for a cell's scheme."""
    return TAY_REFERENCE if reference_family(cc) == "locking" else OCC_REFERENCE


def reference_model_for(params: "SystemParams",
                        cc: Optional[object],
                        waiting_share: Optional[float] = None,
                        ) -> Tuple[str, object]:
    """Build the scheme-aware analytic reference for one cell.

    Returns ``(name, model)`` where ``model`` offers ``throughput(mpl)``
    and ``optimal_mpl()`` — the interface both
    :class:`~repro.analytic.occ.OccModel` and
    :class:`~repro.analytic.tay.TayThroughputModel` share.
    ``waiting_share`` calibrates the Tay reference from *measured*
    lock-wait statistics (see :func:`repro.obs.calibration.measured_wait_share`);
    ``None`` keeps the model's default and is ignored by the optimistic
    reference, which has no such knob.
    """
    if reference_family(cc) == "locking":
        if waiting_share is not None:
            return TAY_REFERENCE, TayThroughputModel(
                params, waiting_share=waiting_share)
        return TAY_REFERENCE, TayThroughputModel(params)
    return OCC_REFERENCE, OccModel(params)


def reference_optimum(params: "SystemParams",
                      cc: Optional[object] = None,
                      workload: Optional["WorkloadParams"] = None,
                      ) -> Tuple[str, float, float]:
    """The scheme-aware analytic optimum for one cell's configuration.

    Returns ``(name, optimal_mpl, peak_throughput)`` — the model name that
    :func:`reference_model_for` would report, the multiprogramming level the
    model considers optimal, and the throughput at that level.  ``workload``
    overrides the workload parameters the model sees (used by cells whose
    effective workload differs from ``params.workload``: mixed-class cells
    score against the expectation of their mix, tracking cells against the
    parameters in effect after the disturbance).

    This is the score oracle seam of the workload fuzzer: a controller "fails
    to rescue" a run when its measured throughput stays far below the peak
    this function predicts for the run's own configuration.
    """
    if reference_family(cc) == "locking":
        name, model = TAY_REFERENCE, TayThroughputModel(params, workload=workload)
    else:
        name, model = OCC_REFERENCE, OccModel(params, workload=workload)
    optimal = float(model.optimal_mpl())
    return name, optimal, float(model.throughput(optimal))
