"""Stationary experiments: the load/throughput curves of Figures 1 and 12.

Two questions are answered per offered load ``N`` (number of terminals):

* *without control* -- what throughput does the system reach when every
  arriving transaction is admitted immediately?  (Figure 1 / the "without
  control" curve of Figure 12: throughput rises, saturates, then drops.)
* *with control* -- what throughput does the same system reach when a load
  controller (IS or PA) adjusts the admission threshold?  (The "with
  control" curve of Figure 12: throughput stays at the optimum level for
  every offered load.)

:func:`run_stationary_point` runs one (offered load, controller) cell;
:func:`sweep_offered_load` produces the whole curve.  The sweep builds one
:class:`~repro.runner.specs.RunSpec` per offered load and delegates
execution to :mod:`repro.runner`, so ``workers=N`` fans the points out over
processes and ``replicates=R`` turns each point into a mean with a
confidence interval — without changing the single-replicate results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cc.registry import resolve_cc
from repro.core.controller import LoadController
from repro.core.measurement import MeasurementProcess
from repro.experiments.config import ExperimentScale, default_system_params
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams
from repro.tp.params import SystemParams
from repro.tp.system import TransactionSystem
from repro.tp.workload import MixedClassWorkload, TransactionClassSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.arrivals import ArrivalProcess

#: a factory producing a fresh controller for each run (controllers keep state)
ControllerFactory = Callable[[SystemParams], LoadController]


@dataclass(frozen=True)
class StationaryPoint:
    """Result of one stationary run at a fixed offered load."""

    #: offered load: number of terminals
    offered_load: int
    #: committed transactions per second over the measured horizon
    throughput: float
    #: mean submission-to-commit latency
    mean_response_time: float
    #: time-averaged number of admitted transactions
    mean_concurrency: float
    #: abandoned executions per commit
    restart_ratio: float
    #: CPU utilisation over the measured horizon
    cpu_utilisation: float
    #: threshold in effect at the end of the run (inf without control)
    final_limit: float
    #: commits observed (statistical weight of the point)
    commits: int
    #: abandoned executions by reason (:class:`~repro.cc.base.AbortReason`
    #: values as strings); lets restart-heavy schemes (wound-wait) be told
    #: apart from deadlock-victim schemes at the sweep level
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    #: weak-isolation anomalies found in the committed history, by kind
    #: (:data:`~repro.cc.history.ANOMALY_KINDS`); populated only when the
    #: run was asked for isolation diagnostics, empty otherwise
    anomalies: Dict[str, int] = field(default_factory=dict)
    #: in-sim probe metrics (``probe_<name>`` keys, already prefixed);
    #: populated only when the run opted into probes, empty otherwise —
    #: see :mod:`repro.obs.probes`
    probe_metrics: Dict[str, float] = field(default_factory=dict)
    #: streaming 95th/99th-percentile submission-to-commit latency over the
    #: measured window (P-squared estimates; 0 when nothing committed)
    p95_response_time: float = 0.0
    p99_response_time: float = 0.0
    #: arrivals rejected outright by tenant queue quotas (open runs only)
    shed: int = 0
    #: per-tenant SLO metrics, keyed ``tenant_<metric>_<class name>``;
    #: populated only for open/partly-open runs on a mixed-class workload
    #: (the tenant key set is enumerated from the *spec*, so the schema is
    #: a pure function of the cell spec, never of the trajectory)
    tenant_metrics: Dict[str, float] = field(default_factory=dict)

    def as_tuple(self) -> Tuple[float, float]:
        """The (load, throughput) pair used by the curve helpers."""
        return (float(self.offered_load), self.throughput)


@dataclass
class StationarySweep:
    """A whole load/throughput curve plus the analytic reference."""

    label: str
    points: List[StationaryPoint] = field(default_factory=list)
    #: analytic (model) throughput at each offered load, for comparison
    model_reference: Dict[int, float] = field(default_factory=dict)
    #: which analytic model produced :attr:`model_reference` ("TayModel"
    #: for locking-family schemes, "OccModel" for optimistic ones; empty
    #: when no reference was requested)
    model_reference_name: str = ""
    #: offered load -> replicate aggregate (mean ± CI per metric); populated
    #: by replicated runs, empty for single-replicate sweeps
    aggregates: Dict[int, object] = field(default_factory=dict)

    def curve(self) -> List[Tuple[float, float]]:
        """The (load, throughput) series in offered-load order."""
        return [point.as_tuple() for point in sorted(self.points, key=lambda p: p.offered_load)]

    def peak(self) -> StationaryPoint:
        """The point with the highest throughput."""
        if not self.points:
            raise ValueError("the sweep contains no points")
        return max(self.points, key=lambda point: point.throughput)

    def throughput_at(self, offered_load: int) -> float:
        """Throughput measured at a specific offered load."""
        for point in self.points:
            if point.offered_load == offered_load:
                return point.throughput
        raise KeyError(f"no point at offered load {offered_load}")


def run_stationary_point(params: SystemParams,
                         controller_factory: Optional[ControllerFactory] = None,
                         horizon: float = 30.0,
                         warmup: float = 5.0,
                         measurement_interval: float = 2.0,
                         streams: Optional[RandomStreams] = None,
                         workload_classes: Optional[Sequence[TransactionClassSpec]] = None,
                         cc: Optional[object] = None,
                         isolation_diagnostics: bool = False,
                         probes: Optional[Sequence[str]] = None,
                         arrivals: Optional["ArrivalProcess"] = None
                         ) -> StationaryPoint:
    """Run one stationary simulation and summarise it.

    With ``controller_factory=None`` the system runs uncontrolled (every
    transaction admitted immediately); otherwise the factory's controller is
    attached with the given measurement interval.  ``streams`` overrides the
    run's random streams (the runner passes a replicate-derived family here;
    by default the streams are seeded from ``params.seed``).
    ``workload_classes`` switches the run onto a
    :class:`~repro.tp.workload.MixedClassWorkload` with the given class mix
    instead of the single-class workload of ``params.workload``.
    ``cc`` selects the concurrency control scheme — ``None`` (the default
    timestamp certification), a :class:`~repro.cc.registry.CCSpec`, or a
    factory ``sim -> ConcurrencyControl``; the scheme is built fresh for
    this run, bound to the run's simulator.
    ``isolation_diagnostics=True`` additionally records the committed
    history through the isolation oracle's trajectory-preserving wrapper
    (:class:`~repro.cc.history.RecordingConcurrencyControl`) and fills
    :attr:`StationaryPoint.anomalies` with the per-kind counts of
    :func:`~repro.cc.history.classify_anomalies`.
    ``probes`` names in-sim probes (:data:`~repro.obs.probes.PROBE_NAMES`)
    to attach to the run; their measured-window readouts fill
    :attr:`StationaryPoint.probe_metrics` as ``probe_<name>`` keys.  The
    probe set is trajectory-preserving: all other fields of the returned
    point are unchanged by probing.
    ``arrivals`` selects the arrival model (see :mod:`repro.tp.arrivals`):
    ``None``/closed keeps the paper's terminal processes; an open or
    partly-open process replaces them with an arrival source.  When the
    ``workload_classes`` carry tenant quotas and the run is open, the gate
    enforces them and the returned point's SLO fields
    (:attr:`StationaryPoint.p95_response_time`, ``p99_…``, ``shed`` and the
    per-tenant :attr:`StationaryPoint.tenant_metrics`) describe the outcome.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    streams = streams or RandomStreams(params.seed)
    workload = None
    if workload_classes is not None:
        workload = MixedClassWorkload(params.workload, streams, workload_classes)
    sim = Simulator()
    gate = None
    if arrivals is not None and workload_classes is not None:
        from repro.core.admission import AdmissionGate

        quotas = {cls.name: cls.admission_quota for cls in workload_classes
                  if cls.admission_quota is not None}
        queue_quotas = {cls.name: cls.queue_quota for cls in workload_classes
                        if cls.queue_quota is not None}
        if quotas or queue_quotas:
            gate = AdmissionGate(sim, tenant_quotas=quotas or None,
                                 tenant_queue_quotas=queue_quotas or None)
    scheme = resolve_cc(cc, sim)
    recorder = None
    if isolation_diagnostics:
        from repro.cc.history import HistoryRecorder, RecordingConcurrencyControl
        from repro.cc.timestamp_cert import TimestampCertification

        recorder = HistoryRecorder()
        scheme = RecordingConcurrencyControl(
            scheme if scheme is not None else TimestampCertification(sim),
            recorder)
    probe_set = None
    if probes is not None:
        from repro.obs.probes import ProbeSet

        probe_set = ProbeSet(probes, interval=measurement_interval)
    system = TransactionSystem(params, sim=sim, streams=streams, workload=workload,
                               cc=scheme, gate=gate, probes=probe_set,
                               arrivals=arrivals)
    measurement: Optional[MeasurementProcess] = None
    if controller_factory is not None:
        controller = controller_factory(params)
        measurement = system.attach_controller(
            controller, interval=measurement_interval, warmup=min(warmup, 1.0)
        )
    system.start()
    system.run(until=warmup)
    # discard the warm-up transient; the resets bind the measured windows of
    # the rate metrics (metrics.measured_from, the resource integrals) to now
    system.metrics.reset()
    system.cpus.reset_statistics()
    system.gate.reset_statistics()
    if probe_set is not None:
        probe_set.reset(system.sim.now)
    system.run(until=warmup + horizon)

    anomalies: Dict[str, int] = {}
    if recorder is not None:
        from repro.cc.history import anomaly_counts

        anomalies = anomaly_counts(recorder.committed)

    metrics = system.metrics
    tenant_metrics: Dict[str, float] = {}
    if arrivals is not None and workload_classes is not None:
        # the key set is enumerated from the spec's class names (never from
        # the tenants that happened to commit), so the metric schema is a
        # pure function of the cell spec
        for cls in workload_classes:
            name = cls.name
            tenant_metrics[f"tenant_commits_{name}"] = float(
                metrics.commits_by_tenant.get(name, 0))
            tenant_metrics[f"tenant_shed_{name}"] = float(
                metrics.shed_by_tenant.get(name, 0))
            p95 = metrics.tenant_response_p95.get(name)
            p99 = metrics.tenant_response_p99.get(name)
            p95_value = p95.value if p95 is not None else 0.0
            p99_value = p99.value if p99 is not None else 0.0
            tenant_metrics[f"tenant_p95_response_time_{name}"] = p95_value
            # independent P² estimates can cross slightly under heavy
            # tails; report a monotone pair (same clamp as RunMetrics)
            tenant_metrics[f"tenant_p99_response_time_{name}"] = max(
                p99_value, p95_value)
    return StationaryPoint(
        offered_load=params.n_terminals,
        throughput=metrics.throughput(),
        mean_response_time=metrics.mean_response_time(),
        mean_concurrency=system.gate.mean_load(),
        restart_ratio=metrics.restart_ratio,
        cpu_utilisation=system.cpus.utilisation(),
        final_limit=system.gate.limit,
        commits=metrics.commits,
        aborts_by_reason={reason.value: count for reason, count
                          in metrics.aborts_by_reason.items()},
        anomalies=anomalies,
        probe_metrics=(probe_set.metrics(system.sim.now)
                       if probe_set is not None else {}),
        p95_response_time=metrics.p95_response_time,
        p99_response_time=metrics.p99_response_time,
        shed=metrics.shed,
        tenant_metrics=tenant_metrics,
    )


def stationary_sweep_spec(base_params: Optional[SystemParams] = None,
                          controller: Optional[object] = None,
                          scale: Optional[ExperimentScale] = None,
                          label: Optional[str] = None,
                          name: str = "stationary",
                          workload_classes: Optional[Sequence[TransactionClassSpec]] = None,
                          cc: Optional[object] = None,
                          scheme_diagnostics: bool = False,
                          isolation_diagnostics: bool = False,
                          probes: Optional[Sequence[str]] = None,
                          arrivals: Optional[object] = None):
    """Build the runner :class:`~repro.runner.specs.SweepSpec` of one curve.

    ``controller`` may be ``None`` (uncontrolled), a
    :class:`~repro.runner.specs.ControllerSpec`, or a picklable factory
    ``params -> LoadController``.  ``workload_classes`` puts every cell on
    a mixed-class workload (see :func:`run_stationary_point`); ``cc`` puts
    every cell on the named concurrency control scheme (``None`` = the
    default timestamp certification, or a
    :class:`~repro.cc.registry.CCSpec` / factory).
    ``scheme_diagnostics=True`` makes every cell additionally report its
    per-reason abort counts (``aborts_<reason>`` metrics) and the name of
    its scheme-aware analytic reference — see
    :attr:`~repro.runner.specs.RunSpec.scheme_diagnostics`.
    ``isolation_diagnostics=True`` records every cell's committed history
    through the isolation oracle and reports per-kind anomaly counts
    (``anomalies_<kind>`` metrics) — see
    :attr:`~repro.runner.specs.RunSpec.isolation_diagnostics`.
    ``probes`` attaches the named in-sim probes to every cell
    (``probe_<name>`` metrics) — see
    :attr:`~repro.runner.specs.RunSpec.probes`.
    ``arrivals`` selects the arrival model — an
    :class:`~repro.tp.arrivals.ArrivalProcess` shared by every cell, or a
    callable ``offered_load -> ArrivalProcess`` so open sweeps can scale
    the arrival rate along the offered-load axis the way closed sweeps
    scale the terminal count.
    """
    from repro.runner.specs import KIND_STATIONARY, RunSpec, SweepSpec
    from repro.tp.arrivals import ArrivalProcess

    def arrivals_for(offered_load: int):
        if arrivals is None or isinstance(arrivals, ArrivalProcess):
            return arrivals
        return arrivals(offered_load)

    scale = scale or ExperimentScale.benchmark()
    base_params = base_params or default_system_params()
    if label is None:
        label = "without control" if controller is None else "with control"
    classes = tuple(workload_classes) if workload_classes is not None else None
    cells = tuple(
        RunSpec(
            kind=KIND_STATIONARY,
            cell_id=f"{name}/{label}/N={int(offered_load)}",
            params=base_params.with_changes(n_terminals=int(offered_load)),
            scale=scale,
            controller=controller,
            label=label,
            workload_classes=classes,
            cc=cc,
            scheme_diagnostics=scheme_diagnostics,
            isolation_diagnostics=isolation_diagnostics,
            probes=tuple(probes) if probes is not None else None,
            arrivals=arrivals_for(int(offered_load)),
        )
        for offered_load in scale.offered_loads
    )
    return SweepSpec(name=name, cells=cells)


def sweep_offered_load(base_params: Optional[SystemParams] = None,
                       controller_factory: Optional[ControllerFactory] = None,
                       scale: Optional[ExperimentScale] = None,
                       label: Optional[str] = None,
                       include_model_reference: bool = True,
                       workers: int = 0,
                       replicates: int = 1) -> StationarySweep:
    """Measure the load/throughput curve over the scale's offered loads.

    Execution is delegated to :mod:`repro.runner`: ``workers=N`` runs the
    points over ``N`` worker processes (0/1 = serial, same results bitwise),
    and ``replicates=R`` runs every point ``R`` times with independent
    replicate seeds, in which case the curve carries the replicate means and
    :attr:`StationarySweep.aggregates` the per-load mean ± CI summaries.

    With ``workers > 1`` the controller factory must be picklable (a
    module-level function or a :class:`~repro.runner.specs.ControllerSpec`);
    lambdas and closures work serially only.
    """
    from repro.runner.api import run_sweep, stationary_sweeps

    spec = stationary_sweep_spec(base_params, controller_factory, scale, label)
    result = run_sweep(spec, workers=workers, replicates=replicates)
    sweeps = stationary_sweeps(result, include_model_reference=include_model_reference)
    (sweep,) = sweeps.values()
    return sweep
