"""The isolation-level oracle: anomaly classification and level checks.

Two layers of evidence:

* **hand-built histories** pin each anomaly pattern the classifier names
  (write skew, lost update, long fork, non-repeatable read) and the level
  semantics of :func:`repro.cc.check_isolation` — including the tentpole
  case, a write-skew history that is *not* serializable yet passes the
  snapshot-isolation check;
* **randomized schedules** certify every registered scheme at its
  *declared* level (:func:`repro.cc.cc_level`): the five serializable
  schemes produce acyclic histories, snapshot isolation produces
  non-serializable histories whose only anomaly kind is write skew — and
  mislabeling it as serializable fails loudly.
"""

import pytest

from repro.cc import (
    ANOMALY_KINDS,
    ISOLATION_LEVELS,
    CCSpec,
    CommittedExecution,
    HistoryRecorder,
    RecordingConcurrencyControl,
    anomaly_counts,
    cc_kinds,
    cc_level,
    check_isolation,
    check_serializability,
    classify_anomalies,
    conflict_graph,
)
from repro.sim.engine import Simulator
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem


def committed(txn_id, reads=(), writes=(), commit=(0.0, 0)):
    """Hand-built history entry; reads are (item, time, seq, version)."""
    return CommittedExecution(
        txn_id=txn_id, reads=tuple(reads), writes=tuple(writes),
        commit_time=commit[0], commit_seq=commit[1])


def write_skew_history():
    """The canonical write skew: disjoint writes over crossed reads.

    T1 reads x and y (both at the initial version) and writes y; T2 reads
    x and y likewise and writes x.  Both commit — mutual rw
    anti-dependencies, a cycle no serial order satisfies, yet every read
    comes from one consistent snapshot and no update is lost.
    """
    return [
        committed(1, reads=[(10, 0.1, 1, None), (11, 0.2, 2, None)],
                  writes=[11], commit=(0.5, 5)),
        committed(2, reads=[(10, 0.3, 3, None), (11, 0.4, 4, None)],
                  writes=[10], commit=(0.6, 6)),
    ]


class TestTheTentpoleCase:
    """One history, three verdicts: the point of the level-aware oracle."""

    def test_write_skew_is_not_serializable(self):
        verdict = check_serializability(write_skew_history())
        assert not verdict.serializable
        assert set(verdict.cycle) == {1, 2}

    def test_write_skew_passes_the_snapshot_isolation_check(self):
        verdict = check_isolation(write_skew_history(), "snapshot_isolation")
        assert verdict.ok
        assert not verdict.serializable  # admitted, not explained away
        assert [a.kind for a in verdict.anomalies] == ["write_skew"]
        assert verdict.violations == ()

    def test_write_skew_fails_the_serializable_check(self):
        verdict = check_isolation(write_skew_history(), "serializable")
        assert not verdict.ok
        assert [a.kind for a in verdict.violations] == ["write_skew"]


class TestAnomalyClassifier:
    def test_write_skew_names_both_transactions_and_granules(self):
        (anomaly,) = classify_anomalies(write_skew_history())
        assert anomaly.kind == "write_skew"
        assert anomaly.transactions == (1, 2)
        assert anomaly.items == (10, 11)

    def test_lost_update_is_detected(self):
        # T2 read the initial version of granule 7, then overwrote T1's
        # committed update of it: T1's write is silently discarded
        history = [
            committed(1, reads=[(7, 0.1, 1, None)], writes=[7],
                      commit=(0.3, 3)),
            committed(2, reads=[(7, 0.2, 2, None)], writes=[7],
                      commit=(0.4, 4)),
        ]
        kinds = [a.kind for a in classify_anomalies(history)]
        assert kinds == ["lost_update"]
        (anomaly,) = classify_anomalies(history)
        assert anomaly.transactions == (1, 2)
        assert anomaly.items == (7,)
        # a lost update violates snapshot isolation, not just serializability
        assert not check_isolation(history, "snapshot_isolation")

    def test_first_writer_of_a_granule_loses_no_update(self):
        # same shape, but T2 read T1's version before overwriting: a plain
        # sequential update chain, no anomaly at all
        history = [
            committed(1, reads=[(7, 0.1, 1, None)], writes=[7],
                      commit=(0.3, 3)),
            committed(2, reads=[(7, 0.35, 2, 1)], writes=[7],
                      commit=(0.4, 4)),
        ]
        assert classify_anomalies(history) == ()

    def test_blind_writes_are_not_lost_updates(self):
        history = [
            committed(1, writes=[7], commit=(0.3, 3)),
            committed(2, writes=[7], commit=(0.4, 4)),
        ]
        assert classify_anomalies(history) == ()

    def test_non_repeatable_read_is_detected(self):
        # T2 read granule 5 twice and saw two versions: before and after
        # T1's commit — impossible under any snapshot
        history = [
            committed(1, writes=[5], commit=(0.2, 2)),
            committed(2, reads=[(5, 0.1, 1, None), (5, 0.3, 3, 1)],
                      commit=(0.4, 4)),
        ]
        kinds = [a.kind for a in classify_anomalies(history)]
        assert kinds == ["non_repeatable_read"]
        assert not check_isolation(history, "snapshot_isolation")

    def test_long_fork_is_detected(self):
        # W2 commits y, then W1 commits x; the reader saw W1's x (so it
        # read after W1's commit) together with the PRE-W2 y — a
        # combination no point of the commit order ever exhibited
        history = [
            committed(2, writes=[21], commit=(0.2, 2)),   # y := W2
            committed(1, writes=[20], commit=(0.3, 3)),   # x := W1
            committed(3, reads=[(20, 0.4, 4, 1), (21, 0.45, 5, None)],
                      commit=(0.5, 6)),
        ]
        kinds = [a.kind for a in classify_anomalies(history)]
        assert kinds == ["long_fork"]
        (anomaly,) = classify_anomalies(history)
        assert anomaly.transactions == (3,)
        assert anomaly.items == (20, 21)
        assert not check_isolation(history, "snapshot_isolation")

    def test_consistent_snapshot_reads_are_no_fork(self):
        # the same reader, but its reads fit the moment between the
        # two commits: a perfectly consistent snapshot
        history = [
            committed(2, writes=[21], commit=(0.2, 2)),
            committed(1, writes=[20], commit=(0.3, 3)),
            committed(3, reads=[(20, 0.4, 4, None), (21, 0.45, 5, 2)],
                      commit=(0.5, 6)),
        ]
        assert classify_anomalies(history) == ()

    def test_reads_of_own_writes_are_ignored(self):
        history = [
            committed(1, reads=[(5, 0.1, 1, None), (5, 0.2, 2, 1)],
                      writes=[5], commit=(0.3, 3)),
        ]
        assert classify_anomalies(history) == ()
        assert check_isolation(history, "serializable")


class TestEdgeCases:
    def test_empty_history_is_clean_at_every_level(self):
        assert check_serializability([])
        assert classify_anomalies([]) == ()
        for level in ISOLATION_LEVELS:
            verdict = check_isolation([], level)
            assert verdict.ok and verdict.transactions == 0

    def test_read_only_transactions_are_clean(self):
        history = [
            committed(1, reads=[(5, 0.1, 1, None)], commit=(0.2, 2)),
            committed(2, reads=[(5, 0.3, 3, None)], commit=(0.4, 4)),
        ]
        assert classify_anomalies(history) == ()
        verdict = check_isolation(history, "serializable")
        assert verdict.ok and verdict.serializable

    def test_aborted_executions_never_enter_the_history(self):
        recorder = HistoryRecorder()
        recorder.start_execution(1)
        recorder.record_read(1, 5, 0.1)
        recorder.record_write_intent(1, 5)
        recorder.record_abort(1)
        recorder.start_execution(2)
        recorder.record_read(2, 5, 0.2)
        recorder.record_commit(2, 0.3)
        assert set(conflict_graph(recorder.committed)) == {2}
        assert classify_anomalies(recorder.committed) == ()
        assert check_isolation(recorder.committed, "serializable").ok

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError, match="unknown isolation level"):
            check_isolation([], "read_committed")

    def test_unnamed_cycle_still_violates_serializable(self):
        # a pure three-way rw cycle: T1 -> T2 -> T3 -> T1.  No pairwise
        # pattern names it, so the serializable check must synthesize a
        # violation from the witness cycle rather than pass silently.
        # (Snapshot isolation genuinely admits this shape — it is the
        # three-transaction generalisation of write skew.)
        history = [
            committed(1, reads=[(30, 0.1, 1, None)], writes=[32],
                      commit=(0.5, 4)),
            committed(2, reads=[(31, 0.2, 2, None)], writes=[30],
                      commit=(0.6, 5)),
            committed(3, reads=[(32, 0.3, 3, None)], writes=[31],
                      commit=(0.7, 6)),
        ]
        assert not check_serializability(history)
        verdict = check_isolation(history, "serializable")
        assert not verdict.ok
        assert [a.kind for a in verdict.violations] == ["serialization_cycle"]
        assert set(verdict.violations[0].transactions) == {1, 2, 3}

    def test_anomaly_counts_schema_is_stable(self):
        assert anomaly_counts([]) == {kind: 0 for kind in ANOMALY_KINDS}
        counts = anomaly_counts(write_skew_history())
        assert tuple(counts) == ANOMALY_KINDS  # fixed key order
        assert counts["write_skew"] == 1
        assert sum(counts.values()) == 1


# ----------------------------------------------------------------------
# randomized certification of every registered scheme at its level
# ----------------------------------------------------------------------
def contended_params(seed: int) -> SystemParams:
    """Small database, heavy writes, no think time: dense conflicts fast."""
    return SystemParams(
        n_terminals=16, think_time=0.0, n_cpus=2,
        cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
        disk_per_access=0.004, disk_commit=0.004, restart_delay=0.005,
        seed=seed,
        workload=WorkloadParams(db_size=40, accesses_per_txn=5,
                                query_fraction=0.1, write_fraction=0.8))


def record_run(kind: str, seed: int, horizon: float = 4.0) -> HistoryRecorder:
    """Run the closed system under ``kind`` with the recorder attached."""
    sim = Simulator()
    recorder = HistoryRecorder()
    system = TransactionSystem(
        contended_params(seed), sim=sim,
        cc=RecordingConcurrencyControl(CCSpec.make(kind).build(sim), recorder))
    system.run(until=horizon)
    return recorder


class TestEverySchemeAtItsDeclaredLevel:
    @pytest.mark.parametrize("kind", cc_kinds())
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_randomized_schedules_certify_at_the_declared_level(self, kind, seed):
        recorder = record_run(kind, seed)
        # the schedule must exercise the scheme, not skate past it
        assert len(recorder.committed) > 50, f"{kind}: too few commits"
        assert recorder.executions > len(recorder.committed), (
            f"{kind}: the contended run never aborted — vacuous schedule")
        level = cc_level(kind)
        verdict = check_isolation(recorder.committed, level)
        assert verdict.ok, (
            f"{kind} violates its declared level {level!r}: "
            f"{[(a.kind, a.transactions) for a in verdict.violations]}")

    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_snapshot_isolation_actually_exhibits_write_skew(self, seed):
        """The SI certification is not vacuous: the weaker level is *used*.

        On every seed the contended run produces a non-serializable
        committed history whose only anomaly kind is write skew — exactly
        the gap between the two levels.
        """
        recorder = record_run("snapshot_isolation", seed)
        verdict = check_isolation(recorder.committed, "snapshot_isolation")
        assert verdict.ok
        assert not verdict.serializable
        assert {a.kind for a in verdict.anomalies} == {"write_skew"}

    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_mislabeling_snapshot_isolation_fails_loudly(self, seed):
        """Declaring SI serializable must be caught, not absorbed."""
        recorder = record_run("snapshot_isolation", seed)
        verdict = check_isolation(recorder.committed, "serializable")
        assert not verdict.ok
        assert verdict.violations

    @pytest.mark.parametrize("kind", [kind for kind in cc_kinds()
                                      if cc_level(kind) == "serializable"])
    def test_serializable_schemes_also_pass_the_weaker_level(self, kind):
        """Level checks are ordered: serializable histories pass SI too.

        This is the soundness half of the level lattice — a scheme can
        only ever be *under*-labeled, never rescued, by a weaker check.
        """
        recorder = record_run(kind, seed=3)
        assert check_isolation(recorder.committed, "snapshot_isolation").ok
