"""Structured run telemetry: wall-clock spans as canonical JSONL.

Where the in-sim probes (:mod:`repro.obs.probes`) observe the *simulated*
trajectory, telemetry observes the *execution machinery*: how long each
cell took on the wall clock, which worker process ran it, how long cells
queued at the distributed coordinator, how workers join and leave, and
when in-flight work was requeued after a crash.  The sweep service adds
its own spans on the same stream: ``job_submit`` when a job enters the
queue, and ``cache_hit`` / ``cache_miss`` (with the content-addressed
``key`` and ``cell_id``) for every consultation of its result cache
(:mod:`repro.svc.cache`).  Spans are appended as one
canonical-JSON line each (sorted keys, compact separators) to a single
file, so a whole local cluster — coordinator, multiprocessing workers,
dist worker processes — interleaves safely into one stream:

* every ``emit`` performs exactly one ``os.write`` on a file descriptor
  opened with ``O_APPEND``, which POSIX guarantees to be atomic for
  the short lines written here;
* the sink is configured by the :data:`TELEMETRY_ENV` environment
  variable (a file path), which child processes inherit — fork-based
  multiprocessing workers and spawned dist workers alike — so one
  exported variable captures the whole run without any plumbing;
* every record carries the ``span`` name, the emitting ``worker``
  (``hostname-pid`` by default, overridable via :func:`set_worker_name`
  so dist workers report their CLI-given name) and a wall-clock ``ts``.

Telemetry costs one ``None`` check when off — the executors consult
:func:`active_sink` once per operation and skip all clock reads without a
sink — and is wall-clock only by design: it never touches the simulation,
so telemetered runs remain bit-identical to untelemetered ones.

Summarise a telemetry file with the ``repro-obs`` CLI
(:mod:`repro.obs.cli`).  The propagation contract shared with the probes
and the golden tracer is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import socket
import sys
import time
from typing import Dict, Iterator, Optional

#: environment variable naming the telemetry output file; inherited by
#: worker processes, which is how telemetry propagates across a cluster
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: explicitly installed sink (takes precedence over the environment)
_installed: Optional["TelemetrySink"] = None

#: sinks opened from the environment variable, cached per path so repeated
#: active_sink() calls reuse one file descriptor per process
_env_sinks: Dict[str, "TelemetrySink"] = {}

#: worker name override (dist workers set their CLI-given name here)
_worker_name: Optional[str] = None
#: pid the cached default worker name was computed for (fork invalidates it)
_worker_name_pid: Optional[int] = None
_default_worker_name: str = ""


class TelemetrySink(object):
    """Appends telemetry records to one JSONL file, atomically per line.

    The file descriptor is opened lazily (on the first :meth:`write`) with
    ``O_APPEND``, so many processes — a coordinator, its multiprocessing
    pool, networked workers — can share one file without interleaving
    partial lines.  Records are canonical JSON: sorted keys, compact
    separators, one line per record.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._fd: Optional[int] = None

    def write(self, record: dict) -> None:
        """Append one record as a single canonical-JSON line."""
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        if self._fd is None:
            self._fd = os.open(self.path,
                               os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                               0o644)
        os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        """Close the underlying file descriptor (reopened on next write)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetrySink({self.path!r})"


def install_sink(sink: Optional[TelemetrySink]) -> None:
    """Install (or, with ``None``, remove) the process-wide telemetry sink.

    An installed sink takes precedence over the :data:`TELEMETRY_ENV`
    environment variable.
    """
    global _installed
    _installed = sink


def active_sink() -> Optional[TelemetrySink]:
    """The telemetry sink in effect, or ``None`` when telemetry is off.

    An explicitly installed sink wins; otherwise the environment variable
    is consulted on every call (cheap — one dict lookup when unset), so a
    sink appears automatically in any process that inherited the variable,
    including forked multiprocessing workers.
    """
    if _installed is not None:
        return _installed
    path = os.environ.get(TELEMETRY_ENV)
    if not path:
        return None
    sink = _env_sinks.get(path)
    if sink is None:
        sink = _env_sinks[path] = TelemetrySink(path)
    return sink


@contextlib.contextmanager
def telemetry_to(path: str) -> Iterator[TelemetrySink]:
    """Context manager: route this process's telemetry spans to ``path``.

    Also exports :data:`TELEMETRY_ENV` for the duration, so worker
    processes started inside the block inherit the sink.
    """
    sink = TelemetrySink(path)
    previous_env = os.environ.get(TELEMETRY_ENV)
    os.environ[TELEMETRY_ENV] = sink.path
    install_sink(sink)
    try:
        yield sink
    finally:
        install_sink(None)
        if previous_env is None:
            os.environ.pop(TELEMETRY_ENV, None)
        else:
            os.environ[TELEMETRY_ENV] = previous_env
        sink.close()


def worker_name() -> str:
    """This process's worker attribution (``hostname-pid`` by default).

    Recomputed after a fork (the pid changed); dist workers override it
    with their CLI-given name via :func:`set_worker_name` so spans line up
    with the names the coordinator logs.
    """
    global _default_worker_name, _worker_name_pid
    if _worker_name is not None:
        return _worker_name
    pid = os.getpid()
    if pid != _worker_name_pid:
        _worker_name_pid = pid
        _default_worker_name = f"{socket.gethostname()}-{pid}"
    return _default_worker_name


def set_worker_name(name: Optional[str]) -> None:
    """Override (or, with ``None``, restore) this process's worker name."""
    global _worker_name
    _worker_name = name


def emit(span: str, **fields: object) -> None:
    """Emit one telemetry span (a no-op without an active sink).

    The record is the given fields plus ``span`` (the span name),
    ``worker`` (see :func:`worker_name`) and ``ts`` (wall-clock epoch
    seconds).  Field values must be JSON-serialisable.
    """
    sink = active_sink()
    if sink is None:
        return
    record = dict(fields)
    record["span"] = span
    record["worker"] = worker_name()
    record["ts"] = time.time()
    sink.write(record)


def configure_cli_logging(verbose: bool = False, quiet: bool = False) -> None:
    """Configure stdlib logging for a ``repro-*`` CLI process.

    Diagnostics go to **stderr** (result tables stay on stdout): WARNING
    and up with ``quiet``, DEBUG and up with ``verbose``, INFO otherwise.
    ``force=True`` so the last CLI to configure wins, which keeps tests
    that invoke several ``main()`` functions in one process predictable.
    """
    level = logging.INFO
    if quiet:
        level = logging.WARNING
    if verbose:
        level = logging.DEBUG
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )
