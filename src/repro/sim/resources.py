"""Queueing resources for the simulation kernel.

Two resource types are provided:

* :class:`Resource` -- an FCFS multi-server station.  The transaction
  processing model uses one instance with capacity ``m`` for the homogeneous
  multiprocessor ("m CPUs serving a shared queue") and, when disk contention
  is modelled explicitly, one instance per disk.
* :class:`Store` -- an unbounded FIFO of items with blocking ``get``.  Used
  by the admission gate's FCFS waiting queue and in tests.

Both follow the request/release protocol: ``request()`` returns an event that
succeeds once the resource is granted; the holder must later call
``release(request)``.  Requests may be cancelled before they are granted,
which is how interrupted transactions withdraw from queues without leaking
capacity.

Hot-path design: every grant and release is O(1).  Held slots are a plain
counter (a request knows whether it holds the resource via its ``granted``
flag), and cancelling a waiting request marks it and adjusts the live queue
count instead of scanning the deque -- cancelled entries are skipped lazily
when they reach the head.  Grant order (strict FCFS among non-cancelled
requests) and all time-integral statistics are unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "granted", "cancelled", "enqueued_at", "granted_at")

    def __init__(self, resource: "Resource"):
        # inline Event.__init__ -- requests are created once per CPU phase
        sim = resource.sim
        self.sim = sim
        self.callbacks = None
        self._value = None
        self._exception = None
        self._triggered = False
        self._processed = False
        self._waiter = None
        self.resource = resource
        self.granted = False
        self.cancelled = False
        self.enqueued_at = sim._now
        self.granted_at: Optional[float] = None

    def cancel(self) -> None:
        """Withdraw the request.

        If it was already granted the slot is released; if it is still
        waiting it is marked cancelled and skipped when it reaches the head
        of the queue.  Cancelling twice is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self.granted:
            self.resource.release(self)
        elif not self._triggered:
            # still waiting (a granted-then-released request is triggered and
            # needs no queue accounting)
            self.resource._drop_waiting(self)


class Resource:
    """First-come-first-served multi-server resource.

    ``capacity`` servers are available; requests beyond the capacity wait in
    an FCFS queue.  The resource keeps the occupancy and waiting statistics
    needed by the measurement layer (utilisation, mean queue length).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._in_use = 0
        # the deque may contain already-cancelled requests (lazily skipped);
        # _waiting_count is the live number of non-cancelled waiters
        self._waiting: Deque[Request] = deque()
        self._waiting_count = 0
        # statistics: time integrals of busy servers and queue length
        self._last_change = sim.now
        self._busy_time_integral = 0.0
        self._queue_time_integral = 0.0
        self.total_requests = 0
        self.total_wait_time = 0.0
        # start of the measured window: construction time, rebound by
        # reset_statistics() so the rate denominators always match the span
        # the integrals actually cover
        self._measured_from = sim.now

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of servers currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of (non-cancelled) requests waiting for a server."""
        return self._waiting_count

    # ------------------------------------------------------------------
    def request(self) -> Request:
        """Claim a server; the returned event succeeds once granted."""
        self._accumulate()
        req = Request(self)
        self.total_requests += 1
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
            self._waiting_count += 1
        return req

    def release(self, req: Request) -> None:
        """Return the server held by ``req`` and grant the next waiter."""
        if req.resource is not self or not req.granted:
            raise SimulationError(
                f"release of a request that does not hold {self.name!r} "
                "(double release or foreign request)"
            )
        self._accumulate()
        req.granted = False
        self._in_use -= 1
        self._grant_waiters()

    def _drop_waiting(self, req: Request) -> None:
        """Account for a cancelled waiting request (removed lazily)."""
        self._accumulate()
        self._waiting_count -= 1

    # ------------------------------------------------------------------
    def _grant(self, req: Request) -> None:
        req.granted = True
        now = self.sim.now
        req.granted_at = now
        self.total_wait_time += now - req.enqueued_at
        self._in_use += 1
        req.succeed(req)

    def _grant_waiters(self) -> None:
        waiting = self._waiting
        while waiting and self._in_use < self.capacity:
            req = waiting.popleft()
            if req.cancelled:
                continue
            self._waiting_count -= 1
            self._grant(req)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def _accumulate(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self._busy_time_integral += elapsed * self._in_use
            self._queue_time_integral += elapsed * self._waiting_count
            self._last_change = now

    def utilisation(self) -> float:
        """Mean fraction of busy servers over the measured window.

        The window runs from construction (or the last
        :meth:`reset_statistics`, the end of warm-up) to now — the same
        span the busy-time integral covers, so the ratio cannot be
        computed against a mismatched window.
        """
        self._accumulate()
        horizon = self.sim.now - self._measured_from
        if horizon <= 0:
            return 0.0
        return self._busy_time_integral / (horizon * self.capacity)

    def mean_queue_length(self) -> float:
        """Time-averaged number of waiting requests over the measured window."""
        self._accumulate()
        horizon = self.sim.now - self._measured_from
        if horizon <= 0:
            return 0.0
        return self._queue_time_integral / horizon

    def reset_statistics(self) -> None:
        """Forget accumulated statistics (used at the end of warm-up)."""
        self._accumulate()
        self._busy_time_integral = 0.0
        self._queue_time_integral = 0.0
        self.total_requests = 0
        self.total_wait_time = 0.0
        self._last_change = self.sim.now
        self._measured_from = self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} capacity={self.capacity} "
            f"in_use={self.in_use} queued={self.queue_length}>"
        )


class Store:
    """Unbounded FIFO of items with blocking retrieval.

    ``put`` never blocks.  ``get`` returns an event that succeeds with the
    oldest item once one is available.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    @property
    def size(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of get() calls still blocked."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Add ``item``; wakes the oldest blocked getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item (FIFO order)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name!r} size={self.size} waiting={self.waiting_getters}>"
