"""Displacement: enforcing a lowered threshold by aborting transactions.

Section 4.3: "Changing transaction behavior may lead to a situation where
the controller suggests a new ``n*`` well below the current load ``n``.
Here we have two options: (i) merely use admission control and hope that by
normal departures the load will drop below ``n*`` soon; (ii) in addition to
admission control, instantaneously enforce the new threshold by aborting as
many active transactions as necessary.  (Victim selection may be based on
the same criteria as for deadlock breaking.)  Because aborting transactions
always means wastage of system resources this approach is justified only if
the responsiveness of the controller cannot be achieved otherwise."

The paper's experiments used admission control only; displacement is
implemented here so the trade-off can be studied (and because the paper
recommends keeping it "as a last resort").  The policy is passive: it only
*selects* victims; the transaction system applies the aborts by
interrupting the victims' processes.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Callable, List, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.tp.transaction import Transaction


class VictimCriterion(enum.Enum):
    """Victim selection criteria (mirroring common deadlock-victim rules)."""

    #: abort the most recently admitted transactions first (least sunk cost)
    YOUNGEST = "youngest"
    #: abort the oldest transactions first
    OLDEST = "oldest"
    #: abort the transactions that touched the fewest granules so far
    LEAST_WORK = "least_work"
    #: abort read-only queries before updaters, then youngest first
    QUERIES_FIRST = "queries_first"


class DisplacementPolicy:
    """Selects which active transactions to abort to enforce a new threshold."""

    def __init__(self, criterion: VictimCriterion = VictimCriterion.YOUNGEST,
                 enabled: bool = True,
                 hysteresis: float = 0.0):
        """Create a displacement policy.

        ``hysteresis`` delays displacement until the overshoot exceeds the
        given number of transactions; small controller-induced oscillations
        of the threshold then never trigger aborts (Section 4.3 notes that
        not displacing has "a smoothing effect ... that supports controller
        stability").
        """
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be non-negative, got {hysteresis}")
        self.criterion = criterion
        self.enabled = enabled
        self.hysteresis = float(hysteresis)
        self.total_displaced = 0

    # ------------------------------------------------------------------
    def select_victims(self, active: Sequence["Transaction"], new_limit: float) -> List["Transaction"]:
        """Return the transactions to abort so that ``len(active) <= new_limit``.

        The returned list is empty when displacement is disabled or the
        overshoot is within the hysteresis band.
        """
        if not self.enabled:
            return []
        if math.isinf(new_limit):
            return []
        overshoot = len(active) - int(math.floor(new_limit))
        if overshoot <= self.hysteresis:
            return []
        ordered = sorted(active, key=self._victim_key(), reverse=True)
        victims = ordered[:overshoot]
        self.total_displaced += len(victims)
        return victims

    def _victim_key(self) -> Callable[["Transaction"], tuple]:
        """Sort key: transactions sorted by this key descending are victims first."""
        if self.criterion is VictimCriterion.YOUNGEST:
            return lambda txn: (txn.admitted_at if txn.admitted_at is not None else -math.inf,)
        if self.criterion is VictimCriterion.OLDEST:
            return lambda txn: (-(txn.admitted_at if txn.admitted_at is not None else math.inf),)
        if self.criterion is VictimCriterion.LEAST_WORK:
            return lambda txn: (-(len(txn.read_set) + len(txn.write_set)),)
        # QUERIES_FIRST: read-only first, then youngest
        return lambda txn: (
            1 if txn.is_read_only else 0,
            txn.admitted_at if txn.admitted_at is not None else -math.inf,
        )

    # ------------------------------------------------------------------
    # Policies compare (and hash) by *configuration*, not by accumulated
    # run state: a RunSpec carrying a policy must equal its pickled copy
    # after a trip through the dist wire protocol, and two cells
    # configured identically describe the same experiment regardless of
    # how many victims either instance has selected so far.
    def _config(self) -> tuple:
        return (self.criterion, self.enabled, self.hysteresis)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DisplacementPolicy):
            return NotImplemented
        return self._config() == other._config()

    def __hash__(self) -> int:
        return hash(self._config())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"<DisplacementPolicy {self.criterion.value} {state}>"
