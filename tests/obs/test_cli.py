"""The ``repro-obs`` CLI: summarising a telemetry JSONL file."""

import json

from repro.obs import cli
from repro.obs.telemetry import telemetry_to, emit, set_worker_name


def write_spans(path):
    set_worker_name("w1")
    with telemetry_to(str(path)):
        emit("cell_execute", cell_id="a/N=25", replicate=0, kind="stationary",
             duration=0.25)
        emit("cell_execute", cell_id="a/N=100", replicate=0, kind="stationary",
             duration=0.75)
        set_worker_name("w2")
        emit("cell_execute", cell_id="a/N=300", replicate=0, kind="stationary",
             duration=0.5)
        emit("sweep", executor="parallel", workers=2, cells=3, duration=1.1)
        emit("worker_join", peer="w2")
    set_worker_name(None)


class TestSummarize:
    def test_span_and_worker_tables(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        write_spans(path)
        assert cli.main([str(path)]) == 0
        out = capsys.readouterr().out
        # span summary: every span name, with stats for the timed ones
        assert "cell_execute" in out
        assert "sweep" in out
        assert "worker_join" in out
        # worker summary: per-worker cell_execute breakdown
        assert "w1" in out
        assert "w2" in out
        assert "1.500" in out  # total cell_execute seconds

    def test_empty_file_reports_no_spans(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert cli.main([str(path)]) == 0
        assert "no telemetry spans" in capsys.readouterr().out

    def test_missing_file_exits_nonzero_with_a_message(self, tmp_path, capsys):
        assert cli.main([str(tmp_path / "absent.jsonl")]) == 1
        assert "repro-obs" in capsys.readouterr().err

    def test_malformed_lines_are_skipped_not_fatal(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        records = [
            json.dumps({"span": "cell_execute", "worker": "w", "ts": 1.0,
                        "duration": 0.5}),
            '{"span": "cell_execute", "worker": "w", "ts": 2.0, "dur',  # torn
            json.dumps([1, 2, 3]),  # valid JSON, not a record
        ]
        path.write_text("\n".join(records) + "\n")
        assert cli.main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "cell_execute" in captured.out
        assert "malformed" in captured.err

    def test_read_spans_counts_malformed_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text('{"span":"a"}\nnot json\n\n')
        records, malformed = cli.read_spans(str(path))
        assert [r["span"] for r in records] == ["a"]
        assert malformed == 1

    def test_summarize_handles_spans_without_durations(self):
        text = cli.summarize([{"span": "worker_join", "peer": "w"}])
        assert "worker_join" in text
        assert "-" in text
