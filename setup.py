"""Compatibility shim; all metadata lives in pyproject.toml.

Kept so ``python setup.py develop`` works in environments without the
``wheel`` package (modern editable installs build a wheel first).
"""

from setuptools import setup

setup()
