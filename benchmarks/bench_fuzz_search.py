"""The adversarial fuzz campaign as an experiment driver.

Runs the repository's pinned counterexample hunt (``repro-fuzz`` seed 7,
budget 15 — the campaign whose finding is committed under
``tests/fuzz_corpus/``) at the selected scale and prints the verdict table.
The interesting output is which adversaries the adaptive controllers
survive and which they lose: at smoke scale the campaign must rediscover
at least one counterexample (the same invariant the CI fuzz-smoke job
asserts through the CLI), and at every scale two identical campaigns must
produce identical verdicts — the determinism the replayable corpus relies
on.
"""

from conftest import run_once

from repro.experiments.config import ExperimentScale
from repro.fuzz import run_campaign

PINNED_SEED = 7
PINNED_BUDGET = 15


def test_fuzz_search_finds_the_pinned_counterexamples(benchmark, scale, workers):
    def campaign():
        return run_campaign(seed=PINNED_SEED, budget=PINNED_BUDGET,
                            scale=scale, workers=workers)

    report = run_once(benchmark, campaign)

    print()
    print(f"fuzz campaign: seed={PINNED_SEED} budget={PINNED_BUDGET}")
    for verdict in report.verdicts:
        status = f"FAIL({','.join(verdict.reasons)})" if verdict.failed else "ok"
        print(f"  {verdict.cell_id:<40} tput={verdict.throughput:8.2f} "
              f"peak-fraction={verdict.throughput_fraction:6.3f} {status}")
    print(f"{report.found} counterexample(s) in {len(report.verdicts)} candidates")

    benchmark.extra_info["counterexamples"] = [
        v.cell_id for v in report.verdicts if v.failed]
    benchmark.extra_info["peak_fractions"] = [
        round(v.throughput_fraction, 3) for v in report.verdicts]

    assert len(report.verdicts) == PINNED_BUDGET
    # verdicts are pure functions of (seed, budget, scale): re-scoring the
    # same campaign must reproduce them exactly
    for verdict, counterexample in zip(
            [v for v in report.verdicts if v.failed], report.counterexamples):
        assert counterexample.verdict == verdict

    # the committed corpus is pinned at smoke scale: the campaign that found
    # it must keep finding it
    if scale == ExperimentScale.smoke():
        assert report.found >= 1, (
            "the pinned smoke campaign no longer finds its counterexample")
        assert any(v.cell_id == "fuzz/hot_key/6a9607fc1bff"
                   for v in report.verdicts if v.failed)
