"""Dynamic experiments: tracking a moving optimum (Figures 13, 14, sinusoid).

The paper's main interest is dynamic behaviour: the workload parameters
(``k``, the query fraction, the write fraction) change during the run,
moving both the height and the position of the throughput optimum, and the
controller's threshold trajectory ``n*(t)`` is compared against the true
optimum ``n_opt(t)``.

Two plants are supported:

* the full discrete-event transaction system
  (:func:`run_tracking_experiment`), where the reference optimum is computed
  from the analytic OCC model for the workload parameters in effect at each
  sampling instant;
* the synthetic overload function (:func:`run_synthetic_tracking`), the
  direct realization of the paper's "dynamic optimum search" abstraction,
  where the reference optimum is exact and runs take milliseconds.

Scenario helpers build the two variation patterns used in Section 9:
``jump_scenario`` (abrupt change at mid-run, Figures 13/14) and
``sinusoid_scenario`` (smooth periodic change).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analytic.occ import OccModel
from repro.analytic.synthetic import DynamicOptimumScenario, SyntheticSystem
from repro.cc.registry import resolve_cc
from repro.core.controller import LoadController
from repro.core.displacement import DisplacementPolicy
from repro.core.outer_loop import MeasurementIntervalTuner
from repro.core.types import ControlTrace
from repro.experiments.config import ExperimentScale, default_system_params
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams
from repro.tp.params import SystemParams
from repro.tp.system import TransactionSystem
from repro.tp.workload import (
    ConstantSchedule,
    JumpSchedule,
    ParameterSchedule,
    SinusoidSchedule,
    Workload,
)


@dataclass
class TrackingResult:
    """Outcome of one dynamic tracking run."""

    #: controller name (for reports)
    controller: str
    #: which workload parameter was varied ("accesses", "query_fraction", ...)
    varied_parameter: str
    #: the closed-loop trace: times, thresholds, loads, throughputs
    trace: ControlTrace
    #: reference optimum position at each sampling instant
    reference_optima: List[float] = field(default_factory=list)
    #: reference peak throughput at each sampling instant (if known)
    reference_peaks: List[float] = field(default_factory=list)
    #: total commits over the run (useful-work comparison between controllers)
    total_commits: int = 0
    #: run-level mean response time
    mean_response_time: float = 0.0
    #: abandoned executions per commit over the whole run
    restart_ratio: float = 0.0

    def threshold_series(self) -> List[Tuple[float, float]]:
        """(time, threshold) points -- the solid line of Figures 13/14."""
        return list(zip(self.trace.times, self.trace.limits))

    def reference_series(self) -> List[Tuple[float, float]]:
        """(time, true optimum) points -- the broken line of Figures 13/14."""
        return list(zip(self.trace.times, self.reference_optima))


# ----------------------------------------------------------------------
# scenario construction
# ----------------------------------------------------------------------
def jump_scenario(parameter: str, before: float, after: float, jump_time: float
                  ) -> Tuple[str, ParameterSchedule]:
    """A jump-like variation of one workload parameter (Figures 13/14)."""
    _validate_parameter(parameter)
    return parameter, JumpSchedule(before, after, jump_time)


def sinusoid_scenario(parameter: str, mean: float, amplitude: float, period: float
                      ) -> Tuple[str, ParameterSchedule]:
    """A sinusoidal variation of one workload parameter (Section 9)."""
    _validate_parameter(parameter)
    return parameter, SinusoidSchedule(mean, amplitude, period)


_VALID_PARAMETERS = ("accesses", "query_fraction", "write_fraction")


def _validate_parameter(parameter: str) -> None:
    if parameter not in _VALID_PARAMETERS:
        raise ValueError(
            f"parameter must be one of {_VALID_PARAMETERS}, got {parameter!r}"
        )


def _build_workload(params: SystemParams, streams, parameter: str,
                    schedule: ParameterSchedule) -> Workload:
    kwargs = {"accesses": None, "query_fraction": None, "write_fraction": None}
    if parameter == "accesses":
        kwargs["accesses"] = schedule
    elif parameter == "query_fraction":
        kwargs["query_fraction"] = schedule
    else:
        kwargs["write_fraction"] = schedule
    return Workload.with_schedules(params.workload, streams, **kwargs)


def _reference_optimum(params: SystemParams, workload: Workload, time: float) -> Tuple[float, float]:
    """True optimum (position, peak) from the analytic model at ``time``."""
    current = workload.params_at(time)
    model = OccModel(params.with_changes(workload=current), current)
    optimum = model.optimal_mpl()
    return optimum, model.throughput(optimum)


# ----------------------------------------------------------------------
# discrete-event tracking run
# ----------------------------------------------------------------------
def run_tracking_experiment(controller: LoadController,
                            scenario: Tuple[str, ParameterSchedule],
                            base_params: Optional[SystemParams] = None,
                            scale: Optional[ExperimentScale] = None,
                            displacement: Optional[DisplacementPolicy] = None,
                            reference_resolution: int = 20,
                            interval_tuner: Optional[MeasurementIntervalTuner] = None,
                            streams: Optional[RandomStreams] = None,
                            cc: Optional[object] = None) -> TrackingResult:
    """Run the full simulation with a time-varying workload and a controller.

    ``reference_resolution`` limits how many times the (comparatively
    expensive) analytic reference optimum is recomputed; between those
    instants the reference is held constant, which is exact for jump
    scenarios and a fine approximation for slow sinusoids.
    ``interval_tuner`` enables the outer control loop of Section 5;
    ``streams`` overrides the run's random streams (the runner passes a
    replicate-derived family here); ``cc`` selects the concurrency control
    scheme (``None`` = timestamp certification, or a
    :class:`~repro.cc.registry.CCSpec` / factory ``sim -> scheme``) — the
    analytic reference optimum is always the OCC model's, so trajectories
    of different schemes are compared against one common yardstick.
    """
    scale = scale or ExperimentScale.benchmark()
    base_params = base_params or default_system_params()
    parameter, schedule = scenario

    streams = streams or RandomStreams(base_params.seed)
    workload_for_reference = _build_workload(base_params, RandomStreams(base_params.seed), parameter, schedule)

    sim = Simulator()
    system = TransactionSystem(
        base_params,
        sim=sim,
        streams=streams,
        workload=_build_workload(base_params, streams, parameter, schedule),
        cc=resolve_cc(cc, sim),
        displacement=displacement,
    )
    measurement = system.attach_controller(
        controller,
        interval=scale.measurement_interval,
        warmup=0.0,
        interval_tuner=interval_tuner,
    )
    system.run(until=scale.tracking_horizon)

    # reference optimum, recomputed at a limited number of instants
    reference_times = measurement.trace.times
    reference_optima: List[float] = []
    reference_peaks: List[float] = []
    cache: Dict[Tuple, Tuple[float, float]] = {}
    for sample_time in reference_times:
        current = workload_for_reference.params_at(sample_time)
        key = (current.accesses_per_txn, round(current.query_fraction, 6),
               round(current.write_fraction, 6))
        if key not in cache:
            if len(cache) < reference_resolution:
                cache[key] = _reference_optimum(base_params, workload_for_reference, sample_time)
            else:
                # fall back to the nearest already computed reference
                cache[key] = next(iter(cache.values()))
        optimum, peak = cache[key]
        reference_optima.append(optimum)
        reference_peaks.append(peak)

    return TrackingResult(
        controller=controller.name,
        varied_parameter=parameter,
        trace=measurement.trace,
        reference_optima=reference_optima,
        reference_peaks=reference_peaks,
        total_commits=system.metrics.commits,
        mean_response_time=system.metrics.mean_response_time(),
        restart_ratio=system.metrics.restart_ratio,
    )


# ----------------------------------------------------------------------
# runner delegation: many tracking cells at once
# ----------------------------------------------------------------------
def tracking_sweep_spec(controllers: Mapping[str, object],
                        scenario: Tuple[str, ParameterSchedule],
                        base_params: Optional[SystemParams] = None,
                        scale: Optional[ExperimentScale] = None,
                        name: str = "tracking",
                        displacement: Optional[DisplacementPolicy] = None,
                        interval_tuner: Optional[MeasurementIntervalTuner] = None,
                        cc: Optional[object] = None):
    """Build a runner sweep with one tracking cell per named controller.

    Each value of ``controllers`` may be a
    :class:`~repro.runner.specs.ControllerSpec` or a picklable factory
    ``params -> LoadController``.  ``displacement`` and ``cc`` apply to
    every cell of the sweep.
    """
    from repro.runner.specs import KIND_TRACKING, RunSpec, SweepSpec

    scale = scale or ExperimentScale.benchmark()
    base_params = base_params or default_system_params()
    cells = tuple(
        RunSpec(
            kind=KIND_TRACKING,
            cell_id=f"{name}/{label}",
            params=base_params,
            scale=scale,
            controller=controller,
            scenario=scenario,
            label=label,
            displacement=displacement,
            interval_tuner=interval_tuner,
            cc=cc,
        )
        for label, controller in controllers.items()
    )
    return SweepSpec(name=name, cells=cells)


def run_tracking_suite(controllers: Mapping[str, object],
                       scenario: Tuple[str, ParameterSchedule],
                       base_params: Optional[SystemParams] = None,
                       scale: Optional[ExperimentScale] = None,
                       workers: int = 0,
                       replicates: int = 1,
                       name: str = "tracking",
                       displacement: Optional[DisplacementPolicy] = None,
                       interval_tuner: Optional[MeasurementIntervalTuner] = None,
                       cc: Optional[object] = None):
    """Run one tracking cell per controller through the runner.

    ``displacement``, ``interval_tuner`` and ``cc`` apply to every cell of
    the suite.  Returns the :class:`~repro.runner.api.SweepResult`; use
    :func:`repro.runner.tracking_results` for the per-controller
    trajectories and :attr:`~repro.runner.api.SweepResult.aggregates` for
    replicate mean ± CI summaries.
    """
    from repro.runner.api import run_sweep

    spec = tracking_sweep_spec(controllers, scenario, base_params=base_params,
                               scale=scale, name=name, displacement=displacement,
                               interval_tuner=interval_tuner, cc=cc)
    return run_sweep(spec, workers=workers, replicates=replicates)


# ----------------------------------------------------------------------
# synthetic tracking run (the Section 3 abstraction)
# ----------------------------------------------------------------------
def run_synthetic_tracking(controller: LoadController,
                           position_schedule: ParameterSchedule,
                           height_schedule: Optional[ParameterSchedule] = None,
                           steps: int = 400,
                           offered_load: float = math.inf,
                           noise_std: float = 0.0,
                           seed: int = 0,
                           interval: float = 1.0) -> TrackingResult:
    """Track a synthetic moving optimum (fast, exact reference)."""
    height = height_schedule or ConstantSchedule(100.0)
    scenario = DynamicOptimumScenario(position=position_schedule, height=height)
    plant = SyntheticSystem(
        scenario,
        controller,
        offered_load=offered_load,
        interval=interval,
        noise_std=noise_std,
        seed=seed,
    )
    plant.run(steps)
    peaks = [scenario.peak_at(t) for t in plant.trace.times]
    return TrackingResult(
        controller=controller.name,
        varied_parameter="synthetic-optimum",
        trace=plant.trace,
        reference_optima=list(plant.reference_optima),
        reference_peaks=peaks,
        total_commits=sum(int(round(p * interval)) for p in plant.trace.throughput),
        mean_response_time=0.0,
    )
