#!/usr/bin/env python
"""Regenerate the golden trajectory fixtures under ``tests/golden/``.

One JSON file per registry scenario (thrashing, fig12_stationary,
fig13_is_jump, fig14_pa_jump, sinusoid, mixed_classes, cc_compare,
displacement_policies, deadlock_resolution, isolation_tradeoff,
probe_calibration, open_diurnal, flash_crowd), each produced by running every
cell of the scenario's smoke-scale sweep serially with the trajectory
tracer installed.  A golden file pins, per cell:

* the summary ``metrics`` dict exactly as the runner reports it,
* the length and a blake2b digest of the canonical serialisation of the
  full per-transaction lifecycle event log
  ``[time, kind, txn_id, detail]`` (submit/admit/commit/abort/depart), and
* the first ``EVENTS_HEAD`` log entries verbatim, so a digest mismatch can
  be narrowed down to the first diverging event by a human (or by
  regenerating into a scratch directory and diffing), and
* for cells that run with scheme diagnostics, the name of the scheme-aware
  analytic reference (``model_reference``: TayModel for locking-family
  schemes, OccModel for optimistic ones) — absent from cells that never
  reported one, so older fixtures keep their exact byte content.

``tests/golden/test_golden_trajectories.py`` asserts that re-running the
cells reproduces these files *bitwise* (canonical JSON string equality).
JSON serialises floats with ``repr``, which round-trips IEEE-754 doubles
exactly, so string equality of the canonical form — and digest equality
over it — is bit-for-bit equality of every timestamp and metric.  The
digest covers the *entire* event log (tens of thousands of events per
tracking cell); only the stored head is truncated, to keep the checked-in
fixtures small.

The goldens define the behavioral contract of the simulation core.  They
were generated once, BEFORE the hot-path rewrite of the discrete-event
engine, and must never be regenerated to make a failing optimisation pass:
a mismatch means the optimisation changed trajectories and must be fixed.
Legitimate regeneration (an intentional semantic change to the model) is::

    PYTHONPATH=src python tools/regen_goldens.py

and must be called out explicitly in the change description.

When a PR merely *adds* a scenario, regenerate that fixture alone with::

    PYTHONPATH=src python tools/regen_goldens.py --only <scenario>

``--only`` (repeatable) refuses to touch any other file, so the
pre-existing fixtures provably stay byte-identical — ``git status`` after
the run must show exactly one new file.  Running without ``--only``
rewrites every fixture and is reserved for intentional, documented
semantic changes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.canonical import canonical_digest, canonical_json, sanitize  # noqa: E402, F401
from repro.experiments.config import ExperimentScale  # noqa: E402
from repro.runner.cells import execute_run_spec  # noqa: E402
from repro.runner.registry import available_scenarios, build_sweep  # noqa: E402
from repro.sim.trace import TrajectoryTracer, tracing  # noqa: E402

#: the scenarios pinned by the golden harness (== the full registry)
GOLDEN_SCENARIOS = ("thrashing", "fig12_stationary", "fig13_is_jump",
                    "fig14_pa_jump", "sinusoid", "mixed_classes",
                    "cc_compare", "displacement_policies",
                    "deadlock_resolution", "isolation_tradeoff",
                    "probe_calibration", "open_diurnal", "flash_crowd")

#: bump when the golden file structure (not the trajectories) changes
GOLDEN_FORMAT = 1

#: trajectory events stored verbatim per cell (the digest covers all of them)
EVENTS_HEAD = 100


# sanitize and canonical_json are re-exported from repro.canonical (the
# repository's single canonical encoder, shared with the archive writer,
# the fuzz corpus and the sweep service's cache keys); the golden tests
# import them from this module, which keeps this tool the single source of
# truth for *capture* while the byte encoding lives in one place.


def events_digest(events) -> str:
    """Blake2b-256 hex digest of the canonical serialisation of a full log."""
    return canonical_digest([list(event) for event in events])


def capture_scenario(name: str) -> dict:
    """Run every cell of ``name`` at smoke scale, tracing trajectories."""
    spec = build_sweep(name, scale=ExperimentScale.smoke())
    cells = []
    for cell in spec.cells:
        tracer = TrajectoryTracer()
        with tracing(tracer):
            result = execute_run_spec(cell)
        captured = {
            "cell_id": result.cell_id,
            "kind": result.kind,
            "label": result.label,
            "replicate": result.replicate,
            "metrics": dict(result.metrics),
            "n_events": len(tracer.events),
            "events_digest": events_digest(tracer.events),
            "events_head": [list(event) for event in tracer.events[:EVENTS_HEAD]],
        }
        if result.model_reference:
            # only diagnostics cells report one; older fixtures (captured
            # before the scheme-aware references existed) stay byte-identical
            captured["model_reference"] = result.model_reference
        cells.append(captured)
    return {
        "format": GOLDEN_FORMAT,
        "scenario": name,
        "scale": "smoke",
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "tests" / "golden",
                        help="output directory (default: tests/golden)")
    parser.add_argument("--only", action="append", metavar="SCENARIO",
                        help="regenerate exactly this scenario's fixture and "
                             "touch no other file (repeatable); the safe "
                             "mode for PRs that only ADD a scenario.  "
                             "Without it, EVERY fixture is rewritten — "
                             "reserved for documented semantic changes")
    args = parser.parse_args(argv)

    selected = args.only or list(GOLDEN_SCENARIOS)

    known = set(available_scenarios())
    for name in selected:
        if name not in known:
            parser.error(f"unknown scenario {name!r}; available: {sorted(known)}")

    args.out.mkdir(parents=True, exist_ok=True)
    for name in selected:
        payload = capture_scenario(name)
        path = args.out / f"{name}.json"
        path.write_text(canonical_json(payload) + "\n", encoding="utf-8")
        events = sum(cell["n_events"] for cell in payload["cells"])
        print(f"{path}: {len(payload['cells'])} cells, {events} trajectory events, "
              f"{path.stat().st_size / 1024:.0f} KiB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
