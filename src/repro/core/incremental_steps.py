"""The Method of Incremental Steps (IS) — Section 4.1.

The controller performs hill climbing on the measured (load, performance)
series.  In each measurement interval the actual concurrency level ``n(t_i)``
and the performance ``P(t_i)`` are measured; the new load bound is

.. code-block:: text

    n*(t_{i+1}) =
        n*(t_i) + beta * (P(t_i) - P(t_{i-1})) * signum(n*(t_i) - n*(t_{i-1}))
                                        if |n*(t_i) - n(t_i)| <= delta
        n*(t_i) + gamma                 if |n*(t_i) - n(t_i)| >  delta and n*(t_i) < n(t_i)
        n*(t_i) - gamma                 if |n*(t_i) - n(t_i)| >  delta and n*(t_i) > n(t_i)

with ``signum(x) = 1`` for ``x > 0`` and ``-1`` for ``x <= 0``.

Interpretation: while the threshold and the actual load agree (the first
case), the controller keeps moving in the direction that last improved the
performance and reverses direction when performance degrades, so the
threshold zig-zags along the ridge of the performance mountain (Figure 3).
``beta`` scales the step size proportionally to the performance change;
``gamma`` and ``delta`` prevent the threshold and the actual load from
drifting apart (e.g. when the offered load drops and the actual ``n`` falls
well below ``n*``, the bound is pulled back towards the load, otherwise a
later load surge would start deep in the thrashing region).

Section 5.1 warns that the simple IS rule can be fooled when the *height* of
the optimum grows while its position stays put (every step then looks like
an improvement); static lower and upper bounds for ``n*`` keep the
controller recoverable, and they are part of the controller's configuration
here.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.controller import LoadController
from repro.core.types import IntervalMeasurement


def signum(x: float) -> int:
    """The paper's signum: 1 for x > 0, -1 for x <= 0 (note: -1 at zero)."""
    return 1 if x > 0 else -1


class IncrementalStepsController(LoadController):
    """Hill-climbing MPL controller (the paper's IS algorithm)."""

    name = "incremental-steps"

    def __init__(self,
                 initial_limit: float = 10.0,
                 beta: float = 1.0,
                 gamma: float = 5.0,
                 delta: float = 5.0,
                 lower_bound: float = 1.0,
                 upper_bound: float = 1000.0,
                 min_step: float = 1.0,
                 max_step: Optional[float] = None,
                 performance_index=None):
        """Create an IS controller.

        Parameters mirror the paper: ``beta`` converts performance change
        into step size, ``gamma`` is the fixed re-coupling step used when the
        threshold and the actual load drift apart by more than ``delta``.
        ``min_step`` keeps the controller exploring even when two successive
        performance measurements are (almost) equal; ``max_step`` (default:
        ``upper_bound/4``) bounds a single move so one noisy measurement
        cannot throw the threshold across the whole admissible range.
        """
        super().__init__(initial_limit=initial_limit, lower_bound=lower_bound,
                         upper_bound=upper_bound, performance_index=performance_index)
        if beta < 0 or gamma < 0 or delta < 0:
            raise ValueError("beta, gamma and delta must be non-negative")
        if min_step < 0:
            raise ValueError(f"min_step must be non-negative, got {min_step}")
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.delta = float(delta)
        self.min_step = float(min_step)
        self.max_step = float(max_step) if max_step is not None else (upper_bound - lower_bound) / 4.0
        # memory of the previous interval: P(t_{i-1}) and n*(t_{i-1})
        self._previous_performance: Optional[float] = None
        self._previous_limit: Optional[float] = None

    # ------------------------------------------------------------------
    def _propose(self, measurement: IntervalMeasurement) -> float:
        performance = self.performance_of(measurement)
        limit = self.current_limit
        load = measurement.concurrency_at_sample

        if self._previous_performance is None:
            # First measurement: no gradient information yet.  Take one
            # exploratory step upward so the next interval produces a usable
            # (direction, performance change) pair.
            self._previous_performance = performance
            self._previous_limit = limit
            return limit + max(self.min_step, self.gamma)

        if abs(limit - load) <= self.delta:
            direction = signum(limit - (self._previous_limit
                                        if self._previous_limit is not None else limit))
            delta_p = performance - self._previous_performance
            step = self.beta * delta_p * direction
            # keep exploring when the performance change is too small to move
            if abs(step) < self.min_step:
                step = math.copysign(self.min_step, step if step != 0.0 else direction)
            step = max(-self.max_step, min(self.max_step, step))
            proposed = limit + step
        elif limit < load:
            proposed = limit + self.gamma
        else:
            proposed = limit - self.gamma

        self._previous_performance = performance
        self._previous_limit = limit
        return proposed

    def reset(self) -> None:
        """Forget the measurement history along with the threshold."""
        super().reset()
        self._previous_performance = None
        self._previous_limit = None
