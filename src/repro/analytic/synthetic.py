"""Synthetic time-varying overload functions (Section 3, Figure 2).

The paper formulates load control as a *dynamic optimum search problem*: the
controller sees only realized (load, performance) pairs of an unknown,
time-varying unimodal function and has to track its maximum ("find the ridge
of the mountain and track it along the time axis").

This module implements that abstraction directly:

* :class:`SyntheticOverloadFunction` -- a unimodal performance function
  ``P(n)`` with configurable optimum position, height and asymmetry
  (performance decays faster beyond the optimum, as in thrashing);
* :class:`DynamicOptimumScenario` -- time profiles for the optimum position
  and height (constant, jump, sinusoid), i.e. the "mountain ridge" of
  Figure 2;
* :class:`SyntheticSystem` -- a minimal closed-loop plant: at each step it
  receives the controller's threshold, realizes a load (the offered load
  clipped at the threshold), evaluates the noisy performance function and
  produces an :class:`~repro.core.types.IntervalMeasurement`.

Driving the real controllers against this synthetic plant gives fast,
precisely controlled tracking experiments (used for unit tests, for the
Figure 13/14 shape benchmarks at synthetic scale and for the ablation
studies), while the discrete-event model provides the full-fidelity version
of the same experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.controller import LoadController
from repro.core.types import ControlTrace, IntervalMeasurement
from repro.tp.workload import ConstantSchedule, ParameterSchedule


@dataclass(frozen=True)
class SyntheticOverloadFunction:
    """Unimodal load/performance function with thrashing-like asymmetry.

    For a load ``n`` and optimum position ``n_opt`` with peak height
    ``p_max``::

        P(n) = p_max * (n / n_opt) * (2 - n / n_opt)          for n <= n_opt
        P(n) = p_max * max(0, 1 - decay * ((n - n_opt)/n_opt)) for n >  n_opt

    The left branch is the rising part of an inverted parabola (linear for
    small ``n``, flat at the optimum); the right branch falls off linearly
    with slope ``decay`` and is clipped at zero, mimicking the "sometimes
    sudden drop in throughput" of the overload phase.
    """

    optimum_position: float
    peak_performance: float
    overload_decay: float = 1.5

    def __post_init__(self) -> None:
        if self.optimum_position <= 0:
            raise ValueError(f"optimum_position must be positive, got {self.optimum_position}")
        if self.peak_performance < 0:
            raise ValueError(f"peak_performance must be >= 0, got {self.peak_performance}")
        if self.overload_decay < 0:
            raise ValueError(f"overload_decay must be >= 0, got {self.overload_decay}")

    def value(self, load: float) -> float:
        """Performance at ``load`` (0 for non-positive loads)."""
        if load <= 0:
            return 0.0
        ratio = load / self.optimum_position
        if ratio <= 1.0:
            return self.peak_performance * ratio * (2.0 - ratio)
        return self.peak_performance * max(0.0, 1.0 - self.overload_decay * (ratio - 1.0))

    def __call__(self, load: float) -> float:
        return self.value(load)


class DynamicOptimumScenario:
    """Time profiles of the optimum position and peak height (Figure 2)."""

    def __init__(self,
                 position: ParameterSchedule,
                 height: ParameterSchedule,
                 overload_decay: float = 1.5):
        self.position = position
        self.height = height
        self.overload_decay = overload_decay

    @classmethod
    def constant(cls, position: float, height: float, overload_decay: float = 1.5
                 ) -> "DynamicOptimumScenario":
        """A stationary mountain: position and height never change."""
        return cls(ConstantSchedule(position), ConstantSchedule(height), overload_decay)

    def function_at(self, time: float) -> SyntheticOverloadFunction:
        """The overload function in effect at ``time``."""
        return SyntheticOverloadFunction(
            optimum_position=max(1e-9, self.position.value(time)),
            peak_performance=max(0.0, self.height.value(time)),
            overload_decay=self.overload_decay,
        )

    def optimum_at(self, time: float) -> float:
        """True optimum position at ``time`` (the reference for tracking error)."""
        return self.position.value(time)

    def peak_at(self, time: float) -> float:
        """True peak performance at ``time``."""
        return self.height.value(time)


class SyntheticSystem:
    """A minimal plant for closed-loop controller experiments.

    Each :meth:`step` represents one measurement interval: the offered load
    is clipped at the controller's threshold, the (noisy) performance is
    evaluated at the realized load, and the controller is updated with the
    resulting measurement.
    """

    def __init__(self,
                 scenario: DynamicOptimumScenario,
                 controller: LoadController,
                 offered_load: float = math.inf,
                 interval: float = 1.0,
                 noise_std: float = 0.0,
                 load_noise_std: float = 0.0,
                 seed: int = 0):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if noise_std < 0 or load_noise_std < 0:
            raise ValueError("noise standard deviations must be non-negative")
        self.scenario = scenario
        self.controller = controller
        self.offered_load = float(offered_load)
        self.interval = float(interval)
        self.noise_std = float(noise_std)
        self.load_noise_std = float(load_noise_std)
        self.rng = np.random.default_rng(seed)
        self.time = 0.0
        self.trace = ControlTrace()
        self.reference_optima: list = []

    # ------------------------------------------------------------------
    def realized_load(self, limit: float) -> float:
        """Load that materializes under threshold ``limit`` this interval."""
        load = min(self.offered_load, limit)
        if self.load_noise_std > 0:
            load = load + float(self.rng.normal(0.0, self.load_noise_std))
        return max(0.0, load)

    def step(self) -> IntervalMeasurement:
        """Advance one measurement interval and update the controller."""
        self.time += self.interval
        function = self.scenario.function_at(self.time)
        limit = self.controller.current_limit
        load = self.realized_load(limit)
        performance = function.value(load)
        if self.noise_std > 0:
            performance = max(0.0, performance + float(self.rng.normal(0.0, self.noise_std)))
        measurement = IntervalMeasurement(
            time=self.time,
            interval_length=self.interval,
            throughput=performance,
            mean_concurrency=load,
            concurrency_at_sample=load,
            current_limit=limit,
            commits=int(round(performance * self.interval)),
        )
        new_limit = self.controller.update(measurement)
        self.trace.append(measurement, new_limit)
        self.reference_optima.append(self.scenario.optimum_at(self.time))
        return measurement

    def run(self, steps: int) -> ControlTrace:
        """Run ``steps`` intervals and return the control trace."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step()
        return self.trace
