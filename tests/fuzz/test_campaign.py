"""Tests for the campaign loop and the repro-fuzz CLI."""

import dataclasses

import pytest

from repro.experiments.config import ExperimentScale
from repro.fuzz import cli
from repro.fuzz.corpus import canonical_json, load_counterexample
from repro.fuzz.executor import FuzzReport, run_campaign
from repro.fuzz.generator import generate_candidates
from repro.fuzz.oracle import FailureThresholds
from repro.runner.cells import CellResult

#: a deliberately tiny scale: campaign determinism does not depend on run
#: length, so these tests trade statistical meaning for speed
TINY = ExperimentScale(
    stationary_horizon=3.0,
    warmup=1.0,
    offered_loads=(25,),
    tracking_horizon=20.0,
    measurement_interval=2.0,
    synthetic_steps=50,
)

#: thresholds strict enough that nearly every run is a counterexample —
#: used to exercise the archive path without depending on calibration
STRICT = FailureThresholds(rescue_fraction=0.95, min_commit_rate=0.5)


class StubExecutor:
    """Returns canned zero-throughput results without simulating."""

    def __init__(self):
        self.calls = 0

    def execute(self, function, items):
        self.calls += 1
        return [
            CellResult(cell_id=item.cell_id, kind=item.kind, replicate=0,
                       metrics={"throughput": 0.0, "commits": 0.0})
            for item in items
        ]


class TestCampaignWiring:
    def test_verdicts_follow_candidate_order(self):
        executor = StubExecutor()
        report = run_campaign(seed=1, budget=4, executor=executor)
        assert executor.calls == 1
        assert [v.cell_id for v in report.verdicts] == [
            cell.cell_id for _, cell in report.candidates
        ]

    def test_zero_throughput_runs_all_become_counterexamples(self):
        report = run_campaign(seed=1, budget=3, executor=StubExecutor())
        assert report.found == 3
        for counterexample in report.counterexamples:
            assert counterexample.verdict.failed
            assert "collapse" in counterexample.verdict.reasons

    def test_counterexamples_pair_adversary_with_its_lowered_cell(self):
        report = run_campaign(seed=1, budget=3, executor=StubExecutor())
        for counterexample in report.counterexamples:
            assert counterexample.spec.cell_id == counterexample.adversary.cell_id()

    def test_report_found_counts_counterexamples(self):
        report = FuzzReport(seed=1, budget=1)
        assert report.found == 0


class TestCampaignDeterminism:
    def test_two_campaigns_archive_byte_identical_counterexamples(self, tmp_path):
        from repro.fuzz.corpus import archive_counterexamples

        runs = []
        for label in ("a", "b"):
            report = run_campaign(seed=7, budget=2, scale=TINY,
                                  thresholds=STRICT, kinds=["hot_key"])
            paths = archive_counterexamples(report.counterexamples,
                                            tmp_path / label)
            runs.append({p.name: p.read_bytes() for p in paths})
        assert runs[0], "strict thresholds should make the tiny campaign fail"
        assert runs[0] == runs[1]

    def test_serial_and_parallel_campaigns_agree_bitwise(self):
        serial = run_campaign(seed=3, budget=2, scale=TINY, workers=0,
                              kinds=["arrival_burst"])
        parallel = run_campaign(seed=3, budget=2, scale=TINY, workers=2,
                                kinds=["arrival_burst"])
        assert [r.metrics for r in serial.results] == [
            r.metrics for r in parallel.results
        ]
        assert serial.verdicts == parallel.verdicts

    def test_campaign_candidates_match_the_generator(self):
        report = run_campaign(seed=5, budget=3, executor=StubExecutor())
        assert [a for a, _ in report.candidates] == generate_candidates(5, 3)


def make_report(found: bool) -> FuzzReport:
    report = run_campaign(seed=1, budget=2, executor=StubExecutor())
    if not found:
        report = dataclasses.replace(report, counterexamples=[])
    return report


class TestCli:
    def test_smoke_run_exits_zero_and_prints_verdicts(self, capsys, monkeypatch):
        monkeypatch.setattr(cli, "run_campaign",
                            lambda **kwargs: make_report(found=True))
        assert cli.main(["--seed", "1", "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "counterexample(s) in 2 candidates" in out
        assert "FAIL(" in out

    def test_archive_flag_writes_replayable_documents(self, tmp_path, monkeypatch):
        monkeypatch.setattr(cli, "run_campaign",
                            lambda **kwargs: make_report(found=True))
        corpus = tmp_path / "corpus"
        assert cli.main(["--budget", "2", "--archive", str(corpus)]) == 0
        paths = sorted(corpus.glob("*.json"))
        assert len(paths) == 2
        for path in paths:
            assert load_counterexample(path).verdict.failed

    def test_expect_counterexample_fails_an_empty_campaign(self, monkeypatch):
        monkeypatch.setattr(cli, "run_campaign",
                            lambda **kwargs: make_report(found=False))
        assert cli.main(["--budget", "2", "--expect-counterexample"]) == 1

    def test_expect_counterexample_passes_when_found(self, monkeypatch):
        monkeypatch.setattr(cli, "run_campaign",
                            lambda **kwargs: make_report(found=True))
        assert cli.main(["--budget", "2", "--expect-counterexample"]) == 0

    def test_threshold_flags_reach_the_campaign(self, monkeypatch):
        seen = {}

        def fake(**kwargs):
            seen.update(kwargs)
            return make_report(found=True)

        monkeypatch.setattr(cli, "run_campaign", fake)
        cli.main(["--rescue-fraction", "0.5", "--livelock-ratio", "2.0",
                  "--min-commit-rate", "1.0", "--kinds", "hot_key"])
        assert seen["thresholds"] == FailureThresholds(
            rescue_fraction=0.5, livelock_ratio=2.0, min_commit_rate=1.0)
        assert seen["kinds"] == ["hot_key"]

    def test_unknown_kind_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            cli.main(["--kinds", "meteor_strike"])


def test_campaign_report_encodes_canonically():
    # the full report's counterexamples encode identically across runs —
    # the property the committed corpus relies on
    reports = [run_campaign(seed=2, budget=3, executor=StubExecutor())
               for _ in range(2)]
    encodings = [
        canonical_json([c.to_jsonable() for c in report.counterexamples])
        for report in reports
    ]
    assert encodings[0] == encodings[1]
