"""Tests for the fixed-point model of the optimistic CC system."""

import pytest

from repro.analytic.occ import OccModel
from repro.experiments.config import contention_bound_params, default_system_params
from repro.tp.params import SystemParams, WorkloadParams


@pytest.fixture
def params():
    return default_system_params()


class TestOperatingPoint:
    def test_zero_mpl_means_zero_throughput(self, params):
        model = OccModel(params)
        point = model.evaluate(0.0)
        assert point.throughput == 0.0
        assert point.abort_probability == 0.0

    def test_light_load_has_negligible_aborts(self, params):
        model = OccModel(params)
        point = model.evaluate(1.0)
        assert point.abort_probability < 0.05
        assert point.throughput > 0

    def test_heavy_load_has_high_abort_probability(self, params):
        model = OccModel(params)
        light = model.evaluate(5.0)
        heavy = model.evaluate(400.0)
        assert heavy.abort_probability > light.abort_probability
        assert heavy.abort_probability > 0.3

    def test_throughput_bounded_by_cpu_capacity(self, params):
        model = OccModel(params)
        for mpl in (1, 10, 50, 200, 800):
            assert model.throughput(mpl) <= params.max_cpu_throughput + 1e-9

    def test_read_only_workload_never_aborts(self, params):
        read_only = params.with_changes(
            workload=params.workload.with_changes(query_fraction=1.0, write_fraction=0.0))
        model = OccModel(read_only)
        assert model.evaluate(500.0).abort_probability == 0.0

    def test_residence_time_grows_with_mpl(self, params):
        model = OccModel(params)
        assert model.evaluate(200.0).residence_time > model.evaluate(10.0).residence_time


class TestCurveShape:
    def test_curve_rises_then_falls(self, params):
        model = OccModel(params)
        levels = [2, 5, 10, 20, 50, 100, 200, 400, 800]
        curve = model.throughput_curve(levels)
        peak_index = curve.index(max(curve))
        assert 0 < peak_index < len(curve) - 1
        # thrashing: the end of the curve is clearly below the peak
        assert curve[-1] < 0.8 * max(curve)

    def test_optimal_mpl_is_interior(self, params):
        model = OccModel(params)
        optimum = model.optimal_mpl(lower=1.0, upper=800.0)
        assert 2.0 < optimum < 400.0
        # the optimum really is (near) the argmax of the modelled curve
        best = model.throughput(optimum)
        for other in (optimum * 0.25, optimum * 4.0):
            assert best >= model.throughput(other) - 1e-6

    def test_optimal_point_consistent(self, params):
        model = OccModel(params)
        point = model.optimal_point()
        assert point.throughput == pytest.approx(model.throughput(point.mpl), rel=1e-6)

    def test_larger_transactions_lower_peak_throughput(self):
        base = default_system_params()
        small = OccModel(base.with_changes(
            workload=base.workload.with_changes(accesses_per_txn=4)))
        large = OccModel(base.with_changes(
            workload=base.workload.with_changes(accesses_per_txn=16)))
        assert small.optimal_point().throughput > large.optimal_point().throughput

    def test_optimum_position_moves_in_contention_bound_config(self):
        base = contention_bound_params()
        small_k = OccModel(base.with_changes(
            workload=base.workload.with_changes(accesses_per_txn=4)))
        large_k = OccModel(base.with_changes(
            workload=base.workload.with_changes(accesses_per_txn=16)))
        optimum_small = small_k.optimal_mpl()
        optimum_large = large_k.optimal_mpl()
        # the paper's dynamic experiments rely on the optimum position moving
        # substantially when k changes
        assert optimum_large > 1.5 * optimum_small

    def test_more_writes_mean_more_aborts(self, params):
        few_writes = OccModel(params.with_changes(
            workload=params.workload.with_changes(write_fraction=0.1)))
        many_writes = OccModel(params.with_changes(
            workload=params.workload.with_changes(write_fraction=0.9)))
        assert many_writes.evaluate(100.0).abort_probability > \
            few_writes.evaluate(100.0).abort_probability

    def test_wasted_cpu_fraction_tracks_abort_probability(self, params):
        model = OccModel(params)
        point = model.evaluate(300.0)
        assert point.wasted_cpu_fraction == pytest.approx(point.abort_probability)
