"""Tests for the admission gate."""

import math

import pytest

from repro.core.admission import AdmissionGate, AdmissionShed
from repro.sim.engine import SimulationError, Simulator
from repro.tp.transaction import Transaction, TransactionClass


def make_txn(txn_id, tenant=""):
    return Transaction(
        txn_id=txn_id,
        terminal_id=0,
        txn_class=TransactionClass.QUERY,
        items=(txn_id,),
        write_flags=(False,),
        submitted_at=0.0,
        tenant=tenant,
    )


@pytest.fixture
def sim():
    return Simulator()


class TestAdmission:
    def test_limit_validation(self, sim):
        with pytest.raises(ValueError):
            AdmissionGate(sim, initial_limit=0)
        gate = AdmissionGate(sim, initial_limit=5)
        with pytest.raises(ValueError):
            gate.set_limit(0)

    def test_admits_immediately_below_limit(self, sim):
        gate = AdmissionGate(sim, initial_limit=3)
        events = [gate.submit(make_txn(i)) for i in range(3)]
        assert all(event.triggered for event in events)
        assert gate.current_load == 3
        assert gate.queue_length == 0

    def test_queues_beyond_limit(self, sim):
        gate = AdmissionGate(sim, initial_limit=2)
        for i in range(2):
            gate.submit(make_txn(i))
        waiting = gate.submit(make_txn(99))
        assert not waiting.triggered
        assert gate.queue_length == 1

    def test_departure_admits_next_waiter_fcfs(self, sim):
        gate = AdmissionGate(sim, initial_limit=1)
        first = make_txn(1)
        gate.submit(first)
        second_event = gate.submit(make_txn(2))
        third_event = gate.submit(make_txn(3))
        gate.depart(first)
        assert second_event.triggered
        assert not third_event.triggered
        assert gate.current_load == 1

    def test_departure_of_unknown_transaction_raises(self, sim):
        gate = AdmissionGate(sim)
        with pytest.raises(SimulationError):
            gate.depart(make_txn(1))

    def test_raising_the_limit_admits_waiters(self, sim):
        gate = AdmissionGate(sim, initial_limit=1)
        gate.submit(make_txn(1))
        waiting = [gate.submit(make_txn(i)) for i in range(2, 6)]
        gate.set_limit(3)
        assert sum(event.triggered for event in waiting) == 2
        assert gate.current_load == 3

    def test_lowering_the_limit_does_not_evict(self, sim):
        gate = AdmissionGate(sim, initial_limit=5)
        transactions = [make_txn(i) for i in range(5)]
        for txn in transactions:
            gate.submit(txn)
        gate.set_limit(2)
        assert gate.current_load == 5  # admission control alone never aborts
        # but departures do not re-admit until the load drops below the limit
        gate.depart(transactions[0])
        assert gate.current_load == 4

    def test_admitted_at_is_stamped(self, sim):
        gate = AdmissionGate(sim, initial_limit=1)
        sim._now = 3.5
        txn = make_txn(1)
        gate.submit(txn)
        assert txn.admitted_at == 3.5

    def test_fcfs_order_preserved_across_limit_changes(self, sim):
        gate = AdmissionGate(sim, initial_limit=1)
        gate.submit(make_txn(0))
        events = [gate.submit(make_txn(i)) for i in range(1, 5)]
        gate.set_limit(2)
        assert events[0].triggered
        assert not events[1].triggered
        gate.set_limit(4)
        assert events[1].triggered and events[2].triggered
        assert not events[3].triggered

    def test_cancel_waiting_transaction(self, sim):
        gate = AdmissionGate(sim, initial_limit=1)
        first = make_txn(1)
        gate.submit(first)
        waiting = make_txn(2)
        event = gate.submit(waiting)
        assert gate.cancel(waiting) is True
        assert gate.queue_length == 0
        assert event.triggered and not event.ok
        # cancelling something that is not queued is a no-op
        assert gate.cancel(make_txn(3)) is False

    def test_infinite_limit_never_queues(self, sim):
        gate = AdmissionGate(sim)
        for i in range(100):
            gate.submit(make_txn(i))
        assert gate.queue_length == 0
        assert gate.current_load == 100


class TestTenantQuotas:
    def test_admission_quota_caps_a_tenant_below_the_global_limit(self, sim):
        gate = AdmissionGate(sim, initial_limit=10, tenant_quotas={"burst": 2})
        events = [gate.submit(make_txn(i, tenant="burst")) for i in range(4)]
        assert [event.triggered for event in events] == [True, True, False, False]
        assert gate.admitted_of_tenant("burst") == 2
        assert gate.waiting_of_tenant("burst") == 2

    def test_unquota_tenants_are_unaffected_by_other_quotas(self, sim):
        gate = AdmissionGate(sim, initial_limit=10, tenant_quotas={"burst": 1})
        gate.submit(make_txn(0, tenant="burst"))
        gate.submit(make_txn(1, tenant="burst"))          # queued: over quota
        steady = gate.submit(make_txn(2, tenant="steady"))
        assert steady.triggered
        assert gate.admitted_of_tenant("steady") == 1

    def test_fcfs_among_eligible_skips_over_quota_heads(self, sim):
        """An over-quota waiter at the head must not stall eligible tenants
        behind it (head-of-line blocking would couple the tenants)."""
        gate = AdmissionGate(sim, initial_limit=10, tenant_quotas={"burst": 1})
        gate.submit(make_txn(0, tenant="burst"))
        blocked = gate.submit(make_txn(1, tenant="burst"))
        eligible = gate.submit(make_txn(2, tenant="steady"))
        assert not blocked.triggered
        assert eligible.triggered

    def test_departure_readmits_the_over_quota_waiter(self, sim):
        gate = AdmissionGate(sim, initial_limit=10, tenant_quotas={"burst": 1})
        first = make_txn(0, tenant="burst")
        gate.submit(first)
        waiting = gate.submit(make_txn(1, tenant="burst"))
        gate.depart(first)
        assert waiting.triggered
        assert gate.admitted_of_tenant("burst") == 1

    def test_queue_quota_sheds_with_a_failed_event(self, sim):
        gate = AdmissionGate(sim, initial_limit=1,
                             tenant_queue_quotas={"burst": 1})
        gate.submit(make_txn(0, tenant="burst"))       # admitted
        gate.submit(make_txn(1, tenant="burst"))       # queued (quota 1)
        shed = gate.submit(make_txn(2, tenant="burst"))
        assert shed.triggered and not shed.ok
        assert isinstance(shed._exception, AdmissionShed)
        assert gate.total_shed == 1
        assert gate.shed_by_tenant == {"burst": 1}
        assert gate.queue_length == 1

    def test_shedding_is_per_tenant(self, sim):
        gate = AdmissionGate(sim, initial_limit=1,
                             tenant_queue_quotas={"burst": 0})
        gate.submit(make_txn(0, tenant="steady"))      # fills the system
        shed = gate.submit(make_txn(1, tenant="burst"))
        queued = gate.submit(make_txn(2, tenant="steady"))
        assert shed.triggered and not shed.ok
        assert not queued.triggered                    # queued, not shed
        assert gate.shed_by_tenant == {"burst": 1}

    def test_conservation_with_quotas(self, sim):
        gate = AdmissionGate(sim, initial_limit=2, tenant_quotas={"a": 1},
                             tenant_queue_quotas={"a": 1})
        transactions = [make_txn(i, tenant="a" if i % 2 else "b")
                        for i in range(8)]
        outcomes = [gate.submit(txn) for txn in transactions]
        for txn, event in zip(transactions, outcomes):
            if event.triggered and event.ok:
                gate.depart(txn)
        submitted = len(transactions)
        assert (gate.total_admitted + gate.total_shed + gate.queue_length
                == submitted)
        assert gate.current_load == gate.total_admitted - gate.total_departed

    def test_cancel_decrements_tenant_waiting_count(self, sim):
        gate = AdmissionGate(sim, initial_limit=1, tenant_quotas={"a": 1})
        gate.submit(make_txn(0, tenant="a"))
        waiting = make_txn(1, tenant="a")
        gate.submit(waiting)
        assert gate.waiting_of_tenant("a") == 1
        assert gate.cancel(waiting) is True
        assert gate.waiting_of_tenant("a") == 0

    def test_quota_free_gate_has_no_tenant_tracking_overhead(self, sim):
        gate = AdmissionGate(sim, initial_limit=2)
        gate.submit(make_txn(0, tenant="a"))
        assert gate._tenant_tracking is False
        assert gate.admitted_of_tenant("a") == 0       # bookkeeping skipped


class TestGateStatistics:
    def test_counters(self, sim):
        gate = AdmissionGate(sim, initial_limit=2)
        transactions = [make_txn(i) for i in range(3)]
        for txn in transactions:
            gate.submit(txn)
        gate.depart(transactions[0])
        assert gate.total_admitted == 3  # the third was admitted after the departure
        assert gate.total_departed == 1

    def test_mean_load_time_weighted(self, sim):
        gate = AdmissionGate(sim, initial_limit=10)
        txn = make_txn(1)
        gate.submit(txn)          # load 1 from t=0
        sim._now = 4.0
        gate.depart(txn)          # load 0 from t=4
        sim._now = 8.0
        assert gate.mean_load() == pytest.approx(0.5)

    def test_reset_statistics(self, sim):
        gate = AdmissionGate(sim, initial_limit=10)
        txn = make_txn(1)
        gate.submit(txn)
        sim._now = 4.0
        gate.reset_statistics()
        sim._now = 8.0
        assert gate.mean_load() == pytest.approx(1.0)
