"""Tests for the displacement policy (victim selection)."""

import math

import pytest

from repro.core.displacement import DisplacementPolicy, VictimCriterion
from repro.tp.transaction import Transaction, TransactionClass


def make_txn(txn_id, admitted_at, read_only=False, touched=0):
    txn = Transaction(
        txn_id=txn_id,
        terminal_id=0,
        txn_class=TransactionClass.QUERY if read_only else TransactionClass.UPDATER,
        items=(txn_id,),
        write_flags=(False,) if read_only else (True,),
        submitted_at=admitted_at,
    )
    txn.admitted_at = admitted_at
    txn.read_set = set(range(touched))
    return txn


class TestSelection:
    def test_no_victims_when_disabled(self):
        policy = DisplacementPolicy(enabled=False)
        active = [make_txn(i, float(i)) for i in range(10)]
        assert policy.select_victims(active, new_limit=2) == []

    def test_no_victims_when_under_limit(self):
        policy = DisplacementPolicy()
        active = [make_txn(i, float(i)) for i in range(3)]
        assert policy.select_victims(active, new_limit=5) == []

    def test_no_victims_for_infinite_limit(self):
        policy = DisplacementPolicy()
        active = [make_txn(i, float(i)) for i in range(3)]
        assert policy.select_victims(active, new_limit=math.inf) == []

    def test_selects_exactly_the_overshoot(self):
        policy = DisplacementPolicy()
        active = [make_txn(i, float(i)) for i in range(10)]
        victims = policy.select_victims(active, new_limit=6)
        assert len(victims) == 4

    def test_youngest_first(self):
        policy = DisplacementPolicy(criterion=VictimCriterion.YOUNGEST)
        active = [make_txn(i, admitted_at=float(i)) for i in range(5)]
        victims = policy.select_victims(active, new_limit=3)
        assert [victim.txn_id for victim in victims] == [4, 3]

    def test_oldest_first(self):
        policy = DisplacementPolicy(criterion=VictimCriterion.OLDEST)
        active = [make_txn(i, admitted_at=float(i)) for i in range(5)]
        victims = policy.select_victims(active, new_limit=3)
        assert [victim.txn_id for victim in victims] == [0, 1]

    def test_least_work_first(self):
        policy = DisplacementPolicy(criterion=VictimCriterion.LEAST_WORK)
        active = [make_txn(i, 0.0, touched=i) for i in range(5)]
        victims = policy.select_victims(active, new_limit=3)
        assert [victim.txn_id for victim in victims] == [0, 1]

    def test_queries_first(self):
        policy = DisplacementPolicy(criterion=VictimCriterion.QUERIES_FIRST)
        active = [
            make_txn(0, admitted_at=0.0, read_only=False),
            make_txn(1, admitted_at=1.0, read_only=True),
            make_txn(2, admitted_at=2.0, read_only=False),
            make_txn(3, admitted_at=3.0, read_only=True),
        ]
        victims = policy.select_victims(active, new_limit=2)
        assert {victim.txn_id for victim in victims} == {1, 3}

    def test_hysteresis_suppresses_small_overshoot(self):
        policy = DisplacementPolicy(hysteresis=2)
        active = [make_txn(i, float(i)) for i in range(6)]
        assert policy.select_victims(active, new_limit=4) == []
        victims = policy.select_victims(active, new_limit=2)
        assert len(victims) == 4

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            DisplacementPolicy(hysteresis=-1)

    def test_total_displaced_counter(self):
        policy = DisplacementPolicy()
        active = [make_txn(i, float(i)) for i in range(10)]
        policy.select_victims(active, new_limit=5)
        policy.select_victims(active, new_limit=8)
        assert policy.total_displaced == 7
