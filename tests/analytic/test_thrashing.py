"""Tests for thrashing-curve classification helpers."""

import math

import pytest

from repro.analytic.synthetic import SyntheticOverloadFunction
from repro.analytic.thrashing import classify_phases, find_optimum, thrashing_onset


def thrashing_curve():
    """A synthetic figure-1 shaped curve sampled at a few loads."""
    function = SyntheticOverloadFunction(optimum_position=100.0, peak_performance=60.0,
                                         overload_decay=1.2)
    return [(load, function.value(load)) for load in range(10, 400, 20)]


def saturating_curve():
    """A curve that saturates but never drops (no thrashing)."""
    return [(float(load), 60.0 * (1.0 - math.exp(-load / 40.0))) for load in range(10, 400, 20)]


class TestFindOptimum:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            find_optimum([])

    def test_finds_peak_of_thrashing_curve(self):
        load, value = find_optimum(thrashing_curve())
        assert 70 <= load <= 130
        assert value == pytest.approx(60.0, rel=0.05)

    def test_saturating_curve_peak_at_the_end(self):
        load, _value = find_optimum(saturating_curve())
        assert load == 390.0

    def test_input_order_does_not_matter(self):
        curve = thrashing_curve()
        assert find_optimum(curve) == find_optimum(list(reversed(curve)))


class TestThrashingOnset:
    def test_detects_onset_beyond_optimum(self):
        onset = thrashing_onset(thrashing_curve(), drop_fraction=0.2)
        optimum_load, _ = find_optimum(thrashing_curve())
        assert onset > optimum_load
        assert math.isfinite(onset)

    def test_no_onset_for_saturating_curve(self):
        assert thrashing_onset(saturating_curve()) == math.inf

    def test_drop_fraction_validation(self):
        with pytest.raises(ValueError):
            thrashing_onset(thrashing_curve(), drop_fraction=0.0)
        with pytest.raises(ValueError):
            thrashing_onset(thrashing_curve(), drop_fraction=1.0)

    def test_larger_drop_fraction_detected_later(self):
        early = thrashing_onset(thrashing_curve(), drop_fraction=0.1)
        late = thrashing_onset(thrashing_curve(), drop_fraction=0.5)
        assert late >= early


class TestClassifyPhases:
    def test_three_phases_present_in_thrashing_curve(self):
        phases = classify_phases(thrashing_curve())
        assert phases.underload
        assert phases.saturation
        assert phases.overload
        assert phases.has_thrashing

    def test_no_overload_phase_in_saturating_curve(self):
        phases = classify_phases(saturating_curve())
        assert not phases.has_thrashing

    def test_every_point_classified_exactly_once(self):
        curve = thrashing_curve()
        phases = classify_phases(curve)
        total = len(phases.underload) + len(phases.saturation) + len(phases.overload)
        assert total == len(curve)

    def test_optimum_recorded(self):
        phases = classify_phases(thrashing_curve())
        assert phases.peak_throughput == pytest.approx(60.0, rel=0.05)
        assert 70 <= phases.optimum_load <= 130

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            classify_phases(thrashing_curve(), saturation_fraction=0.0)
        with pytest.raises(ValueError):
            classify_phases(thrashing_curve(), overload_fraction=1.5)

    def test_underload_points_precede_optimum(self):
        phases = classify_phases(thrashing_curve())
        for load, _value in phases.underload:
            assert load <= phases.optimum_load

    def test_overload_points_follow_optimum(self):
        phases = classify_phases(thrashing_curve())
        for load, _value in phases.overload:
            assert load > phases.optimum_load
