"""Tests for the tracking-error metrics."""

import math

import pytest

from repro.core.types import ControlTrace, IntervalMeasurement
from repro.experiments.dynamic import TrackingResult
from repro.experiments.tracking import compute_tracking_metrics


def build_result(times, limits, optima, throughputs=None, peaks=None):
    trace = ControlTrace()
    throughputs = throughputs or [50.0] * len(times)
    for time, limit, throughput in zip(times, limits, throughputs):
        measurement = IntervalMeasurement(
            time=time, interval_length=1.0, throughput=throughput,
            mean_concurrency=limit, concurrency_at_sample=limit,
            current_limit=limit, commits=int(throughput))
        trace.append(measurement, limit)
    return TrackingResult(
        controller="test",
        varied_parameter="accesses",
        trace=trace,
        reference_optima=list(optima),
        reference_peaks=list(peaks or [60.0] * len(times)),
        total_commits=1000,
    )


class TestTrackingMetrics:
    def test_perfect_tracking_zero_error(self):
        result = build_result(times=[1, 2, 3, 4], limits=[10, 20, 30, 40],
                              optima=[10, 20, 30, 40])
        metrics = compute_tracking_metrics(result)
        assert metrics.mean_absolute_error == 0.0
        assert metrics.max_absolute_error == 0.0
        assert metrics.samples == 4

    def test_constant_offset_error(self):
        result = build_result(times=[1, 2, 3], limits=[15, 25, 35], optima=[10, 20, 30])
        metrics = compute_tracking_metrics(result)
        assert metrics.mean_absolute_error == pytest.approx(5.0)
        assert metrics.max_absolute_error == pytest.approx(5.0)
        assert metrics.mean_relative_error == pytest.approx((0.5 + 0.25 + 5 / 30) / 3)

    def test_evaluate_after_drops_transient(self):
        result = build_result(times=[1, 2, 3, 4], limits=[100, 100, 10, 10],
                              optima=[10, 10, 10, 10])
        full = compute_tracking_metrics(result)
        settled = compute_tracking_metrics(result, evaluate_after=2.5)
        assert settled.mean_absolute_error < full.mean_absolute_error
        assert settled.samples == 2

    def test_evaluate_after_everything_raises(self):
        result = build_result(times=[1, 2], limits=[1, 2], optima=[1, 2])
        with pytest.raises(ValueError):
            compute_tracking_metrics(result, evaluate_after=100.0)

    def test_settling_time_measured_from_disturbance(self):
        times = list(range(1, 11))
        optima = [10] * 5 + [50] * 5
        limits = [10, 10, 10, 10, 10, 20, 35, 48, 50, 50]
        result = build_result(times=times, limits=limits, optima=optima)
        metrics = compute_tracking_metrics(result, disturbance_time=5.0,
                                           settle_tolerance=0.1)
        # the threshold enters the 10% band around 50 at t=8 and stays there
        assert metrics.settling_time == pytest.approx(3.0)

    def test_settling_time_infinite_if_never_settles(self):
        result = build_result(times=[1, 2, 3], limits=[5, 5, 5], optima=[50, 50, 50])
        metrics = compute_tracking_metrics(result, disturbance_time=1.0)
        assert metrics.settling_time == math.inf

    def test_settling_requires_staying_in_band(self):
        times = [1, 2, 3, 4, 5]
        optima = [50] * 5
        limits = [50, 90, 50, 50, 50]  # dips out of the band at t=2
        result = build_result(times=times, limits=limits, optima=optima)
        metrics = compute_tracking_metrics(result, disturbance_time=1.0,
                                           settle_tolerance=0.1)
        assert metrics.settling_time == pytest.approx(2.0)

    def test_no_disturbance_means_zero_settling_time(self):
        result = build_result(times=[1, 2], limits=[10, 10], optima=[10, 10])
        assert compute_tracking_metrics(result).settling_time == 0.0

    def test_throughput_ratio(self):
        result = build_result(times=[1, 2], limits=[10, 10], optima=[10, 10],
                              throughputs=[30.0, 30.0], peaks=[60.0, 60.0])
        metrics = compute_tracking_metrics(result)
        assert metrics.throughput_ratio == pytest.approx(0.5)

    def test_tolerance_validation(self):
        result = build_result(times=[1], limits=[1], optima=[1])
        with pytest.raises(ValueError):
            compute_tracking_metrics(result, settle_tolerance=0.0)

    def test_empty_result_rejected(self):
        result = build_result(times=[], limits=[], optima=[])
        with pytest.raises(ValueError):
            compute_tracking_metrics(result)
