"""Tests for the optimistic timestamp certification scheme."""

import pytest

from repro.cc.base import AbortReason
from repro.cc.timestamp_cert import TimestampCertification
from repro.sim.engine import Simulator
from repro.tp.transaction import Transaction, TransactionClass


def make_txn(txn_id, items, writes=(), terminal_id=0):
    """Build an updater transaction over ``items`` writing ``writes``."""
    flags = tuple(item in writes for item in items)
    cls = TransactionClass.UPDATER if any(flags) else TransactionClass.QUERY
    return Transaction(
        txn_id=txn_id,
        terminal_id=terminal_id,
        txn_class=cls,
        items=tuple(items),
        write_flags=flags,
    )


def run_accesses(cc, txn):
    """Record all of a transaction's accesses with the CC scheme."""
    for item, is_write in txn.accesses:
        event = cc.access(txn, item, is_write)
        assert event is None  # optimistic schemes never block


class TestCertification:
    def test_non_conflicting_transactions_commit(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        first = make_txn(1, [1, 2], writes=[2])
        second = make_txn(2, [3, 4], writes=[4])
        for txn in (first, second):
            txn.start_execution(sim.now)
            cc.begin(txn)
            run_accesses(cc, txn)
        assert cc.try_commit(first) is True
        cc.finish(first)
        assert cc.try_commit(second) is True
        cc.finish(second)
        assert cc.certification_failures == 0

    def test_read_write_conflict_aborts_the_later_committer(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        reader = make_txn(1, [5])
        writer = make_txn(2, [5], writes=[5])
        for txn in (reader, writer):
            txn.start_execution(sim.now)
            cc.begin(txn)
            run_accesses(cc, txn)
        sim._now = 1.0  # advance time so commit timestamps exceed start times
        assert cc.try_commit(writer) is True
        cc.finish(writer)
        # the reader's read of item 5 has been invalidated by the commit
        assert cc.try_commit(reader) is False
        assert reader.last_conflicts == 1
        cc.abort(reader, AbortReason.CERTIFICATION)
        assert cc.certification_failures == 1

    def test_restarted_execution_can_commit_after_conflict(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        writer = make_txn(1, [7], writes=[7])
        victim = make_txn(2, [7])
        for txn in (writer, victim):
            txn.start_execution(sim.now)
            cc.begin(txn)
            run_accesses(cc, txn)
        sim._now = 1.0
        assert cc.try_commit(writer)
        cc.finish(writer)
        assert not cc.try_commit(victim)
        cc.abort(victim, AbortReason.CERTIFICATION)
        # restart after the conflicting commit: new start timestamp
        sim._now = 2.0
        victim.start_execution(sim.now)
        cc.begin(victim)
        run_accesses(cc, victim)
        sim._now = 3.0
        assert cc.try_commit(victim) is True

    def test_write_write_conflict_detected_via_read_set(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        first = make_txn(1, [9], writes=[9])
        second = make_txn(2, [9], writes=[9])
        for txn in (first, second):
            txn.start_execution(sim.now)
            cc.begin(txn)
            run_accesses(cc, txn)
        sim._now = 1.0
        assert cc.try_commit(first)
        cc.finish(first)
        assert cc.try_commit(second) is False

    def test_write_read_conflict_detected(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        reader = make_txn(1, [3])
        writer = make_txn(2, [3], writes=[3])
        for txn in (reader, writer):
            txn.start_execution(sim.now)
            cc.begin(txn)
            run_accesses(cc, txn)
        sim._now = 1.0
        assert cc.try_commit(reader)
        cc.finish(reader)
        # the writer wants to write an item a concurrent transaction read and
        # committed after the writer's start
        assert cc.try_commit(writer) is False

    def test_disjoint_transactions_never_conflict(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        transactions = [make_txn(i, [i * 10, i * 10 + 1], writes=[i * 10]) for i in range(10)]
        for txn in transactions:
            txn.start_execution(sim.now)
            cc.begin(txn)
            run_accesses(cc, txn)
        sim._now = 1.0
        for txn in transactions:
            assert cc.try_commit(txn) is True
            cc.finish(txn)
        assert cc.failure_fraction == 0.0

    def test_commit_without_begin_raises(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        orphan = make_txn(1, [1])
        orphan.start_execution(sim.now)
        with pytest.raises(RuntimeError):
            cc.try_commit(orphan)

    def test_active_count_tracks_begin_and_end(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        txn = make_txn(1, [1], writes=[1])
        txn.start_execution(sim.now)
        cc.begin(txn)
        assert cc.active_count() == 1
        run_accesses(cc, txn)
        assert cc.try_commit(txn)
        cc.finish(txn)
        assert cc.active_count() == 0

    def test_abort_clears_active_registration(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        txn = make_txn(1, [1], writes=[1])
        txn.start_execution(sim.now)
        cc.begin(txn)
        cc.abort(txn, AbortReason.DISPLACEMENT)
        assert cc.active_count() == 0

    def test_reset_clears_history(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        writer = make_txn(1, [5], writes=[5])
        writer.start_execution(sim.now)
        cc.begin(writer)
        run_accesses(cc, writer)
        sim._now = 1.0
        cc.try_commit(writer)
        cc.finish(writer)
        cc.reset()
        # a fresh reader of the same item no longer conflicts with anything
        reader = make_txn(2, [5])
        reader.start_execution(sim.now)
        cc.begin(reader)
        run_accesses(cc, reader)
        assert cc.try_commit(reader) is True
        assert cc.certifications == 1

    def test_commit_timestamps_strictly_increase_within_an_instant(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        first = make_txn(1, [1], writes=[1])
        first.start_execution(sim.now)
        cc.begin(first)
        run_accesses(cc, first)
        assert cc.try_commit(first)
        cc.finish(first)
        # a transaction starting at the same instant but after the commit
        # must see the conflict (the tie is broken by the logical counter)
        second = make_txn(2, [1])
        second.start_execution(sim.now)
        cc.begin(second)
        run_accesses(cc, second)
        assert cc.try_commit(second) is False

    def test_failure_fraction_reporting(self):
        sim = Simulator()
        cc = TimestampCertification(sim)
        assert cc.failure_fraction == 0.0
        writer = make_txn(1, [2], writes=[2])
        loser = make_txn(2, [2])
        for txn in (writer, loser):
            txn.start_execution(sim.now)
            cc.begin(txn)
            run_accesses(cc, txn)
        sim._now = 1.0
        cc.try_commit(writer)
        cc.finish(writer)
        cc.try_commit(loser)
        assert cc.failure_fraction == pytest.approx(0.5)
