"""Tests for strict two-phase locking with deadlock detection."""

import pytest

from repro.cc.base import AbortReason, TransactionAborted
from repro.cc.two_phase_locking import LockMode, TwoPhaseLocking
from repro.sim.engine import Simulator
from repro.tp.transaction import Transaction, TransactionClass


def make_txn(txn_id, items, writes=()):
    flags = tuple(item in writes for item in items)
    cls = TransactionClass.UPDATER if any(flags) else TransactionClass.QUERY
    return Transaction(
        txn_id=txn_id,
        terminal_id=0,
        txn_class=cls,
        items=tuple(items),
        write_flags=flags,
    )


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cc(sim):
    return TwoPhaseLocking(sim)


class TestLockGranting:
    def test_shared_locks_are_compatible(self, sim, cc):
        first = make_txn(1, [10])
        second = make_txn(2, [10])
        cc.begin(first)
        cc.begin(second)
        assert cc.access(first, 10, is_write=False) is None
        assert cc.access(second, 10, is_write=False) is None
        assert set(cc.holders_of(10)) == {1, 2}

    def test_exclusive_lock_blocks_second_writer(self, sim, cc):
        first = make_txn(1, [10], writes=[10])
        second = make_txn(2, [10], writes=[10])
        cc.begin(first)
        cc.begin(second)
        assert cc.access(first, 10, is_write=True) is None
        wait = cc.access(second, 10, is_write=True)
        assert wait is not None
        assert not wait.triggered
        assert cc.blocked_count == 1

    def test_exclusive_lock_blocks_reader(self, sim, cc):
        writer = make_txn(1, [3], writes=[3])
        reader = make_txn(2, [3])
        cc.begin(writer)
        cc.begin(reader)
        assert cc.access(writer, 3, is_write=True) is None
        assert cc.access(reader, 3, is_write=False) is not None

    def test_reader_blocks_writer(self, sim, cc):
        reader = make_txn(1, [3])
        writer = make_txn(2, [3], writes=[3])
        cc.begin(reader)
        cc.begin(writer)
        assert cc.access(reader, 3, is_write=False) is None
        assert cc.access(writer, 3, is_write=True) is not None

    def test_release_at_commit_grants_waiter(self, sim, cc):
        first = make_txn(1, [10], writes=[10])
        second = make_txn(2, [10], writes=[10])
        cc.begin(first)
        cc.begin(second)
        cc.access(first, 10, is_write=True)
        wait = cc.access(second, 10, is_write=True)
        assert cc.try_commit(first) is True
        cc.finish(first)
        assert wait.triggered and wait.ok
        assert set(cc.holders_of(10)) == {2}

    def test_reacquiring_a_held_lock_is_immediate(self, sim, cc):
        txn = make_txn(1, [4], writes=[4])
        cc.begin(txn)
        assert cc.access(txn, 4, is_write=True) is None
        assert cc.access(txn, 4, is_write=False) is None
        assert cc.access(txn, 4, is_write=True) is None

    def test_lock_upgrade_when_sole_holder(self, sim, cc):
        txn = make_txn(1, [4], writes=[4])
        cc.begin(txn)
        assert cc.access(txn, 4, is_write=False) is None
        assert cc.access(txn, 4, is_write=True) is None
        assert cc.holders_of(4)[1] is LockMode.EXCLUSIVE

    def test_lock_upgrade_waits_for_other_readers(self, sim, cc):
        upgrader = make_txn(1, [4], writes=[4])
        reader = make_txn(2, [4])
        cc.begin(upgrader)
        cc.begin(reader)
        cc.access(upgrader, 4, is_write=False)
        cc.access(reader, 4, is_write=False)
        wait = cc.access(upgrader, 4, is_write=True)
        assert wait is not None
        cc.finish(reader)
        assert wait.triggered and wait.ok
        assert cc.holders_of(4)[1] is LockMode.EXCLUSIVE

    def test_fcfs_no_barging_past_waiters(self, sim, cc):
        writer = make_txn(1, [5], writes=[5])
        waiting_writer = make_txn(2, [5], writes=[5])
        late_reader = make_txn(3, [5])
        for txn in (writer, waiting_writer, late_reader):
            cc.begin(txn)
        cc.access(writer, 5, is_write=True)
        cc.access(waiting_writer, 5, is_write=True)
        # the late reader must queue behind the waiting writer, not barge in
        wait = cc.access(late_reader, 5, is_write=False)
        assert wait is not None
        cc.finish(writer)
        assert set(cc.holders_of(5)) == {2}

    def test_two_commits_release_everything(self, sim, cc):
        first = make_txn(1, [1, 2], writes=[1])
        second = make_txn(2, [3, 4], writes=[4])
        for txn in (first, second):
            cc.begin(txn)
            for item, is_write in txn.accesses:
                assert cc.access(txn, item, is_write) is None
            assert cc.try_commit(txn) is True
            cc.finish(txn)
        for item in (1, 2, 3, 4):
            assert cc.holders_of(item) == {}
        assert cc.active_count() == 0


class TestDeadlockHandling:
    def test_two_transaction_deadlock_detected(self, sim, cc):
        sim._now = 0.0
        first = make_txn(1, [1, 2], writes=[1, 2])
        cc.begin(first)
        sim._now = 1.0
        second = make_txn(2, [1, 2], writes=[1, 2])
        cc.begin(second)
        cc.access(first, 1, is_write=True)
        cc.access(second, 2, is_write=True)
        wait_first = cc.access(first, 2, is_write=True)
        assert wait_first is not None and not wait_first.triggered
        wait_second = cc.access(second, 1, is_write=True)
        # the younger transaction (second) is chosen as the victim
        assert cc.deadlocks == 1
        assert wait_second.triggered and not wait_second.ok
        assert isinstance(wait_second.exception, TransactionAborted)
        assert wait_second.exception.reason is AbortReason.DEADLOCK

    def test_victim_abort_unblocks_the_survivor(self, sim, cc):
        first = make_txn(1, [1, 2], writes=[1, 2])
        cc.begin(first)
        sim._now = 1.0
        second = make_txn(2, [1, 2], writes=[1, 2])
        cc.begin(second)
        cc.access(first, 1, is_write=True)
        cc.access(second, 2, is_write=True)
        wait_first = cc.access(first, 2, is_write=True)
        cc.access(second, 1, is_write=True)  # triggers deadlock, second is victim
        cc.abort(second, AbortReason.DEADLOCK)
        assert wait_first.triggered and wait_first.ok
        assert cc.holders_of(2)[1] is LockMode.EXCLUSIVE

    def test_oldest_victim_policy(self, sim):
        cc = TwoPhaseLocking(sim, victim_policy="oldest")
        first = make_txn(1, [1, 2], writes=[1, 2])
        cc.begin(first)
        sim._now = 1.0
        second = make_txn(2, [1, 2], writes=[1, 2])
        cc.begin(second)
        cc.access(first, 1, is_write=True)
        cc.access(second, 2, is_write=True)
        wait_first = cc.access(first, 2, is_write=True)
        cc.access(second, 1, is_write=True)
        # with the "oldest" policy the first transaction is sacrificed
        assert wait_first.triggered and not wait_first.ok

    def test_invalid_victim_policy_rejected(self, sim):
        with pytest.raises(ValueError):
            TwoPhaseLocking(sim, victim_policy="random")

    def test_three_way_deadlock_detected(self, sim, cc):
        transactions = []
        for txn_id in (1, 2, 3):
            sim._now = float(txn_id)
            txn = make_txn(txn_id, [txn_id, txn_id % 3 + 1], writes=[txn_id, txn_id % 3 + 1])
            cc.begin(txn)
            transactions.append(txn)
        # each transaction locks its own granule ...
        for txn in transactions:
            assert cc.access(txn, txn.txn_id, is_write=True) is None
        # ... and then requests its right neighbour's: 1->2, 2->3, 3->1
        waits = []
        for txn in transactions:
            waits.append(cc.access(txn, txn.txn_id % 3 + 1, is_write=True))
        assert cc.deadlocks >= 1
        failed = [wait for wait in waits if wait is not None and wait.triggered and not wait.ok]
        assert len(failed) == 1

    def test_no_false_deadlock_for_simple_waiting(self, sim, cc):
        holder = make_txn(1, [1], writes=[1])
        waiter = make_txn(2, [1], writes=[1])
        cc.begin(holder)
        cc.begin(waiter)
        cc.access(holder, 1, is_write=True)
        cc.access(waiter, 1, is_write=True)
        assert cc.deadlocks == 0

    def test_abort_of_waiter_cleans_up_queue(self, sim, cc):
        holder = make_txn(1, [1], writes=[1])
        waiter = make_txn(2, [1], writes=[1])
        cc.begin(holder)
        cc.begin(waiter)
        cc.access(holder, 1, is_write=True)
        cc.access(waiter, 1, is_write=True)
        cc.abort(waiter, AbortReason.DISPLACEMENT)
        assert cc.blocked_count == 0
        cc.finish(holder)
        assert cc.holders_of(1) == {}

    def test_statistics_counters(self, sim, cc):
        first = make_txn(1, [1], writes=[1])
        second = make_txn(2, [1], writes=[1])
        cc.begin(first)
        cc.begin(second)
        cc.access(first, 1, is_write=True)
        cc.access(second, 1, is_write=True)
        assert cc.lock_requests == 2
        assert cc.lock_waits == 1

    def test_reset_clears_lock_table(self, sim, cc):
        txn = make_txn(1, [1], writes=[1])
        cc.begin(txn)
        cc.access(txn, 1, is_write=True)
        cc.reset()
        assert cc.holders_of(1) == {}
        assert cc.active_count() == 0
        assert cc.lock_requests == 0


class TestTwoPhaseLockingInSimulation:
    def test_blocking_execution_with_processes(self, sim, cc):
        """Two conflicting writers executed as processes serialise correctly."""
        order = []

        def run(txn):
            cc.begin(txn)
            for item, is_write in txn.accesses:
                grant = cc.access(txn, item, is_write)
                if grant is not None:
                    yield grant
                yield sim.timeout(1.0)
            assert cc.try_commit(txn)
            cc.finish(txn)
            order.append((txn.txn_id, sim.now))

        sim.process(run(make_txn(1, [7, 8], writes=[7, 8])))
        sim.process(run(make_txn(2, [7, 9], writes=[7, 9])))
        sim.run(until=20.0)
        assert len(order) == 2
        # the second writer cannot finish before the first released item 7
        assert order[0][0] == 1
        assert order[1][1] > order[0][1]
