"""The serializability oracle: every registered scheme, one checker.

Instead of per-scheme hand-written assertions, the whole family is
certified the history-based way (HISTEX / AWDIT style): an opt-in
recorder observes each scheme through the public
:class:`~repro.cc.base.ConcurrencyControl` surface while the *real*
closed transaction system runs seeded randomized schedules, and a
conflict-graph acyclicity check decides whether the committed
transactions are serializable.  A scheme added to the registry via
``register_cc`` is picked up — and certified — automatically.

A deliberately broken scheme (no conflict resolution at all) proves the
oracle has teeth: the same workload that every real scheme passes
produces a conflict cycle under it.
"""

import pytest

from repro.cc import (
    AbortReason,
    CCSpec,
    CommittedExecution,
    ConcurrencyControl,
    HistoryRecorder,
    RecordingConcurrencyControl,
    cc_kinds,
    cc_level,
    check_serializability,
    conflict_graph,
)
from repro.sim.engine import Simulator
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem


def contended_params(seed: int) -> SystemParams:
    """Small database, heavy writes, no think time: dense conflicts fast."""
    return SystemParams(
        n_terminals=16, think_time=0.0, n_cpus=2,
        cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
        disk_per_access=0.004, disk_commit=0.004, restart_delay=0.005,
        seed=seed,
        workload=WorkloadParams(db_size=40, accesses_per_txn=5,
                                query_fraction=0.1, write_fraction=0.8))


def record_run(scheme: ConcurrencyControl, sim: Simulator, seed: int,
               horizon: float = 4.0) -> HistoryRecorder:
    """Run the closed system with ``scheme`` under observation."""
    recorder = HistoryRecorder()
    system = TransactionSystem(
        contended_params(seed), sim=sim,
        cc=RecordingConcurrencyControl(scheme, recorder))
    system.run(until=horizon)
    return recorder


#: the kinds that promise full serializability; schemes registered at a
#: weaker level (snapshot isolation) are certified at *their* declared
#: level in ``test_isolation_levels.py`` instead
SERIALIZABLE_KINDS = tuple(kind for kind in cc_kinds()
                           if cc_level(kind) == "serializable")


class TestOracleOverEveryRegisteredKind:
    def test_weaker_levels_are_excluded_not_forgotten(self):
        """Every registered kind is either certified here or declared weaker."""
        assert set(cc_kinds()) - set(SERIALIZABLE_KINDS) == {"snapshot_isolation"}

    @pytest.mark.parametrize("kind", SERIALIZABLE_KINDS)
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_randomized_schedules_are_serializable(self, kind, seed):
        sim = Simulator()
        recorder = record_run(CCSpec.make(kind).build(sim), sim, seed)
        # the schedule must actually exercise the scheme: enough commits to
        # build a dense graph, and more executions than commits (aborts
        # happened), otherwise the check is vacuous at this contention
        assert len(recorder.committed) > 50, f"{kind}: too few commits"
        assert recorder.executions > len(recorder.committed), (
            f"{kind}: the contended run never aborted — vacuous schedule")
        verdict = check_serializability(recorder.committed)
        assert verdict.serializable, (
            f"{kind}: committed history is NOT serializable; "
            f"witness cycle {verdict.cycle} over {verdict.transactions} "
            f"transactions / {verdict.edges} edges")
        # sanity: the graph really had edges to order (conflicts existed)
        assert verdict.edges > 0, f"{kind}: conflict-free run proves nothing"


class BrokenNoConcurrencyControl(ConcurrencyControl):
    """A deliberately broken scheme: records accesses, resolves nothing.

    Every transaction commits unconditionally, so overlapping updaters
    freely interleave and the committed history cannot be serialized —
    the fixture that proves the oracle can fail.
    """

    name = "broken-no-cc"

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._active = set()

    def begin(self, txn) -> None:
        self._active.add(txn.txn_id)

    def access(self, txn, item: int, is_write: bool):
        if is_write:
            txn.write_set.add(item)
            txn.read_set.add(item)
        else:
            txn.read_set.add(item)
        return None

    def try_commit(self, txn) -> bool:
        return True

    def finish(self, txn) -> None:
        self._active.discard(txn.txn_id)

    def abort(self, txn, reason: AbortReason) -> None:
        self._active.discard(txn.txn_id)

    def active_count(self) -> int:
        return len(self._active)


class TestOracleCanFail:
    def test_broken_scheme_is_caught(self):
        sim = Simulator()
        recorder = record_run(BrokenNoConcurrencyControl(sim), sim, seed=3)
        assert len(recorder.committed) > 50
        verdict = check_serializability(recorder.committed)
        assert not verdict.serializable, (
            "the oracle certified a scheme with no concurrency control — "
            "it cannot catch anything")
        # the witness cycle is usable: closed, and every edge is real
        cycle = verdict.cycle
        assert cycle[0] == cycle[-1] and len(cycle) >= 3
        graph = conflict_graph(recorder.committed)
        for source, target in zip(cycle, cycle[1:]):
            assert target in graph[source]


def committed(txn_id, reads=(), writes=(), commit=(0.0, 0)):
    """Hand-built history entry.

    Reads are ``(item, time, seq)`` triples — version defaults to ``None``
    (the initial version) — or full ``(item, time, seq, version)`` tuples
    naming the writer whose version was observed.
    """
    normalized = tuple(read if len(read) == 4 else (*read, None)
                       for read in reads)
    return CommittedExecution(
        txn_id=txn_id, reads=normalized, writes=tuple(writes),
        commit_time=commit[0], commit_seq=commit[1])


class TestCheckerOnHandBuiltHistories:
    def test_empty_and_singleton_histories_are_serializable(self):
        assert check_serializability([])
        assert check_serializability(
            [committed(1, reads=[(5, 0.1, 1)], writes=[5], commit=(0.2, 2))])

    def test_sequential_conflicting_transactions_are_serializable(self):
        # T2 observed T1's version of granule 5 and installed its successor
        history = [
            committed(1, reads=[(5, 0.1, 1)], writes=[5], commit=(0.2, 2)),
            committed(2, reads=[(5, 0.3, 3, 1)], writes=[5], commit=(0.4, 4)),
        ]
        verdict = check_serializability(history)
        assert verdict.serializable
        # w-r, r-w and w-w conflicts all point 1 -> 2: one edge in the graph
        assert verdict.edges == 1

    def test_cross_read_write_cycle_is_detected(self):
        # T1 reads A before T2 installs A; T2 reads B before T1 installs B
        # (both observed the initial version): rw anti-dependencies
        # T1 -> T2 (on A) and T2 -> T1 (on B) close the classic cycle
        history = [
            committed(1, reads=[(1, 0.1, 1)], writes=[2], commit=(0.5, 5)),
            committed(2, reads=[(2, 0.2, 2)], writes=[1], commit=(0.6, 6)),
        ]
        verdict = check_serializability(history)
        assert not verdict.serializable
        assert set(verdict.cycle) == {1, 2}

    def test_reads_do_not_conflict_with_reads(self):
        history = [
            committed(1, reads=[(7, 0.1, 1)], commit=(0.3, 3)),
            committed(2, reads=[(7, 0.2, 2)], commit=(0.4, 4)),
        ]
        verdict = check_serializability(history)
        assert verdict.serializable
        assert verdict.edges == 0

    def test_tie_times_are_ordered_by_sequence(self):
        # same instant: the sequence number (engine processing order)
        # decides which write installed first
        history = [
            committed(1, writes=[9], commit=(1.0, 2)),
            committed(2, writes=[9], commit=(1.0, 1)),
        ]
        graph = conflict_graph(history)
        assert graph[2] == {1}
        assert graph[1] == set()


class TestRecorderMechanics:
    def test_reset_clears_the_recorder_with_the_scheme(self):
        """Repetitions must not share a history: run 1's times would
        interleave with run 2's restarted clock and fabricate edges."""
        sim = Simulator()
        recorder = HistoryRecorder()
        cc = RecordingConcurrencyControl(
            CCSpec.make("timestamp_cert").build(sim), recorder)
        system = TransactionSystem(contended_params(seed=3), sim=sim, cc=cc)
        system.run(until=1.0)
        assert recorder.committed
        cc.reset()
        assert recorder.committed == []
        assert recorder.executions == 0

    def test_aborted_executions_leave_no_trace(self):
        recorder = HistoryRecorder()
        recorder.start_execution(1)
        recorder.record_read(1, 5, 0.1)
        recorder.record_write_intent(1, 5)
        recorder.record_abort(1)
        recorder.start_execution(1)
        recorder.record_read(1, 6, 0.2)
        recorder.record_commit(1, 0.3)
        (execution,) = recorder.committed
        seq = execution.reads[0][2]
        # no committed writer of granule 6: the initial version (None)
        assert execution.reads == ((6, 0.2, seq, None),)
        assert execution.writes == ()
        assert recorder.executions == 2

    def test_blocking_reads_are_recorded_at_grant_not_request(self):
        """A lock wait records its read when the grant fires."""
        from repro.cc.two_phase_locking import TwoPhaseLocking
        from repro.tp.transaction import Transaction, TransactionClass

        sim = Simulator()
        recorder = HistoryRecorder()
        cc = RecordingConcurrencyControl(TwoPhaseLocking(sim), recorder)

        def txn_record(txn_id, items, writes=()):
            flags = tuple(item in writes for item in items)
            return Transaction(
                txn_id=txn_id, terminal_id=0,
                txn_class=(TransactionClass.UPDATER if any(flags)
                           else TransactionClass.QUERY),
                items=tuple(items), write_flags=flags)

        holder = txn_record(1, [5], writes=[5])
        reader = txn_record(2, [5])
        cc.begin(holder)
        cc.begin(reader)
        assert cc.access(holder, 5, is_write=True) is None
        wait = cc.access(reader, 5, is_write=False)
        assert wait is not None

        def release_later():
            yield sim.timeout(2.0)
            cc.finish(holder)

        sim.process(release_later())
        sim.run(until=5.0)
        cc.finish(reader)  # finish() records the commit for us
        by_txn = {execution.txn_id: execution
                  for execution in recorder.committed}
        (item, time, _seq, version) = by_txn[2].reads[0]
        assert item == 5
        assert time == pytest.approx(2.0)  # grant time, not request time 0.0
        assert version == 1  # the holder committed before the grant fired
        assert by_txn[1].writes == (5,)
