"""Static (non-adaptive) load-control baselines.

Section 1 of the paper lists the alternatives to feedback control:

1. *Do nothing* -- :class:`NoControl`: the threshold is effectively
   infinite, every arriving transaction is admitted immediately.  This is
   the configuration that exhibits thrashing and produces the "without
   control" curve of Figure 12.
2. *Fixed upper bound* -- :class:`FixedLimit`: the threshold is a constant
   chosen by the administrator.  Works only while the workload matches the
   assumption under which the constant was tuned.
"""

from __future__ import annotations

import math

from repro.core.controller import LoadController
from repro.core.types import IntervalMeasurement


class NoControl(LoadController):
    """Admit everything; the system is left to thrash (Section 1, option 1)."""

    name = "no-control"

    def __init__(self, upper_bound: float = math.inf):
        super().__init__(initial_limit=upper_bound, lower_bound=1.0, upper_bound=upper_bound)

    def _propose(self, measurement: IntervalMeasurement) -> float:
        return self.upper_bound


class FixedLimit(LoadController):
    """Constant administrator-chosen threshold (Section 1, option 2)."""

    name = "fixed-limit"

    def __init__(self, limit: float, lower_bound: float = 1.0,
                 upper_bound: float = math.inf):
        super().__init__(initial_limit=limit, lower_bound=lower_bound, upper_bound=upper_bound)
        self.limit = self.clamp(float(limit))

    def _propose(self, measurement: IntervalMeasurement) -> float:
        return self.limit
