#!/usr/bin/env python3
"""Reproduce the Figure 1 / Figure 12 story at the command line.

Sweeps the offered load (number of terminals) over a wide range and measures
the throughput of three configurations:

* without any load control (the thrashing curve of Figure 1),
* with the Incremental Steps controller,
* with the Parabola Approximation controller,

then prints the Figure 12 style table and the analytic model's view of the
same system for comparison.

Run with:  python examples/thrashing_demo.py [--quick]
"""

import argparse

from repro.analytic import OccModel, classify_phases, thrashing_onset
from repro.core import IncrementalStepsController, ParabolaController
from repro.experiments import (
    ExperimentScale,
    default_system_params,
    format_sweep_table,
    sweep_offered_load,
)


def is_factory(params):
    return IncrementalStepsController(
        initial_limit=10, beta=1.0, gamma=5, delta=10, min_step=2.0,
        lower_bound=2, upper_bound=params.n_terminals)


def pa_factory(params):
    return ParabolaController(
        initial_limit=10, forgetting=0.9, probe_amplitude=3.0,
        lower_bound=2, upper_bound=params.n_terminals)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use the small smoke-test scale instead of the benchmark scale")
    arguments = parser.parse_args()
    scale = ExperimentScale.smoke() if arguments.quick else ExperimentScale.benchmark()
    params = default_system_params(seed=13)

    print("Measuring the load/throughput curves (this runs full simulations)...\n")
    without = sweep_offered_load(params, None, scale=scale, label="without control")
    with_is = sweep_offered_load(params, is_factory, scale=scale, label="IS control")
    with_pa = sweep_offered_load(params, pa_factory, scale=scale, label="PA control")

    print("Figure 12 — system throughput with and without control (stationary case)")
    print(format_sweep_table([without, with_is, with_pa]))

    curve = without.curve()
    phases = classify_phases(curve)
    onset = thrashing_onset(curve, drop_fraction=0.1)
    print(f"\nUncontrolled curve: peak {phases.peak_throughput:.1f} txn/s at offered load "
          f"{phases.optimum_load:.0f}; throughput has dropped by >10% at load {onset:.0f}.")

    model = OccModel(params)
    optimum = model.optimal_mpl()
    print(f"Analytic OCC model: optimal multiprogramming level ≈ {optimum:.0f}, "
          f"predicted peak throughput ≈ {model.throughput(optimum):.1f} txn/s.")
    print("\nBoth controllers hold the heavy-load throughput near the peak — the")
    print("'with control' columns stay flat while the uncontrolled column collapses.")


if __name__ == "__main__":
    main()
