"""repro — Adaptive Load Control in Transaction Processing Systems.

A reproduction of Heiss & Wagner (VLDB 1991): feedback controllers that
adapt the multiprogramming level of a transaction processing system so the
system operates at the peak of its load/throughput curve and never thrashes.

Public API overview
-------------------

Simulation substrate
    :class:`repro.sim.Simulator`, :class:`repro.sim.Resource`,
    :class:`repro.sim.RandomStreams`

Transaction processing model
    :class:`repro.tp.SystemParams`, :class:`repro.tp.WorkloadParams`,
    :class:`repro.tp.TransactionSystem`, :class:`repro.tp.Workload`

Concurrency control
    :class:`repro.cc.TimestampCertification`, :class:`repro.cc.TwoPhaseLocking`

Load control (the paper's contribution)
    :class:`repro.core.IncrementalStepsController`,
    :class:`repro.core.ParabolaController`, :class:`repro.core.AdmissionGate`,
    :class:`repro.core.MeasurementProcess`, plus the static and rule-of-thumb
    baselines

Analytic models and experiments
    :class:`repro.analytic.OccModel`, :class:`repro.analytic.TayModel`,
    :class:`repro.analytic.SyntheticSystem`, and the experiment harness in
    :mod:`repro.experiments`
"""

from repro import analytic, cc, core, experiments, sim, tp
from repro.core import (
    AdmissionGate,
    FixedLimit,
    IncrementalStepsController,
    IyerRule,
    LoadController,
    MeasurementProcess,
    NoControl,
    ParabolaController,
    TayRule,
)
from repro.tp import SystemParams, TransactionSystem, Workload, WorkloadParams

__version__ = "0.1.0"

__all__ = [
    "analytic",
    "cc",
    "core",
    "experiments",
    "sim",
    "tp",
    "AdmissionGate",
    "FixedLimit",
    "IncrementalStepsController",
    "IyerRule",
    "LoadController",
    "MeasurementProcess",
    "NoControl",
    "ParabolaController",
    "TayRule",
    "SystemParams",
    "TransactionSystem",
    "Workload",
    "WorkloadParams",
    "__version__",
]
