"""Microbenchmark of the discrete-event engine's hot paths.

Unlike the figure benchmarks (which time whole experiments), this module
times the four code paths every experiment cell bottoms out in:

* **timeout churn** — processes yielding ``sim.timeout``; the single most
  frequent event kind in the transaction model;
* **process completion** — spawning short-lived processes and waiting on
  their completion events (one per transaction execution);
* **resource cycling** — FCFS ``request``/``release`` on a multi-server
  :class:`~repro.sim.resources.Resource` (the CPU station);
* **closed transaction system** — end-to-end transactions per wall second
  through a small :class:`~repro.tp.system.TransactionSystem`.

Each workload reports a rate (events/sec or transactions/sec, best of
``REPEATS`` runs) so before/after comparisons of engine changes are a
single number per path.  ``REPRO_BENCH_SCALE`` selects the workload size
(``smoke``/``benchmark``/``paper``); results scale linearly, the ratios
are what matters.

Run standalone for the comparison table::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py

or through pytest (CI runs this at smoke scale)::

    REPRO_BENCH_SCALE=smoke python -m pytest benchmarks/bench_engine_hotpath.py -s
"""

import os
import time

from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.tp.params import SystemParams, WorkloadParams
from repro.tp.system import TransactionSystem

#: best-of-N timing repeats per workload
REPEATS = 3

#: workload sizes per REPRO_BENCH_SCALE value
_SIZES = {
    # (timeout events, processes, resource cycles, system sim-seconds)
    "smoke": (60_000, 6_000, 12_000, 3.0),
    "benchmark": (240_000, 24_000, 48_000, 10.0),
    "paper": (1_200_000, 120_000, 240_000, 30.0),
}


def _sizes():
    name = os.environ.get("REPRO_BENCH_SCALE", "benchmark").lower()
    return _SIZES.get(name, _SIZES["benchmark"])


def _best_rate(workload, units):
    """Best units/second over REPEATS runs of ``workload`` (fresh state each)."""
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        produced = workload()
        elapsed = time.perf_counter() - start
        assert produced == units, f"workload produced {produced}, expected {units}"
        best = max(best, units / elapsed)
    return best


# ----------------------------------------------------------------------
# the four workloads
# ----------------------------------------------------------------------
def bench_timeout_events(n_events: int) -> float:
    """Timeout events processed per second (10 interleaving processes)."""
    n_processes = 10
    per_process = n_events // n_processes

    def run():
        sim = Simulator()
        counter = []

        def ticker(delay):
            for _ in range(per_process):
                yield sim.timeout(delay)
            counter.append(per_process)

        for index in range(n_processes):
            # distinct delays keep the heap genuinely interleaved
            sim.process(ticker(0.001 + 0.0001 * index))
        sim.run(until=1e9)
        return sum(counter)

    return _best_rate(run, per_process * n_processes)


def bench_process_completion(n_processes: int) -> float:
    """Short-lived processes completed (and waited on) per second."""

    def run():
        sim = Simulator()
        done = []

        def child():
            yield sim.timeout(0.001)
            return 1

        def parent():
            for _ in range(n_processes):
                value = yield sim.process(child())
                done.append(value)

        sim.process(parent())
        sim.run(until=1e9)
        return len(done)

    return _best_rate(run, n_processes)


def bench_resource_cycles(n_cycles: int) -> float:
    """FCFS request/hold/release cycles per second (8 workers, 4 servers)."""
    n_workers = 8
    per_worker = n_cycles // n_workers

    def run():
        sim = Simulator()
        resource = Resource(sim, capacity=4)
        completed = []

        def worker():
            for _ in range(per_worker):
                request = resource.request()
                yield request
                yield sim.timeout(0.01)
                resource.release(request)
            completed.append(per_worker)

        for _ in range(n_workers):
            sim.process(worker())
        sim.run(until=1e9)
        return sum(completed)

    return _best_rate(run, per_worker * n_workers)


def bench_transaction_system(sim_seconds: float) -> float:
    """Committed transactions per wall second through the closed model."""
    params = SystemParams(
        n_terminals=60, think_time=0.2, n_cpus=4,
        cpu_init=0.002, cpu_per_access=0.002, cpu_commit=0.002,
        disk_per_access=0.005, disk_commit=0.005, seed=7,
        workload=WorkloadParams(db_size=600, accesses_per_txn=6,
                                query_fraction=0.25, write_fraction=0.5))

    best = 0.0
    for _ in range(REPEATS):
        system = TransactionSystem(params)
        start = time.perf_counter()
        system.run(until=sim_seconds)
        elapsed = time.perf_counter() - start
        commits = system.metrics.commits
        assert commits > 0, "the closed system must commit transactions"
        best = max(best, commits / elapsed)
    return best


def collect_rates() -> dict:
    """All four hot-path rates at the selected scale."""
    n_events, n_processes, n_cycles, sim_seconds = _sizes()
    return {
        "timeout_events_per_sec": bench_timeout_events(n_events),
        "process_completions_per_sec": bench_process_completion(n_processes),
        "resource_cycles_per_sec": bench_resource_cycles(n_cycles),
        "transactions_per_sec": bench_transaction_system(sim_seconds),
    }


# ----------------------------------------------------------------------
# pytest interface (CI runs this at smoke scale)
# ----------------------------------------------------------------------
def test_engine_hotpath_rates():
    rates = collect_rates()
    print()
    print("engine hot-path microbenchmark "
          f"(scale={os.environ.get('REPRO_BENCH_SCALE', 'benchmark')})")
    for name, rate in rates.items():
        print(f"  {name:>30}: {rate:12,.0f}")
    for name, rate in rates.items():
        assert rate > 0, f"{name} must be positive"


def main() -> int:
    test_engine_hotpath_rates()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
