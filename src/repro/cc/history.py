"""History-based isolation oracle for concurrency control schemes.

The isolation-testing literature (HISTEX; AWDIT) argues that the way to
trust a *family* of concurrency control schemes is not per-scheme
hand-written assertions but a checker that works on the recorded history:
record what every transaction actually read, wrote and committed, then
decide from the history alone whether the committed transactions satisfy
the isolation level the scheme declares.  A scheme added to the registry
is then certified by exactly the same oracle as the existing ones.

Three pieces:

* :class:`RecordingConcurrencyControl` — an opt-in decorator around any
  :class:`~repro.cc.base.ConcurrencyControl` that observes the scheme
  through its public surface only (``begin`` / ``access`` / ``try_commit``
  / ``finish`` / ``abort``) and feeds a :class:`HistoryRecorder`.  Reads
  are recorded when they *happen*: immediately for non-blocking schemes,
  at the lock **grant** (not the request) for blocking ones — the wrapper
  registers a callback on the returned wait event and skips requests that
  fail.  Aborted executions leave no trace; only the committed execution
  of each transaction enters the history.
* :func:`check_serializability` — builds the direct serialization graph
  over the committed executions and reports a cycle if one exists.
* :func:`classify_anomalies` / :func:`check_isolation` — name the weak
  isolation anomalies a history exhibits (lost update, write skew, long
  fork, non-repeatable read) and check them against a *declared* level,
  so the oracle can certify "snapshot isolation admits write skew but
  nothing worse" rather than only acyclicity.

**Read-version model.**  Every read is recorded as the 4-tuple
``(granule, time, seq, version)`` where ``version`` is the txn_id of the
committed writer whose value the read returned (``None`` for the initial,
never-written version).  For single-version schemes the recorder resolves
the version itself: the read returns, by definition, the latest committed
version at the instant the read takes effect, and the recorder knows that
instant exactly (the engine processes a writer's commit record before any
dependent grant callback).  A **multiversion** scheme may serve an *older*
version — its snapshot — so the recorder asks the scheme
(:meth:`~repro.cc.base.ConcurrencyControl.observed_version`) instead of
assuming currency.  Writes take effect at the writer's commit
``(commit_time, commit_seq)``: optimistic schemes buffer writes until
commit by definition, under strict 2PL the exclusive lock is held until
commit, and a multiversion store installs new versions at commit.

**Direct serialization graph (DSG).**  Following Adya's formalisation,
the per-granule version order is the writers' commit order, and the graph
has an edge per dependency: ``wr`` (the writer of a version precedes its
readers), ``ww`` (a version's writer precedes the next version's writer),
and ``rw`` (a reader of a version precedes the writer of the *next*
version — the anti-dependency).  Committed transactions are
conflict-serializable iff this graph is acyclic;
:func:`check_serializability` returns the verdict plus a witness cycle
for post-mortems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cc.base import AbortReason, ConcurrencyControl
from repro.sim.engine import Event

#: one read operation: (granule, time it took effect, record sequence,
#: version read — the writer's txn_id, None for the initial version)
ReadOp = Tuple[int, float, int, Optional[int]]

#: the weak-isolation anomaly kinds the classifier can name; fixed order
#: so diagnostic metric schemas (``anomalies_<kind>``) are stable
ANOMALY_KINDS = ("long_fork", "lost_update", "non_repeatable_read",
                 "write_skew")

#: the isolation levels a scheme may declare (see ``repro.cc.registry``)
ISOLATION_LEVELS = ("serializable", "snapshot_isolation")

#: anomaly kinds each level admits; anything else is a violation
_ALLOWED_AT = {
    "serializable": frozenset(),
    "snapshot_isolation": frozenset({"write_skew"}),
}

#: sentinel for "resolve the version from the recorder's install log"
_CURRENT = object()


@dataclass(frozen=True)
class CommittedExecution:
    """The committed execution of one transaction, as recorded."""

    txn_id: int
    #: reads in the order they took effect (granule, time, seq, version)
    reads: Tuple[ReadOp, ...]
    #: granules written; they take effect at (commit_time, commit_seq)
    writes: Tuple[int, ...]
    commit_time: float
    commit_seq: int


@dataclass
class HistoryRecorder:
    """Accumulates the committed history of one simulation run."""

    committed: List[CommittedExecution] = field(default_factory=list)
    #: executions that were begun (committed or not) — exposes coverage
    executions: int = 0
    _seq: int = 0
    _reads: Dict[int, List[ReadOp]] = field(default_factory=dict)
    _writes: Dict[int, Set[int]] = field(default_factory=dict)
    #: granule -> txn_id of the latest committed writer (the install log
    #: head, used to resolve the version of single-version reads)
    _current_version: Dict[int, int] = field(default_factory=dict)

    def next_seq(self) -> int:
        """A fresh, strictly increasing record sequence number."""
        self._seq += 1
        return self._seq

    def start_execution(self, txn_id: int) -> None:
        """A (re-)execution begins: discard the previous attempt's ops."""
        self.executions += 1
        self._reads[txn_id] = []
        self._writes[txn_id] = set()

    def record_read(self, txn_id: int, item: int, time: float,
                    version: object = _CURRENT) -> None:
        """A read of ``item`` took effect (immediately or at lock grant).

        ``version`` is the writer txn_id of the version returned.  Left at
        the default, the recorder resolves it as the latest committed
        version of ``item`` so far — correct for every single-version
        scheme, because the engine processes the writer's commit before
        any read that could observe it.  Multiversion schemes pass the
        version they actually served.
        """
        ops = self._reads.get(txn_id)
        if ops is not None:
            if version is _CURRENT:
                version = self._current_version.get(item)
            ops.append((item, time, self.next_seq(), version))

    def record_write_intent(self, txn_id: int, item: int) -> None:
        """The execution will write ``item`` (effective at its commit)."""
        writes = self._writes.get(txn_id)
        if writes is not None:
            writes.add(item)

    def record_commit(self, txn_id: int, time: float) -> None:
        """The current execution committed: freeze it into the history."""
        reads = self._reads.pop(txn_id, [])
        writes = self._writes.pop(txn_id, set())
        for item in writes:
            self._current_version[item] = txn_id
        self.committed.append(CommittedExecution(
            txn_id=txn_id,
            reads=tuple(reads),
            writes=tuple(sorted(writes)),
            commit_time=time,
            commit_seq=self.next_seq(),
        ))

    def record_abort(self, txn_id: int) -> None:
        """The current execution aborted: it never happened."""
        self._reads.pop(txn_id, None)
        self._writes.pop(txn_id, None)

    def clear(self) -> None:
        """Forget the whole history (a new repetition starts from nothing)."""
        self.committed.clear()
        self.executions = 0
        self._seq = 0
        self._reads.clear()
        self._writes.clear()
        self._current_version.clear()


class RecordingConcurrencyControl(ConcurrencyControl):
    """Wrap a scheme and record the history it admits (opt-in observation).

    Pure observation through the :class:`~repro.cc.base.ConcurrencyControl`
    surface: every call is delegated unchanged, so the wrapped scheme makes
    exactly the decisions it would make unobserved.  (The grant callbacks
    the wrapper registers run at the same simulated instant as the grant
    and do not reorder any event.)
    """

    def __init__(self, inner: ConcurrencyControl, recorder: HistoryRecorder):
        self.inner = inner
        self.recorder = recorder
        self.name = f"recorded({inner.name})"

    # ------------------------------------------------------------------
    def begin(self, txn) -> None:
        """Open a fresh recording for this execution, then delegate."""
        self.recorder.start_execution(txn.txn_id)
        self.inner.begin(txn)

    def access(self, txn, item: int, is_write: bool) -> Optional[Event]:
        """Delegate the access and record it once it takes effect."""
        # delegate first: blocking schemes may raise TransactionAborted
        # (wait-die / a delivered wound), in which case nothing happened
        grant = self.inner.access(txn, item, is_write)
        recorder = self.recorder
        txn_id = txn.txn_id
        if is_write:
            recorder.record_write_intent(txn_id, item)
        if grant is None:
            if self.inner.multiversion:
                # a snapshot read may return an *old* version; the scheme
                # is the only party that knows which one it served
                recorder.record_read(
                    txn_id, item, self.inner.sim.now,
                    self.inner.observed_version(txn, item))
            else:
                recorder.record_read(txn_id, item, self.inner.sim.now)
            return None

        def on_grant(event: Event) -> None:
            if event.ok:  # a failed grant is an abort, not a read
                recorder.record_read(txn_id, item, event.sim.now)

        grant.add_callback(on_grant)
        return grant

    def try_commit(self, txn) -> bool:
        """Delegate certification unchanged."""
        return self.inner.try_commit(txn)

    def finish(self, txn) -> None:
        """Delegate, then freeze the execution into the committed history."""
        self.inner.finish(txn)
        self.recorder.record_commit(txn.txn_id, self.inner.sim.now)

    def abort(self, txn, reason: AbortReason) -> None:
        """Delegate, then drop the aborted execution's records."""
        self.inner.abort(txn, reason)
        self.recorder.record_abort(txn.txn_id)

    def active_count(self) -> int:
        """The wrapped scheme's registration count, unchanged."""
        return self.inner.active_count()

    def wait_depth(self) -> int:
        """The wrapped scheme's blocked-transaction count, unchanged."""
        return self.inner.wait_depth()

    def reset(self) -> None:
        """Reset scheme AND recorder: repetitions must not share a history.

        Run 1's operation times would otherwise interleave with run 2's
        (the clock restarts) and fabricate cross-run conflict edges —
        harvest ``recorder.committed`` *before* resetting.
        """
        self.inner.reset()
        self.recorder.clear()


# ----------------------------------------------------------------------
# the direct serialization graph and its acyclicity check
# ----------------------------------------------------------------------
def _commit_order(history: Sequence[CommittedExecution]
                  ) -> List[CommittedExecution]:
    """The committed executions sorted by (commit_time, commit_seq)."""
    return sorted(history, key=lambda e: (e.commit_time, e.commit_seq))


def _version_chains(history: Sequence[CommittedExecution]
                    ) -> Dict[int, List[int]]:
    """Per granule: the committed writers' txn_ids, in commit order.

    The chain *is* the version order of the granule; the initial
    (never-written) version ``None`` precedes every chain implicitly.
    """
    chains: Dict[int, List[int]] = {}
    for execution in _commit_order(history):
        for item in execution.writes:
            chains.setdefault(item, []).append(execution.txn_id)
    return chains


def _successors(chains: Dict[int, List[int]]
                ) -> Dict[Tuple[int, Optional[int]], int]:
    """Map (granule, version) to the writer of the *next* version."""
    successor: Dict[Tuple[int, Optional[int]], int] = {}
    for item, chain in chains.items():
        previous: Optional[int] = None
        for writer in chain:
            successor[(item, previous)] = writer
            previous = writer
    return successor


def conflict_graph(history: Sequence[CommittedExecution]) -> Dict[int, Set[int]]:
    """The direct serialization graph of a committed history (adjacency).

    Nodes are txn_ids; an edge ``a -> b`` means ``a`` must precede ``b``
    in any equivalent serial order, for one of Adya's three reasons:
    ``a`` wrote a version ``b`` read (wr), ``a`` wrote the version
    preceding ``b``'s on some granule (ww), or ``a`` read the version
    that ``b``'s write superseded (rw anti-dependency).
    """
    graph: Dict[int, Set[int]] = {e.txn_id: set() for e in history}
    chains = _version_chains(history)
    successor = _successors(chains)

    # ww: consecutive versions of each granule
    for chain in chains.values():
        for earlier, later in zip(chain, chain[1:]):
            if earlier != later:
                graph[earlier].add(later)

    for execution in history:
        reader = execution.txn_id
        for item, _time, _seq, version in execution.reads:
            if version == reader:
                continue  # read-your-own-write orders nothing
            # wr: the version's writer precedes its reader
            if version is not None and version in graph:
                graph[version].add(reader)
            # rw: the reader precedes the writer of the next version
            overwriter = successor.get((item, version))
            if overwriter is not None and overwriter != reader:
                graph[reader].add(overwriter)
    return graph


@dataclass(frozen=True)
class SerializabilityVerdict:
    """Outcome of a serialization-graph check over a committed history."""

    serializable: bool
    #: a witness cycle of txn_ids (first repeated at the end) if not
    cycle: Tuple[int, ...] = ()
    transactions: int = 0
    edges: int = 0

    def __bool__(self) -> bool:
        """Truthiness is the verdict itself."""
        return self.serializable


def check_serializability(
        history: Sequence[CommittedExecution]) -> SerializabilityVerdict:
    """Decide conflict-serializability of a committed history.

    Returns a :class:`SerializabilityVerdict`; when the serialization
    graph has a cycle the verdict carries one witness cycle (txn_ids, the
    first node repeated at the end) so a failing scheme can be debugged
    from the test output.
    """
    graph = conflict_graph(history)
    edge_count = sum(len(successors) for successors in graph.values())

    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    parent: Dict[int, Optional[int]] = {}

    def cycle_from(start: int, end: int) -> Tuple[int, ...]:
        path = [end]
        node = end
        while node != start:
            node = parent[node]
            path.append(node)
        path.reverse()
        return tuple(path) + (path[0],)

    for root in graph:
        if colour[root] != WHITE:
            continue
        parent[root] = None
        stack: List[Tuple[int, List[int]]] = [(root, sorted(graph[root]))]
        colour[root] = GREY
        while stack:
            node, successors = stack[-1]
            if not successors:
                colour[node] = BLACK
                stack.pop()
                continue
            successor = successors.pop(0)
            if colour[successor] == GREY:
                return SerializabilityVerdict(
                    serializable=False,
                    cycle=cycle_from(successor, node),
                    transactions=len(graph),
                    edges=edge_count,
                )
            if colour[successor] == WHITE:
                parent[successor] = node
                colour[successor] = GREY
                stack.append((successor, sorted(graph[successor])))
    return SerializabilityVerdict(
        serializable=True, transactions=len(graph), edges=edge_count)


# ----------------------------------------------------------------------
# anomaly classification and the isolation-level tester
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Anomaly:
    """One named weak-isolation anomaly found in a committed history."""

    #: one of :data:`ANOMALY_KINDS` (or ``"serialization_cycle"`` for a
    #: non-serializable history none of the named patterns explains)
    kind: str
    #: the committed transactions exhibiting the anomaly
    transactions: Tuple[int, ...]
    #: the granules involved
    items: Tuple[int, ...] = ()
    detail: str = ""


def classify_anomalies(
        history: Sequence[CommittedExecution]) -> Tuple[Anomaly, ...]:
    """Name the weak-isolation anomalies a committed history exhibits.

    Four patterns are detected, each defined over the per-granule version
    order (the writers' commit order) and each transaction's recorded
    read versions:

    * **non_repeatable_read** — one transaction read two *different*
      versions of the same granule: its reads cannot come from any single
      snapshot of that granule.
    * **long_fork** — a transaction's reads are snapshot-inconsistent
      *across* granules: no point of the global commit order shows all the
      versions it read simultaneously (the classic long-fork readers each
      see one of two concurrent writes but not the other).
    * **lost_update** — a transaction overwrote a granule it had read at
      a version *older* than its write's predecessor: the intervening
      committed update was silently discarded.
    * **write_skew** — two transactions each read what the other then
      overwrote (a pure anti-dependency 2-cycle); both committed, which a
      serializable scheme would forbid but snapshot isolation admits.

    Reads of a transaction's own writes are ignored throughout: they
    constrain nothing.  Anomalies are reported deterministically (sorted
    by kind, then transactions).
    """
    order = _commit_order(history)
    position = {e.txn_id: index + 1 for index, e in enumerate(order)}
    chains = _version_chains(history)
    successor = _successors(chains)

    def version_position(item: int, version: Optional[int]) -> Optional[int]:
        """Commit position at which ``version`` of ``item`` became visible."""
        if version is None:
            return 0
        return position.get(version)

    anomalies: List[Anomaly] = []

    for execution in history:
        reader = execution.txn_id
        #: granule -> distinct versions read (ignoring own writes)
        versions_read: Dict[int, List[Optional[int]]] = {}
        for item, _time, _seq, version in execution.reads:
            if version == reader:
                continue
            seen = versions_read.setdefault(item, [])
            if version not in seen:
                seen.append(version)

        # -- non-repeatable reads: two versions of one granule ----------
        unrepeatable = {item for item, seen in versions_read.items()
                        if len(seen) > 1}
        for item in sorted(unrepeatable):
            anomalies.append(Anomaly(
                kind="non_repeatable_read",
                transactions=(reader,),
                items=(item,),
                detail=f"txn {reader} read versions "
                       f"{versions_read[item]} of granule {item}",
            ))

        # -- long fork: per-granule snapshot windows with empty overlap --
        # each read of version v on granule g is visible exactly in the
        # commit-position window [pos(v), pos(successor of v) - 1]
        windows: Dict[int, Tuple[float, float]] = {}
        for item, seen in versions_read.items():
            if item in unrepeatable:
                continue  # already reported; its window is empty by itself
            (version,) = seen
            lower = version_position(item, version)
            if lower is None:
                continue  # version unknown to this history; no constraint
            overwriter = successor.get((item, version))
            if overwriter is None or overwriter == reader:
                upper = math.inf
            else:
                upper = position[overwriter] - 1
            windows[item] = (float(lower), float(upper))
        if windows:
            lower_item = max(windows, key=lambda i: (windows[i][0], i))
            upper_item = min(windows, key=lambda i: (windows[i][1], -i))
            lower, upper = windows[lower_item][0], windows[upper_item][1]
            if lower > upper:
                anomalies.append(Anomaly(
                    kind="long_fork",
                    transactions=(reader,),
                    items=tuple(sorted((lower_item, upper_item))),
                    detail=f"txn {reader}'s reads of granules {lower_item} "
                           f"and {upper_item} fit no single snapshot",
                ))

        # -- lost update: wrote over a version it never read ------------
        for item in execution.writes:
            seen = versions_read.get(item)
            if not seen:
                continue  # blind write: nothing was read, nothing lost
            chain = chains[item]
            index = chain.index(reader)
            predecessor = chain[index - 1] if index > 0 else None
            if all(version != predecessor for version in seen):
                involved = (reader,) if predecessor is None else tuple(
                    sorted((reader, predecessor)))
                anomalies.append(Anomaly(
                    kind="lost_update",
                    transactions=involved,
                    items=(item,),
                    detail=f"txn {reader} overwrote granule {item} having "
                           f"read version {seen[0]}, not its predecessor "
                           f"{predecessor}",
                ))

    # -- write skew: mutual anti-dependencies between two transactions --
    rw_items: Dict[Tuple[int, int], Set[int]] = {}
    for execution in history:
        reader = execution.txn_id
        for item, _time, _seq, version in execution.reads:
            if version == reader:
                continue
            overwriter = successor.get((item, version))
            if overwriter is not None and overwriter != reader:
                rw_items.setdefault((reader, overwriter), set()).add(item)
    for (a, b), items in sorted(rw_items.items()):
        if a < b and (b, a) in rw_items:
            anomalies.append(Anomaly(
                kind="write_skew",
                transactions=(a, b),
                items=tuple(sorted(items | rw_items[(b, a)])),
                detail=f"txns {a} and {b} each read what the other "
                       f"overwrote, yet both committed",
            ))

    anomalies.sort(key=lambda anomaly: (anomaly.kind, anomaly.transactions,
                                        anomaly.items))
    return tuple(anomalies)


def anomaly_counts(history: Sequence[CommittedExecution]) -> Dict[str, int]:
    """Occurrences of every anomaly kind (all kinds present, stable schema)."""
    counts = {kind: 0 for kind in ANOMALY_KINDS}
    for anomaly in classify_anomalies(history):
        if anomaly.kind in counts:
            counts[anomaly.kind] += 1
    return counts


@dataclass(frozen=True)
class IsolationVerdict:
    """Outcome of checking a committed history against a declared level."""

    #: the level the history was checked against (:data:`ISOLATION_LEVELS`)
    level: str
    #: True iff the history exhibits nothing the level forbids
    ok: bool
    #: every anomaly the classifier found, allowed or not
    anomalies: Tuple[Anomaly, ...] = ()
    #: the anomalies the declared level forbids — the reason ``ok`` is False
    violations: Tuple[Anomaly, ...] = ()
    #: whether the history is (conflict-)serializable outright
    serializable: bool = True
    transactions: int = 0

    def __bool__(self) -> bool:
        """Truthiness is the verdict itself."""
        return self.ok


def check_isolation(history: Sequence[CommittedExecution],
                    level: str) -> IsolationVerdict:
    """Check a committed history against a *declared* isolation level.

    ``level="serializable"`` demands an acyclic serialization graph — any
    anomaly, named or not, is a violation.  ``level="snapshot_isolation"``
    admits write skew (the one anomaly Berenson et al. showed SI allows)
    but rejects lost updates, long forks and non-repeatable reads, all of
    which first-committer-wins snapshot reads provably prevent.  The
    verdict carries every classified anomaly either way, so a test can
    assert not only that a scheme is *good enough* for its level but that
    the oracle saw exactly the anomalies the level predicts.
    """
    if level not in _ALLOWED_AT:
        raise ValueError(
            f"unknown isolation level {level!r}; "
            f"expected one of {ISOLATION_LEVELS}")
    anomalies = classify_anomalies(history)
    serialization = check_serializability(history)
    allowed = _ALLOWED_AT[level]
    violations = tuple(a for a in anomalies if a.kind not in allowed)
    if level == "serializable" and not serialization.serializable \
            and not violations:
        # non-serializable, but none of the named patterns explains it:
        # still a violation of the declared level — witness the cycle
        violations = (Anomaly(
            kind="serialization_cycle",
            transactions=serialization.cycle,
            detail="serialization graph is cyclic",
        ),)
    ok = not violations
    if level == "serializable":
        ok = ok and serialization.serializable
    return IsolationVerdict(
        level=level,
        ok=ok,
        anomalies=anomalies,
        violations=violations,
        serializable=serialization.serializable,
        transactions=serialization.transactions,
    )
