"""Process-based discrete-event simulation engine.

The engine follows the classic event/process design used by SimPy:

* A :class:`Simulator` owns the clock and a priority queue of scheduled
  events.
* An :class:`Event` is a one-shot object that is *triggered* (succeeded or
  failed) and later *processed*, at which point its waiter and callbacks run.
* A :class:`Process` wraps a generator.  The generator yields events; the
  process resumes when the yielded event is processed.  The value of the
  event is sent into the generator (or, for failed events, the exception is
  thrown into it).
* Processes can be interrupted from the outside with
  :meth:`Process.interrupt`, which raises :class:`Interrupt` inside the
  generator at the current simulation time.  This is how the transaction
  model implements displacement (aborting an active transaction).

The engine is deliberately small but complete enough to express the closed
transaction processing model of the paper: FCFS resources, timeouts,
interrupts and process completion events.

Hot-path design (the engine dominates experiment cell runtime, so the
common paths are aggressively slimmed; the golden-trajectory harness under
``tests/golden/`` pins the resulting behavior bit for bit):

* **Direct process resume.**  In the overwhelmingly common case exactly one
  process waits on an event (``yield sim.timeout(...)``, ``yield child``).
  That process is stored in the event's ``_waiter`` slot and resumed
  directly when the event is processed — no callback list is allocated, no
  indirection through bound methods.  Explicit :meth:`Event.add_callback`
  callbacks still work and run *after* the waiter only if the waiter
  registered first (registration order is preserved exactly).
* **Lazy callback lists.**  ``Event.callbacks`` is ``None`` until the first
  callback is registered (and ``None`` again once processed), so the two
  dominant event kinds — timeouts and process completions — never allocate
  a list.
* **Slim heap entries with an explicit tie-break.**  The pending queue
  holds ``(time, sequence, event)`` triples.  ``sequence`` is a monotonic
  counter assigned at scheduling time; it is the *documented contract* for
  equal-timestamp ordering: events scheduled at the same simulation time
  are processed strictly in the order they were scheduled (FIFO).  The
  counter also guarantees the heap never compares two :class:`Event`
  objects.  (Earlier revisions carried an unused ``priority`` field;
  ordering is by ``(time, sequence)`` only.)
* **Fast-path construction.**  :class:`Timeout` initialises its fields
  directly and schedules itself without going through the generic
  ``succeed`` machinery, and process bootstrap/interrupt wake-ups use
  pre-triggered internal events built without redundant state checks.
* **Inlined run loop.**  :meth:`Simulator.run` processes events with local
  variable bindings instead of per-event method dispatch.  It must stay
  semantically in sync with :meth:`Simulator.step` (kept for manual
  stepping and tests).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop the event loop early."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the object passed to
    :meth:`Process.interrupt` and usually explains why the process was
    interrupted (e.g. a displacement decision by the load controller).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Failure value used for the completion event of a killed process."""


class Event:
    """A one-shot occurrence in simulated time.

    An event has three observable states:

    * *pending* -- created but not yet triggered;
    * *triggered* -- a value (or exception) has been set and the event has
      been scheduled on the simulator's queue;
    * *processed* -- the simulator has popped the event and executed its
      waiter and callbacks.

    Callbacks are callables of one argument (the event itself).  They run in
    the order they were appended.  ``callbacks`` is ``None`` while no
    callback is registered and again after the event has been processed; a
    process waiting on the event is held in the separate ``_waiter`` slot
    (see the module docstring) and runs in its registration position.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered",
                 "_processed", "_waiter")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self._waiter: Optional["Process"] = None

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the event queue."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's waiter/callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value of the event.

        Raises the failure exception if the event failed, and
        :class:`SimulationError` if the event has not been triggered yet.
        """
        if not self._triggered:
            raise SimulationError("event value read before the event was triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or ``None`` if the event succeeded."""
        return self._exception

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._value = value
        self._triggered = True
        sim = self.sim
        seq = sim._sequence
        sim._sequence = seq + 1
        heappush(sim._queue, (sim._now, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception instance, got {exception!r}")
        self._exception = exception
        self._triggered = True
        sim = self.sim
        seq = sim._sequence
        sim._sequence = seq + 1
        heappush(sim._queue, (sim._now, seq, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (still at the current simulation time).
        """
        if self._processed:
            callback(self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        if self.callbacks and callback in self.callbacks:
            self.callbacks.remove(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that succeeds after a fixed delay.

    Construction is the engine's hottest allocation site, so the fields are
    initialised directly and the event schedules itself without the generic
    ``succeed`` checks (a fresh timeout cannot have been triggered before).
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        delay = float(delay)
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._exception = None
        self._triggered = True
        self._processed = False
        self._waiter = None
        self.delay = delay
        seq = sim._sequence
        sim._sequence = seq + 1
        heappush(sim._queue, (sim._now + delay, seq, self))


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event: it is triggered when the generator
    terminates (the generator's return value becomes the event value) and it
    can therefore be waited on by other processes (``yield some_process``).
    """

    __slots__ = ("generator", "name", "_target", "_resume_callback")

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any],
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                "Process expects a generator (did you forget to call the "
                f"process function?), got {generator!r}"
            )
        # inline Event.__init__ -- one process is created per transaction
        # execution, so the extra constructor frame is measurable
        self.sim = sim
        self.callbacks = None
        self._value = None
        self._exception = None
        self._triggered = False
        self._processed = False
        self._waiter = None
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._resume_callback = self._resume
        # Kick the process off at the current time with a pre-triggered
        # internal event carrying this process as its direct waiter.
        sim._schedule_wakeup(self, None)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a process that has already finished is an error; callers
        should check :attr:`is_alive` first.  The event the process is
        currently waiting on is abandoned (it no longer resumes this
        process).
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        target = self._target
        if target is not None:
            if target._waiter is self:
                target._waiter = None
            else:
                target.remove_callback(self._resume_callback)
            self._target = None
        self.sim._schedule_wakeup(self, Interrupt(cause))

    def kill(self, cause: Any = None) -> None:
        """Terminate the process without running any more of its code.

        Unlike :meth:`interrupt`, the generator gets no chance to handle the
        termination; its completion event fails with :class:`ProcessKilled`.
        Used for hard shutdown of the simulation world in tests.
        """
        if self._triggered:
            return
        target = self._target
        if target is not None:
            if target._waiter is self:
                target._waiter = None
            else:
                target.remove_callback(self._resume_callback)
            self._target = None
        self.generator.close()
        self.fail(ProcessKilled(cause))

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._exception is None:
                next_target = self.generator.send(event._value)
            else:
                next_target = self.generator.throw(event._exception)
        except StopIteration as stop:
            sim._active_process = None
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            # The process chose not to handle an interrupt: treat as failure.
            sim._active_process = None
            if not self._triggered:
                self.fail(unhandled)
            return
        except BaseException as exc:
            sim._active_process = None
            if not self._triggered:
                self.fail(exc)
            if not isinstance(exc, Exception):  # re-raise KeyboardInterrupt etc.
                raise
            if sim.raise_process_errors:
                raise
            return
        sim._active_process = None

        if isinstance(next_target, Event) and next_target.sim is sim:
            self._target = next_target
            if next_target._processed:
                # same semantics as registering a callback on a processed
                # event: resume immediately at the current time
                self._resume(next_target)
            elif next_target._waiter is None and next_target.callbacks is None:
                # common case: sole consumer -- direct resume, no list
                next_target._waiter = self
            elif next_target.callbacks is None:
                next_target.callbacks = [self._resume_callback]
            else:
                next_target.callbacks.append(self._resume_callback)
            return

        if isinstance(next_target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded an event bound to a different simulator"
            )
        else:
            error = SimulationError(
                f"process {self.name!r} yielded {next_target!r}; processes must yield Event objects"
            )
        self.generator.close()
        self.fail(error)
        if sim.raise_process_errors:
            raise error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "alive"
        return f"<Process {self.name!r} {state} at t={self.sim.now:.6g}>"


class Condition(Event):
    """An event that succeeds when all (or any) of its children succeed.

    Only the two standard combinators are provided; they are sufficient for
    the transaction model (e.g. waiting for a lock grant *or* an abort
    signal).
    """

    __slots__ = ("events", "mode", "_pending")

    ALL = "all"
    ANY = "any"

    def __init__(self, sim: "Simulator", events: Iterable[Event], mode: str):
        super().__init__(sim)
        self.events = list(events)
        if mode not in (self.ALL, self.ANY):
            raise ValueError(f"mode must be 'all' or 'any', got {mode!r}")
        self.mode = mode
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for child in self.events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._pending -= 1
        if self.mode == self.ANY or self._pending == 0:
            self.succeed({e: e._value for e in self.events if e._triggered and e.ok})


class Simulator:
    """The discrete-event simulation executive.

    Responsibilities:

    * maintain the simulation clock (:attr:`now`);
    * maintain the pending-event queue ordered by ``(time, sequence)``;
    * run events, their waiting processes and their callbacks in
      deterministic order;
    * provide factory helpers (:meth:`timeout`, :meth:`process`,
      :meth:`event`) so user code never touches the queue directly.

    The executive is single-threaded and deterministic: two runs with the
    same seeds produce identical traces.  **Equal-timestamp ordering
    contract:** events scheduled at the same simulation time are processed
    strictly in scheduling order, enforced by the monotonic ``sequence``
    counter carried in every heap entry (not by heap insertion accidents).
    """

    def __init__(self, start_time: float = 0.0, raise_process_errors: bool = True):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        #: If True (default), exceptions escaping a process propagate out of
        #: :meth:`run`; if False they are recorded on the process completion
        #: event only.
        self.raise_process_errors = raise_process_errors

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def queue_length(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now.

        This is the hottest allocation in the engine; the fields are set
        inline (equivalent to ``Timeout(self, delay, value)`` without the
        extra constructor frame).
        """
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.callbacks = None
        event._value = value
        event._exception = None
        event._triggered = True
        event._processed = False
        event._waiter = None
        event.delay = delay = float(delay)
        seq = self._sequence
        self._sequence = seq + 1
        heappush(self._queue, (self._now + delay, seq, event))
        return event

    def process(self, generator: Generator[Event, Any, Any], name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that succeeds when all ``events`` have succeeded."""
        return Condition(self, events, Condition.ALL)

    def any_of(self, events: Iterable[Event]) -> Condition:
        """Event that succeeds when any of ``events`` has succeeded."""
        return Condition(self, events, Condition.ANY)

    # ------------------------------------------------------------------
    # scheduling / running
    # ------------------------------------------------------------------
    def _schedule_wakeup(self, process: Process, exception: Optional[BaseException]) -> None:
        """Schedule an internal pre-triggered event that resumes ``process`` now.

        Used for process bootstrap (``exception=None`` sends ``None`` into
        the generator) and interrupts (the exception is thrown into it).
        The event is built directly -- it is internal, already triggered,
        and its sole consumer is the process itself.
        """
        wakeup = Event.__new__(Event)
        wakeup.sim = self
        wakeup.callbacks = None
        wakeup._value = None
        wakeup._exception = exception
        wakeup._triggered = True
        wakeup._processed = False
        wakeup._waiter = process
        seq = self._sequence
        self._sequence = seq + 1
        heappush(self._queue, (self._now, seq, wakeup))

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` (a zero-argument callable) at absolute ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule a callback in the past ({time} < {self._now})")
        marker = Timeout(self, time - self._now)
        marker.add_callback(lambda _event: callback())
        return marker

    def call_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` time units from now."""
        return self.call_at(self._now + delay, callback)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Kept for manual stepping and tests; :meth:`run` inlines the same
        logic for speed -- the two must stay semantically identical.
        """
        if not self._queue:
            raise SimulationError("cannot step an empty event queue")
        time, _seq, event = heappop(self._queue)
        if time < self._now - 1e-12:
            raise SimulationError("event scheduled in the past; queue corrupted")
        if time > self._now:
            self._now = time
        event._processed = True
        waiter = event._waiter
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        callbacks = event.callbacks
        if callbacks is not None:
            event.callbacks = None
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation.

        If ``until`` is a number the clock is advanced to exactly that time
        (even if no event is scheduled there).  With ``until=None`` the
        simulation runs until the event queue drains, which for closed models
        with terminal loops means forever -- always pass ``until`` for the
        transaction model.

        Returns the simulation time at which the run stopped.
        """
        if until is not None:
            until = float(until)
            if until < self._now:
                raise ValueError(f"until={until} lies in the past (now={self._now})")
        queue = self._queue
        pop = heappop
        limit = float("inf") if until is None else until
        now = self._now
        try:
            # inlined event loop (see step(): same semantics, local bindings)
            while queue:
                entry = pop(queue)
                time = entry[0]
                if time > limit:
                    heappush(queue, entry)
                    break
                if time > now:
                    self._now = now = time
                elif time < now - 1e-12:
                    raise SimulationError("event scheduled in the past; queue corrupted")
                event = entry[2]
                event._processed = True
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    waiter._resume(event)
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
        except StopSimulation:
            pass
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop the run loop after the current event (usable from callbacks)."""
        raise StopSimulation()
