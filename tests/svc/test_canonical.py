"""Byte-agreement regression tests for the shared canonical encoder.

The golden fixtures (``tools/regen_goldens.py``), the sweep archives
(:mod:`repro.dist.archive`) and the fuzz corpus (:mod:`repro.fuzz.corpus`)
each used to carry a private copy of the same canonical-JSON encoder; the
sweep service's cache keys made a fourth consumer, so the encoder was
extracted into :mod:`repro.canonical`.  These tests pin that every call
site *is* (and therefore byte-agrees with) the shared implementation, and
that the extraction changed no committed artifact's bytes.
"""

import hashlib
import importlib.util
import json
import math
import sys
from pathlib import Path

import pytest

from repro import canonical
from repro.dist import archive as dist_archive
from repro.fuzz import corpus as fuzz_corpus

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

# load the regen tool exactly as the golden tests do
_TOOL_PATH = REPO_ROOT / "tools" / "regen_goldens.py"
if "regen_goldens" in sys.modules:
    regen_goldens = sys.modules["regen_goldens"]
else:
    _spec = importlib.util.spec_from_file_location("regen_goldens", _TOOL_PATH)
    regen_goldens = importlib.util.module_from_spec(_spec)
    sys.modules["regen_goldens"] = regen_goldens
    _spec.loader.exec_module(regen_goldens)

#: a payload exercising every canonicalisation rule at once: unsorted
#: keys, nested tuples, non-finite floats, precise doubles, unicode
TRICKY = {
    "z_last": (1, 2, (3.0, math.nan)),
    "a_first": {"inf": math.inf, "ninf": -math.inf},
    "precise": 0.1 + 0.2,
    "text": "naïve ≤ résumé",
    "ints": [0, -1, 10**18],
}


class TestCallSitesAgree:
    def test_regen_tool_reexports_the_shared_encoder(self):
        assert regen_goldens.canonical_json is canonical.canonical_json
        assert regen_goldens.sanitize is canonical.sanitize

    def test_archive_writer_uses_the_shared_sanitizer(self):
        assert dist_archive._sanitize is canonical.sanitize

    def test_fuzz_corpus_uses_the_shared_encoder(self):
        assert fuzz_corpus.canonical_json is canonical.canonical_json
        assert fuzz_corpus._sanitize is canonical.sanitize
        assert fuzz_corpus._restore is canonical.restore

    def test_three_call_sites_agree_byte_for_byte(self):
        # identity of the functions is the strong form; this is the
        # contract itself, stated as the ISSUE asks: same payload in,
        # identical bytes out of every consumer's entry point
        via_regen = regen_goldens.canonical_json(TRICKY)
        via_corpus = fuzz_corpus.canonical_json(TRICKY)
        via_shared = canonical.canonical_json(TRICKY)
        assert via_regen == via_corpus == via_shared


class TestCanonicalForm:
    def test_deterministic_and_key_sorted(self):
        text = canonical.canonical_json(TRICKY)
        assert text == canonical.canonical_json(dict(reversed(TRICKY.items())))
        assert text.index('"a_first"') < text.index('"z_last"')
        assert " " not in text.split('"text"')[0]  # compact separators

    def test_non_finite_floats_round_trip(self):
        text = canonical.canonical_json(TRICKY)
        back = canonical.restore(json.loads(text))
        assert math.isnan(back["z_last"][2][1])
        assert back["a_first"]["inf"] == math.inf
        assert back["a_first"]["ninf"] == -math.inf
        assert back["precise"] == 0.1 + 0.2  # exact, not approximate

    def test_strictly_valid_json(self):
        # allow_nan=False means a non-finite float that escaped sanitize
        # would raise instead of emitting invalid JSON
        assert json.loads(canonical.canonical_json(TRICKY))

    def test_digest_is_blake2b_256_of_the_canonical_bytes(self):
        expected = hashlib.blake2b(
            canonical.canonical_json(TRICKY).encode("utf-8"),
            digest_size=32).hexdigest()
        assert canonical.canonical_digest(TRICKY) == expected
        assert len(expected) == 64


class TestCommittedArtifactsUnchanged:
    """The extraction must not have moved a single committed byte."""

    @pytest.mark.parametrize("fixture", sorted(
        (REPO_ROOT / "tests" / "golden").glob("*.json")),
        ids=lambda path: path.name)
    def test_golden_fixture_is_in_shared_canonical_form(self, fixture):
        text = fixture.read_text(encoding="utf-8")
        assert canonical.canonical_json(json.loads(text)) + "\n" == text

    @pytest.mark.parametrize("document", sorted(
        (REPO_ROOT / "tests" / "fuzz_corpus").glob("*.json")),
        ids=lambda path: path.name)
    def test_corpus_document_is_in_shared_canonical_form(self, document):
        text = document.read_text(encoding="utf-8")
        assert canonical.canonical_json(json.loads(text)) + "\n" == text
