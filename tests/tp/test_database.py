"""Tests for the logical database and access-set sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random_streams import RandomStreams
from repro.tp.database import Database


@pytest.fixture
def streams():
    return RandomStreams(seed=5)


class TestDatabaseBasics:
    def test_size_must_be_positive(self, streams):
        with pytest.raises(ValueError):
            Database(0, streams)

    def test_len(self, streams):
        assert len(Database(123, streams)) == 123

    def test_sample_returns_distinct_items(self, streams):
        database = Database(100, streams)
        items = database.sample_access_set(20)
        assert len(items) == 20
        assert len(set(items.tolist())) == 20

    def test_sample_within_range(self, streams):
        database = Database(50, streams)
        items = database.sample_access_set(50)
        assert set(items.tolist()) == set(range(50))

    def test_sample_zero_items(self, streams):
        database = Database(10, streams)
        assert len(Database(10, streams).sample_access_set(0)) == 0

    def test_sample_too_many_raises(self, streams):
        database = Database(10, streams)
        with pytest.raises(ValueError):
            database.sample_access_set(11)

    def test_sample_negative_raises(self, streams):
        database = Database(10, streams)
        with pytest.raises(ValueError):
            database.sample_access_set(-1)

    def test_uniform_access_covers_database(self, streams):
        database = Database(20, streams)
        seen = set()
        for _ in range(200):
            seen.update(database.sample_access_set(3).tolist())
        assert seen == set(range(20))

    def test_reproducible_with_same_seed(self):
        first = Database(1000, RandomStreams(seed=9)).sample_access_set(10)
        second = Database(1000, RandomStreams(seed=9)).sample_access_set(10)
        np.testing.assert_array_equal(first, second)


class TestHotSpot:
    def test_hot_spot_requires_hot_set(self, streams):
        with pytest.raises(ValueError):
            Database(100, streams, hot_spot_fraction=0.0, hot_spot_access_probability=0.5)

    def test_invalid_fractions(self, streams):
        with pytest.raises(ValueError):
            Database(100, streams, hot_spot_fraction=1.5)
        with pytest.raises(ValueError):
            Database(100, streams, hot_spot_fraction=0.1, hot_spot_access_probability=1.5)

    def test_is_hot_classification(self, streams):
        database = Database(100, streams, hot_spot_fraction=0.1,
                            hot_spot_access_probability=0.8)
        assert database.is_hot(0)
        assert database.is_hot(9)
        assert not database.is_hot(10)

    def test_hot_spot_receives_most_accesses(self, streams):
        database = Database(1000, streams, hot_spot_fraction=0.1,
                            hot_spot_access_probability=0.8)
        hot_hits = 0
        total = 0
        for _ in range(500):
            items = database.sample_access_set(10)
            hot_hits += int(np.sum(items < 100))
            total += len(items)
        assert hot_hits / total == pytest.approx(0.8, abs=0.05)

    def test_hot_spot_samples_remain_distinct(self, streams):
        database = Database(200, streams, hot_spot_fraction=0.05,
                            hot_spot_access_probability=0.9)
        for _ in range(50):
            items = database.sample_access_set(30)
            assert len(set(items.tolist())) == 30

    def test_uniform_database_has_no_hot_items(self, streams):
        database = Database(100, streams)
        assert not database.is_hot(0)


class TestSamplingProperties:
    @given(size=st.integers(min_value=1, max_value=500),
           count_fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_sample_always_distinct_and_in_range(self, size, count_fraction):
        database = Database(size, RandomStreams(seed=2))
        count = int(round(count_fraction * size))
        items = database.sample_access_set(count)
        assert len(items) == count
        assert len(set(items.tolist())) == count
        if count:
            assert items.min() >= 0
            assert items.max() < size
