"""Mean-value model of blocking (two-phase locking) systems.

Tay, Goodman & Suri (1985) analyse a closed system of ``n`` transactions,
each requesting ``k`` locks out of a database of ``D`` granules, and show
that the mean number of blocked transactions is (to first order) a quadratic
function of ``n``.  The paper uses two consequences of that analysis:

* thrashing sets in roughly where adding one transaction blocks more than
  one transaction (``db(n)/dn > 1``);
* the rule of thumb ``k^2 n / D < 1.5`` for staying clear of thrashing.

The model here follows the standard first-order derivation:

* a transaction holds on average ``k / 2`` locks while it is active;
* a lock request of one transaction conflicts with a particular other
  transaction with probability ``(k/2) / D``;
* with ``n`` transactions, the probability that a request blocks is
  ``p_block = (n - 1) * k / (2 D)``;
* each transaction issues ``k`` requests, so the expected number of blocking
  events per execution is ``k * p_block = k^2 (n - 1) / (2 D)``;
* the mean number of blocked transactions is approximately the blocking
  rate times the mean blocking duration, which to first order yields the
  quadratic ``b(n) ≈ n * k^2 (n - 1) / (2 D) * w`` with ``w`` the fraction
  of the residence time a blocked transaction waits.

The absolute values of the model are rough (that is exactly the paper's
argument for feedback control instead of open-loop rules), but the
qualitative behaviour -- quadratic growth of blocking, a finite optimal
``n`` -- is what the tests and benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TayModel:
    """First-order mean-value model of a closed locking system."""

    #: number of granules in the database (``D``)
    db_size: int
    #: locks requested per transaction (``k``)
    locks_per_txn: int
    #: mean waiting share: fraction of residence time a blocked txn waits
    waiting_share: float = 0.5

    def __post_init__(self) -> None:
        if self.db_size < 1:
            raise ValueError(f"db_size must be >= 1, got {self.db_size}")
        if self.locks_per_txn < 1:
            raise ValueError(f"locks_per_txn must be >= 1, got {self.locks_per_txn}")
        if not 0.0 < self.waiting_share <= 1.0:
            raise ValueError(f"waiting_share must be in (0, 1], got {self.waiting_share}")

    # ------------------------------------------------------------------
    def conflict_probability(self, n: float) -> float:
        """Probability that one lock request blocks, at concurrency ``n``."""
        if n <= 1:
            return 0.0
        p = (n - 1) * self.locks_per_txn / (2.0 * self.db_size)
        return min(1.0, p)

    def blocking_events_per_txn(self, n: float) -> float:
        """Expected number of times one execution blocks."""
        return self.locks_per_txn * self.conflict_probability(n)

    def blocked_transactions(self, n: float) -> float:
        """Mean number of blocked transactions ``b(n)`` (quadratic in ``n``)."""
        if n <= 1:
            return 0.0
        b = n * self.blocking_events_per_txn(n) * self.waiting_share
        return min(b, max(0.0, n - 1.0))

    def active_transactions(self, n: float) -> float:
        """Mean number of transactions actually running: ``a(n) = n - b(n)``."""
        return max(0.0, n - self.blocked_transactions(n))

    def blocking_derivative(self, n: float, step: float = 1e-3) -> float:
        """Numerical ``db(n)/dn``; thrashing threatens once this exceeds 1."""
        return (self.blocked_transactions(n + step) - self.blocked_transactions(n - step)) / (2 * step)

    def critical_mpl(self) -> float:
        """Concurrency level where ``db(n)/dn`` reaches 1 (thrashing onset).

        For the quadratic first-order model ``b(n) = w k^2 n (n-1) / (2D)``
        the derivative reaches 1 at ``n = (D / (w k^2)) + 1/2``.
        """
        k2 = self.locks_per_txn ** 2
        return self.db_size / (self.waiting_share * k2) + 0.5

    def rule_of_thumb_mpl(self, margin: float = 1.5) -> float:
        """The published rule of thumb: ``n`` such that ``k^2 n / D = margin``."""
        return margin * self.db_size / (self.locks_per_txn ** 2)

    # ------------------------------------------------------------------
    def throughput_curve(self, levels: Sequence[float], service_rate: float = 1.0) -> list:
        """Relative throughput at each concurrency level.

        ``service_rate`` is the completion rate of one *active* transaction;
        the curve is proportional to the number of active (non-blocked)
        transactions until the physical capacity (not modelled here) caps it.
        """
        return [self.active_transactions(n) * service_rate for n in levels]

    def __str__(self) -> str:
        return (
            f"TayModel(D={self.db_size}, k={self.locks_per_txn}, "
            f"critical_mpl={self.critical_mpl():.1f}, "
            f"rule_of_thumb={self.rule_of_thumb_mpl():.1f})"
        )
