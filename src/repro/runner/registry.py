"""Named experiment scenarios: the paper's evaluation grid by name.

Each scenario maps a name (``cc_compare``, ``deadlock_resolution``,
``displacement_policies``, ``fig12_stationary``, ``fig13_is_jump``,
``fig14_pa_jump``, ``flash_crowd``, ``isolation_tradeoff``,
``mixed_classes``, ``open_diurnal``, ``probe_calibration``, ``sinusoid``,
``thrashing``) to a builder that produces
the corresponding :class:`~repro.runner.specs.SweepSpec` for a given
:class:`~repro.experiments.config.ExperimentScale`.  Benchmarks, examples
and ad-hoc scripts all obtain their cells here, so "run Figure 12 at smoke
scale with 4 workers and 5 replicates" is one call:

>>> from repro.runner import run_sweep
>>> result = run_sweep("fig12_stationary", workers=4, replicates=5)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.cc.registry import CCSpec
from repro.core.displacement import DisplacementPolicy, VictimCriterion
from repro.experiments.config import (
    ExperimentScale,
    contention_bound_params,
    default_system_params,
)
from repro.experiments.dynamic import (
    jump_scenario,
    sinusoid_scenario,
    tracking_sweep_spec,
)
from repro.experiments.stationary import stationary_sweep_spec
from repro.runner.specs import ControllerSpec, SweepSpec
from repro.tp.arrivals import OpenArrivals, PartlyOpenArrivals
from repro.tp.params import SystemParams
from repro.tp.workload import JumpSchedule, SinusoidSchedule, TransactionClassSpec

#: a scenario builder produces the sweep for one named experiment
ScenarioBuilder = Callable[..., SweepSpec]


@dataclass(frozen=True)
class ScenarioDefinition:
    """A named, documented entry of the scenario registry."""

    name: str
    description: str
    builder: ScenarioBuilder

    def build(self, scale: Optional[ExperimentScale] = None,
              base_params: Optional[SystemParams] = None, **overrides) -> SweepSpec:
        """Build the sweep at the given scale (benchmark scale by default)."""
        return self.builder(scale or ExperimentScale.benchmark(), base_params,
                            **overrides)


_SCENARIOS: Dict[str, ScenarioDefinition] = {}


def register_scenario(name: str, description: str):
    """Register a scenario builder under ``name`` (decorator)."""

    def decorator(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = ScenarioDefinition(name=name, description=description,
                                              builder=builder)
        return builder

    return decorator


def available_scenarios() -> Tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_SCENARIOS))


def get_scenario(name: str) -> ScenarioDefinition:
    """Look up one scenario definition by name."""
    definition = _SCENARIOS.get(name)
    if definition is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        )
    return definition


def build_sweep(name: str, scale: Optional[ExperimentScale] = None,
                base_params: Optional[SystemParams] = None, **overrides) -> SweepSpec:
    """Build the sweep of a named scenario."""
    return get_scenario(name).build(scale=scale, base_params=base_params, **overrides)


# ----------------------------------------------------------------------
# controller parameterisations shared by the figure scenarios (these mirror
# the settings the corresponding benchmarks have always used; the stationary
# figures use the registered builders' defaults as-is)
# ----------------------------------------------------------------------
def _tracking_is() -> ControllerSpec:
    return ControllerSpec.make("incremental_steps", initial_limit=30, beta=0.5,
                               gamma=8, delta=20, min_step=4.0, lower_bound=4)


def _tracking_pa() -> ControllerSpec:
    return ControllerSpec.make("parabola", initial_limit=30, forgetting=0.85,
                               probe_amplitude=6.0, max_move=40.0, lower_bound=4)


def _stationary_cells(name: str, scale: ExperimentScale, base_params: SystemParams,
                      variants, workload_classes=None, cc=None,
                      scheme_diagnostics: bool = False,
                      isolation_diagnostics: bool = False,
                      probes=None, arrivals=None) -> SweepSpec:
    """One stationary cell per (controller variant, offered load)."""
    cells = []
    for label, controller in variants:
        cells.extend(
            stationary_sweep_spec(base_params, controller, scale, label, name=name,
                                  workload_classes=workload_classes, cc=cc,
                                  scheme_diagnostics=scheme_diagnostics,
                                  isolation_diagnostics=isolation_diagnostics,
                                  probes=probes, arrivals=arrivals).cells
        )
    return SweepSpec(name=name, cells=tuple(cells))


# ----------------------------------------------------------------------
# the registered scenarios
# ----------------------------------------------------------------------
@register_scenario(
    "thrashing",
    "Figure 1: the uncontrolled load/throughput curve (rise, saturation, thrashing)",
)
def _thrashing(scale: ExperimentScale, base_params: Optional[SystemParams]) -> SweepSpec:
    base = base_params or default_system_params()
    return _stationary_cells("thrashing", scale, base,
                             [("without control", None)])


@register_scenario(
    "fig12_stationary",
    "Figure 12: stationary throughput without control and under IS/PA control",
)
def _fig12_stationary(scale: ExperimentScale, base_params: Optional[SystemParams]) -> SweepSpec:
    base = base_params or default_system_params()
    return _stationary_cells("fig12_stationary", scale, base, [
        ("without control", None),
        ("IS control", ControllerSpec.make("incremental_steps")),
        ("PA control", ControllerSpec.make("parabola")),
    ])


def _jump_cells(name: str, scale: ExperimentScale, base_params: Optional[SystemParams],
                variants, jump_before: float, jump_after: float) -> SweepSpec:
    base = base_params or contention_bound_params(seed=17)
    scenario = jump_scenario("accesses", jump_before, jump_after,
                             jump_time=scale.tracking_horizon / 2.0)
    return tracking_sweep_spec(dict(variants), scenario, base_params=base,
                               scale=scale, name=name)


@register_scenario(
    "mixed_classes",
    "Mixed OLTP/query workload: two transaction classes with distinct size and "
    "write ratio, uncontrolled and under IS/PA control",
)
def _mixed_classes(scale: ExperimentScale, base_params: Optional[SystemParams],
                   oltp_weight: float = 0.75,
                   oltp_accesses: int = 4,
                   oltp_write_fraction: float = 0.6,
                   query_accesses: int = 20) -> SweepSpec:
    """The ROADMAP's "mixed OLTP/query classes" scenario.

    Small frequent updaters (the OLTP class) share the admission gate with
    long read-only queries; the defaults keep the *expected* transaction
    size at the standard configuration's ``k = 8``
    (``0.75 * 4 + 0.25 * 20``), so the same offered-load grid applies while
    the per-class contention profile differs sharply from the single-class
    figures.
    """
    if not 0.0 < oltp_weight < 1.0:
        raise ValueError(f"oltp_weight must be in (0, 1), got {oltp_weight}")
    base = base_params or default_system_params(seed=29)
    classes = (
        TransactionClassSpec(name="oltp", weight=oltp_weight,
                             accesses_per_txn=oltp_accesses,
                             write_fraction=oltp_write_fraction),
        TransactionClassSpec(name="long-query", weight=1.0 - oltp_weight,
                             accesses_per_txn=query_accesses,
                             write_fraction=0.0),
    )
    return _stationary_cells("mixed_classes", scale, base, [
        ("without control", None),
        ("IS control", ControllerSpec.make("incremental_steps")),
        ("PA control", ControllerSpec.make("parabola")),
    ], workload_classes=classes)


@register_scenario(
    "fig13_is_jump",
    "Figure 13: IS threshold trajectory under an abrupt transaction-size jump",
)
def _fig13_is_jump(scale: ExperimentScale, base_params: Optional[SystemParams],
                   jump_before: float = 4, jump_after: float = 16) -> SweepSpec:
    return _jump_cells("fig13_is_jump", scale, base_params,
                       [("IS", _tracking_is())], jump_before, jump_after)


@register_scenario(
    "fig14_pa_jump",
    "Figure 14: PA threshold trajectory on the Figure 13 jump, with the IS reference",
)
def _fig14_pa_jump(scale: ExperimentScale, base_params: Optional[SystemParams],
                   jump_before: float = 4, jump_after: float = 16) -> SweepSpec:
    return _jump_cells("fig14_pa_jump", scale, base_params,
                       [("PA", _tracking_pa()), ("IS", _tracking_is())],
                       jump_before, jump_after)


@register_scenario(
    "cc_compare",
    "Section 1's cross-scheme claim: 2PL vs OCC load/throughput curves, "
    "uncontrolled and under IS control, one labeled series per scheme",
)
def _cc_compare(scale: ExperimentScale, base_params: Optional[SystemParams],
                db_size: int = 1500,
                write_fraction: float = 0.6,
                victim_policy: str = "youngest") -> SweepSpec:
    """2PL vs OCC under identical workload, with and without load control.

    The paper simulates only the optimistic scheme but argues (Section 1)
    that adaptive load control applies to blocking schemes as well.  This
    scenario runs the same closed system under both registered CC schemes:
    the default configuration is tightened (smaller database, higher write
    fraction) so that *both* schemes exhibit the rise-then-fall curve
    within the standard offered-load grid — under the default parameters
    2PL merely saturates, because blocking wastes no work until deadlocks
    dominate.  Common random numbers across all four series: same seed,
    same workload streams, so curve differences are scheme effects.
    """
    base = base_params or default_system_params(seed=41)
    base = base.with_changes(workload=base.workload.with_changes(
        db_size=db_size, write_fraction=write_fraction))
    schemes = (
        ("OCC", CCSpec.make("timestamp_cert")),
        ("2PL", CCSpec.make("two_phase_locking", victim_policy=victim_policy)),
    )
    cells = []
    for scheme_label, cc in schemes:
        variants = [
            (f"{scheme_label} without control", None),
            (f"{scheme_label} IS control", ControllerSpec.make("incremental_steps")),
        ]
        cells.extend(_stationary_cells("cc_compare", scale, base, variants,
                                       cc=cc).cells)
    return SweepSpec(name="cc_compare", cells=tuple(cells))


@register_scenario(
    "deadlock_resolution",
    "The locking family side by side: deadlock detection vs wound-wait vs "
    "wait-die on the cc_compare workload, uncontrolled and under IS control, "
    "with per-reason abort counts surfaced per cell",
)
def _deadlock_resolution(scale: ExperimentScale, base_params: Optional[SystemParams],
                         db_size: int = 1500,
                         write_fraction: float = 0.6,
                         victim_policy: str = "youngest") -> SweepSpec:
    """All three strict-2PL conflict resolutions over one contended workload.

    The schemes share every line of lock-table machinery
    (:class:`~repro.cc.two_phase_locking.LockingScheme`) and differ only in
    how a conflict is resolved, so curve differences are pure
    resolution-policy effects: the detector aborts waits-for-cycle victims
    (``deadlock`` aborts), wound-wait restarts younger lock owners
    (``wound``), wait-die restarts younger requesters (``die``).  Every
    cell runs with ``scheme_diagnostics`` on, so the per-reason abort
    counts — and the ``TayModel`` reference tag of the locking family —
    appear in the cell metrics and are pinned by the scenario's golden
    fixture.  The workload is ``cc_compare``'s (db tightened to 1500
    granules, write fraction 0.6) so all three variants rise-then-fall
    inside the standard offered-load grid; common random numbers across
    the six series make the comparison paired.
    """
    base = base_params or default_system_params(seed=53)
    base = base.with_changes(workload=base.workload.with_changes(
        db_size=db_size, write_fraction=write_fraction))
    schemes = (
        ("detect", CCSpec.make("two_phase_locking", victim_policy=victim_policy)),
        ("wound-wait", CCSpec.make("wound_wait")),
        ("wait-die", CCSpec.make("wait_die")),
    )
    cells = []
    for scheme_label, cc in schemes:
        variants = [
            (f"{scheme_label} without control", None),
            (f"{scheme_label} IS control", ControllerSpec.make("incremental_steps")),
        ]
        cells.extend(_stationary_cells("deadlock_resolution", scale, base, variants,
                                       cc=cc, scheme_diagnostics=True).cells)
    return SweepSpec(name="deadlock_resolution", cells=tuple(cells))


@register_scenario(
    "isolation_tradeoff",
    "The isolation trade-off: strict 2PL vs backward OCC vs snapshot "
    "isolation on one contended workload, uncontrolled and under IS control, "
    "with per-kind anomaly counts surfaced per cell",
)
def _isolation_tradeoff(scale: ExperimentScale, base_params: Optional[SystemParams],
                        db_size: int = 800,
                        write_fraction: float = 0.6,
                        victim_policy: str = "youngest") -> SweepSpec:
    """What weakening the isolation level buys — and what it costs.

    Three schemes run the same closed system under common random numbers:
    strict 2PL and backward-validation OCC, which certify at
    ``serializable``, and multiversion snapshot isolation, which certifies
    only at ``snapshot_isolation``.  Every cell runs with both
    ``scheme_diagnostics`` and ``isolation_diagnostics`` on, so the
    committed history of each run flows through the isolation oracle
    (:mod:`repro.cc.history`) and the per-kind ``anomalies_<kind>`` counts
    land in the cell metrics, pinned by the scenario's golden fixture.
    The workload is tightened (800 granules, write fraction 0.6) until SI
    actually exhibits write skew at every offered load of the standard
    grid while the serializable schemes stay anomaly-free — making the
    trade concrete: SI's non-blocking reads and first-committer-wins
    writes buy it markedly higher throughput deep in the contention
    regime, paid for in precisely those write-skew anomalies.
    """
    base = base_params or default_system_params(seed=61)
    base = base.with_changes(workload=base.workload.with_changes(
        db_size=db_size, write_fraction=write_fraction))
    schemes = (
        ("2PL", CCSpec.make("two_phase_locking", victim_policy=victim_policy)),
        ("OCC", CCSpec.make("timestamp_cert")),
        ("SI", CCSpec.make("snapshot_isolation")),
    )
    cells = []
    for scheme_label, cc in schemes:
        variants = [
            (f"{scheme_label} without control", None),
            (f"{scheme_label} IS control", ControllerSpec.make("incremental_steps")),
        ]
        cells.extend(_stationary_cells("isolation_tradeoff", scale, base, variants,
                                       cc=cc, scheme_diagnostics=True,
                                       isolation_diagnostics=True).cells)
    return SweepSpec(name="isolation_tradeoff", cells=tuple(cells))


@register_scenario(
    "probe_calibration",
    "The observability loop closed: a contended 2PL sweep with every built-in "
    "probe on, whose measured lock-wait share calibrates the Tay reference",
)
def _probe_calibration(scale: ExperimentScale, base_params: Optional[SystemParams],
                       db_size: int = 1500,
                       write_fraction: float = 0.6,
                       victim_policy: str = "youngest") -> SweepSpec:
    """A probed 2PL sweep: the source data of Tay-model calibration.

    The ``cc_compare`` workload tightening (1500 granules, write fraction
    0.6) is reused so two-phase locking actually blocks — and therefore
    has a measurable waiting share — at the standard offered-load grid.
    Every cell opts into the six probes this scenario has always carried
    (the explicit tuple below, frozen rather than ``PROBE_NAMES`` so later
    probe additions — like the open-system ``arrival_backlog`` gauge —
    cannot silently widen this scenario's pinned metric schema), so the
    golden fixture pins the complete ``probe_<name>`` metric surface:
    lock-wait statistics, the measured waiting share that
    :func:`repro.obs.calibration.measured_wait_share`
    feeds into the Tay reference, queue-depth and MPL trajectories, and the
    per-reason abort rates.  Probes observe without perturbing, so the
    throughput columns of this scenario are exactly what an unprobed run
    of the same cells produces — a property the probe test suite asserts.
    """
    base = base_params or default_system_params(seed=47)
    base = base.with_changes(workload=base.workload.with_changes(
        db_size=db_size, write_fraction=write_fraction))
    cc = CCSpec.make("two_phase_locking", victim_policy=victim_policy)
    probes = ("lock_wait", "lock_queue", "admission_queue", "mpl",
              "abort_rates", "displacement")
    return _stationary_cells("probe_calibration", scale, base, [
        ("without control", None),
        ("IS control", ControllerSpec.make("incremental_steps")),
    ], cc=cc, scheme_diagnostics=True, probes=probes)


@register_scenario(
    "displacement_policies",
    "Section 4.3: enforcing a threshold drop by displacement — one IS tracking "
    "run per victim-selection criterion on a downward jump of the optimum",
)
def _displacement_policies(scale: ExperimentScale,
                           base_params: Optional[SystemParams],
                           jump_before: float = 4,
                           jump_after: float = 16,
                           db_size: int = 500,
                           hysteresis: float = 1.0) -> SweepSpec:
    """Victim-criterion sweep over :class:`~repro.core.displacement.VictimCriterion`.

    Section 4.3's motivation is *responsiveness*: when the workload turns
    hostile, admission control alone can only wait for departures, while
    displacement enforces the lowered threshold immediately.  Here the
    transaction size jumps 4 -> 16 over a small database (500 granules),
    so the system the controller tuned during the first half (IS holding
    ~100 concurrent transactions) is suddenly deep in data-contention
    thrashing (``k^2 n / D`` jumps from ~3 to ~50).  With displacement the
    controller's downward probes take effect at once (every cell with a
    policy records a positive ``displaced`` count); without it the
    overloaded system can only drain by completions.  One cell runs pure
    admission control (``no displacement``) and one cell per victim
    criterion; all share seed and controller parameterisation, so the
    trajectories differ only in *which* transactions are sacrificed —
    the exact trajectories are pinned by the scenario's golden fixture.
    """
    base = base_params or contention_bound_params(seed=31)
    base = base.with_changes(workload=base.workload.with_changes(db_size=db_size))
    scenario = jump_scenario("accesses", jump_before, jump_after,
                             jump_time=scale.tracking_horizon / 2.0)
    controller = ControllerSpec.make("incremental_steps", initial_limit=100,
                                     beta=0.5, gamma=8, delta=20, min_step=4.0,
                                     lower_bound=4)
    variants = [("no displacement", None)]
    variants.extend(
        (criterion.value, DisplacementPolicy(criterion, hysteresis=hysteresis))
        for criterion in VictimCriterion
    )
    cells = []
    for label, displacement in variants:
        cells.extend(
            tracking_sweep_spec({label: controller}, scenario,
                                base_params=base, scale=scale,
                                name="displacement_policies",
                                displacement=displacement).cells
        )
    return SweepSpec(name="displacement_policies", cells=tuple(cells))


@register_scenario(
    "sinusoid",
    "Section 9: IS and PA tracking a sinusoidal transaction-size variation",
)
def _sinusoid(scale: ExperimentScale, base_params: Optional[SystemParams],
              mean: float = 10.0, amplitude: float = 6.0) -> SweepSpec:
    base = base_params or contention_bound_params(seed=23)
    scenario = sinusoid_scenario("accesses", mean=mean, amplitude=amplitude,
                                 period=scale.tracking_horizon / 2.0)
    variants = {
        "IS": ControllerSpec.make("incremental_steps", initial_limit=40, beta=0.5,
                                  gamma=8, delta=20, min_step=4.0, lower_bound=4),
        "PA": ControllerSpec.make("parabola", initial_limit=40, forgetting=0.85,
                                  probe_amplitude=6.0, max_move=40.0, lower_bound=4),
    }
    return tracking_sweep_spec(variants, scenario, base_params=base,
                               scale=scale, name="sinusoid")


@register_scenario(
    "open_diurnal",
    "Open-system arrivals: a diurnal (sinusoid) Poisson arrival rate over the "
    "IS-controlled 2PL system, with response-time tail percentiles per cell",
)
def _open_diurnal(scale: ExperimentScale, base_params: Optional[SystemParams],
                  rate_per_load: float = 0.25,
                  relative_amplitude: float = 0.6,
                  victim_policy: str = "youngest") -> SweepSpec:
    """The diurnal open-system sweep: arrival rate replaces the terminal count.

    Every cell runs the :class:`~repro.tp.arrivals.OpenArrivals` source —
    transactions arrive in a nonhomogeneous Poisson stream whose rate
    follows a sinusoid ("daily" load swings compressed into the simulated
    horizon) — instead of the closed terminal loop.  The offered-load axis
    scales the *mean arrival rate* (``rate_per_load`` transactions per
    simulated second per offered-load unit) the way the closed sweeps
    scale the terminal count, so the familiar grid now spans under-load
    through sustained overload: past the saturation point the backlog
    grows through each diurnal peak and the tail percentiles — pinned per
    cell as ``p95_response_time``/``p99_response_time`` — separate sharply
    from the mean.  The concurrency-control scheme is blocking 2PL under
    IS control (with the uncontrolled series as the reference), and every
    cell carries the ``arrival_backlog`` probe, whose growth-vs-bounded
    trajectory is exactly the open-system thrashing signature.
    """
    base = base_params or default_system_params(seed=67)
    cc = CCSpec.make("two_phase_locking", victim_policy=victim_policy)
    period = scale.stationary_horizon / 2.0

    def diurnal(offered_load: int) -> OpenArrivals:
        mean = rate_per_load * offered_load
        return OpenArrivals(SinusoidSchedule(
            mean=mean, amplitude=relative_amplitude * mean, period=period))

    return _stationary_cells("open_diurnal", scale, base, [
        ("without control", None),
        ("IS control", ControllerSpec.make("incremental_steps")),
    ], cc=cc, probes=("arrival_backlog",), arrivals=diurnal)


@register_scenario(
    "flash_crowd",
    "Partly-open flash crowd: a session arrival-rate jump against two tenants "
    "with admission/queue quotas — load control must shed the bursting tenant "
    "while the steady tenant keeps its SLO",
)
def _flash_crowd(scale: ExperimentScale, base_params: Optional[SystemParams],
                 rate_per_load: float = 0.10,
                 surge_factor: float = 3.5,
                 burst_admission_quota: int = 6,
                 burst_queue_quota: int = 6) -> SweepSpec:
    """Two tenants, one flash crowd, and the quota machinery between them.

    The arrival source is :class:`~repro.tp.arrivals.PartlyOpenArrivals`:
    *sessions* arrive in a Poisson stream and each issues a bounded-Pareto
    number of transactions with a short think time in between — the
    partly-open middle ground that models real front-ends better than
    either pure closed or pure open.  Midway through the measured window
    the session arrival rate jumps by ``surge_factor`` (the flash crowd).
    Two transaction classes act as tenants: ``steady`` (25 % of
    submissions, no quotas — it is never busy-signaled, at any scale) and
    ``burst`` (75 % of submissions, tight admission *and* queue quotas).
    When the crowd hits, the gate's per-tenant quotas make the admission
    decision discriminating: ``burst`` arrivals beyond quota are shed
    outright (``tenant_shed_burst``) while ``steady`` keeps flowing, so
    the steady tenant's pinned ``tenant_p95_response_time_steady`` stays
    within SLO as the burst tenant's tail blows out — the per-tenant
    assertion the golden suite makes on this scenario.  IS control runs
    against the uncontrolled reference under common random numbers.
    """
    base = base_params or default_system_params(seed=71)
    classes = (
        TransactionClassSpec(name="steady", weight=0.25, accesses_per_txn=8,
                             write_fraction=0.3),
        TransactionClassSpec(name="burst", weight=0.75, accesses_per_txn=8,
                             write_fraction=0.3,
                             admission_quota=burst_admission_quota,
                             queue_quota=burst_queue_quota),
    )
    jump_time = scale.warmup + scale.stationary_horizon / 2.0

    def crowd(offered_load: int) -> PartlyOpenArrivals:
        before = rate_per_load * offered_load
        return PartlyOpenArrivals(
            JumpSchedule(before=before, after=surge_factor * before,
                         jump_time=jump_time),
            session_alpha=1.5, min_session=1, max_session=20,
            session_think_time=0.05)

    return _stationary_cells("flash_crowd", scale, base, [
        ("without control", None),
        ("IS control", ControllerSpec.make("incremental_steps")),
    ], workload_classes=classes, arrivals=crowd)
