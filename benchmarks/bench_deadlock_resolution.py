"""The locking family under load control: detection vs wound-wait vs wait-die.

The ``deadlock_resolution`` scenario runs the three strict-2PL conflict
resolutions — waits-for deadlock detection, wound-wait, wait-die — over
the ``cc_compare`` workload, each uncontrolled and under the
incremental-steps controller, with common random numbers across all six
series.  The schemes share every line of lock-table machinery, so the
printed table shows pure resolution-policy effects.

The qualitative statements checked:

* the three resolutions genuinely *differ*: no two schemes produce the
  same uncontrolled load/throughput series, and each restarts for its own
  reason (``deadlock`` / ``wound`` / ``die`` — the per-reason abort counts
  every cell of this scenario reports);
* every variant thrashes uncontrolled at the heaviest load (the Figure 1
  shape is not specific to one resolution policy);
* IS control rescues *all* of them: heavy-load throughput above the
  uncontrolled level and near the scheme's own peak — the paper's
  load-control claim holds across the whole blocking family.
"""

from conftest import run_once

from repro.experiments.report import format_sweep_table
from repro.runner import run_sweep, stationary_sweeps

SCHEMES = ("detect", "wound-wait", "wait-die")

#: the abort reason each resolution policy restarts under
RESTART_REASON = {"detect": "aborts_deadlock",
                  "wound-wait": "aborts_wound",
                  "wait-die": "aborts_die"}


def test_every_locking_variant_thrashes_and_is_rescued(benchmark, scale,
                                                       workers, replicates):
    def experiment():
        result = run_sweep("deadlock_resolution", scale=scale, workers=workers,
                           replicates=replicates)
        return result, stationary_sweeps(result)

    result, sweeps = run_once(benchmark, experiment)

    print()
    print("deadlock detection vs wound-wait vs wait-die — throughput "
          "with and without IS control")
    print(format_sweep_table(list(sweeps.values())))

    series = {}
    for scheme in SCHEMES:
        uncontrolled = sweeps[f"{scheme} without control"]
        controlled = sweeps[f"{scheme} IS control"]
        assert uncontrolled.model_reference_name == "TayModel"
        peak = uncontrolled.peak().throughput
        heaviest = max(point.offered_load for point in uncontrolled.points)
        series[scheme] = tuple(round(p.throughput, 2) for p in uncontrolled.points)

        benchmark.extra_info[f"{scheme}_uncontrolled"] = list(series[scheme])
        benchmark.extra_info[f"{scheme}_is_control"] = [
            round(p.throughput, 2) for p in controlled.points]

        # thrashing without control at the heaviest load, for EVERY variant
        assert uncontrolled.throughput_at(heaviest) < 0.8 * peak, (
            f"{scheme}: no thrashing — the scenario lost its point")
        # the controller rescues the heavy-load throughput
        assert controlled.throughput_at(heaviest) > uncontrolled.throughput_at(heaviest)
        assert controlled.throughput_at(heaviest) > 0.55 * peak, (
            f"{scheme}: IS control failed to hold throughput near the peak")

        # the scheme restarts under its OWN reason and nobody else's: the
        # heaviest uncontrolled cell must show restarts of exactly one kind
        own_reason = RESTART_REASON[scheme]
        heavy_cells = [cell for cell in result.results
                       if cell.label == f"{scheme} without control"]
        own = sum(cell.metrics[own_reason] for cell in heavy_cells)
        foreign = sum(cell.metrics[other] for cell in heavy_cells
                      for other in RESTART_REASON.values() if other != own_reason)
        assert own > 0, f"{scheme}: never restarted under {own_reason}"
        assert foreign == 0, f"{scheme}: restarted under a foreign reason"

    # the three resolutions are genuinely different policies
    assert len(set(series.values())) == len(SCHEMES), (
        f"two locking variants produced identical series: {series}")
