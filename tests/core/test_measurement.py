"""Tests for the measurement process (the feedback loop plumbing)."""

import pytest

from repro.core.admission import AdmissionGate
from repro.core.incremental_steps import IncrementalStepsController
from repro.core.measurement import MeasurementProcess
from repro.core.outer_loop import MeasurementIntervalTuner
from repro.core.static import FixedLimit
from repro.sim.engine import Simulator
from repro.tp.metrics import RunMetrics
from repro.tp.transaction import Transaction, TransactionClass


def make_txn(txn_id):
    return Transaction(
        txn_id=txn_id, terminal_id=0, txn_class=TransactionClass.QUERY,
        items=(txn_id,), write_flags=(False,), submitted_at=0.0)


def build_loop(controller, interval=1.0, warmup=0.0, tuner=None, displace=None):
    sim = Simulator()
    gate = AdmissionGate(sim)
    metrics = RunMetrics(sim)
    loop = MeasurementProcess(sim, gate, metrics, controller, interval,
                              warmup=warmup, interval_tuner=tuner, displace=displace)
    return sim, gate, metrics, loop


class TestValidation:
    def test_interval_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MeasurementProcess(sim, AdmissionGate(sim), RunMetrics(sim),
                               FixedLimit(5), interval=0.0)

    def test_warmup_must_be_non_negative(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MeasurementProcess(sim, AdmissionGate(sim), RunMetrics(sim),
                               FixedLimit(5), interval=1.0, warmup=-1.0)


class TestSampling:
    def test_start_installs_initial_limit(self):
        sim, gate, _metrics, loop = build_loop(FixedLimit(7, upper_bound=100))
        loop.start()
        assert gate.limit == 7

    def test_periodic_samples_are_taken(self):
        sim, _gate, _metrics, loop = build_loop(FixedLimit(7, upper_bound=100), interval=2.0)
        loop.start()
        sim.run(until=10.0)
        assert loop.samples_taken == 5
        assert len(loop.trace) == 5

    def test_measurement_contains_interval_throughput(self):
        controller = FixedLimit(50, upper_bound=100)
        sim, gate, metrics, loop = build_loop(controller, interval=2.0)
        loop.start()

        def commit_generator():
            for index in range(20):
                yield sim.timeout(0.5)
                metrics.record_commit(response_time=0.1)

        sim.process(commit_generator())
        sim.run(until=4.0)
        # each 2-second interval contains 4 commits -> throughput 2/s
        assert loop.trace.throughput[0] == pytest.approx(2.0, abs=0.5)
        assert loop.trace.throughput[1] == pytest.approx(2.0, abs=0.5)

    def test_controller_decision_is_applied_to_gate(self):
        controller = IncrementalStepsController(initial_limit=5, upper_bound=50)
        sim, gate, metrics, loop = build_loop(controller, interval=1.0)
        loop.start()
        sim.run(until=3.0)
        assert gate.limit == controller.current_limit
        assert gate.limit != 5  # the controller moved away from its start value

    def test_warmup_delays_first_sample(self):
        sim, _gate, _metrics, loop = build_loop(FixedLimit(5, upper_bound=10),
                                                interval=1.0, warmup=5.0)
        loop.start()
        sim.run(until=5.5)
        assert loop.samples_taken == 0
        sim.run(until=6.5)
        assert loop.samples_taken == 1

    def test_trace_matches_measurement_series(self):
        sim, _gate, metrics, loop = build_loop(FixedLimit(9, upper_bound=20), interval=1.0)
        loop.start()
        sim.run(until=4.0)
        assert loop.trace.times == pytest.approx([1.0, 2.0, 3.0, 4.0])
        assert all(limit == 9 for limit in loop.trace.limits)

    def test_mean_concurrency_measured_from_gate(self):
        sim, gate, _metrics, loop = build_loop(FixedLimit(50, upper_bound=100), interval=2.0)
        loop.start()
        transactions = [make_txn(i) for i in range(4)]

        def load_generator():
            for txn in transactions:
                gate.submit(txn)
                yield sim.timeout(0.5)

        sim.process(load_generator())
        sim.run(until=2.0)
        # load steps 1,2,3,4 at half-second spacing; the time average is 2.5
        assert loop.trace.concurrency[0] == pytest.approx(2.5, abs=0.3)


class TestDisplacementHook:
    def test_displace_called_when_limit_below_load(self):
        calls = []

        def displace(limit):
            calls.append(limit)
            return 2

        controller = FixedLimit(2, upper_bound=100)
        sim, gate, _metrics, loop = build_loop(controller, interval=1.0, displace=displace)
        # put 5 transactions into the system before the loop starts
        for i in range(5):
            gate.submit(make_txn(i))
        loop.start()
        sim.run(until=1.5)
        assert calls and calls[0] == 2
        assert loop.total_displaced >= 2

    def test_displace_not_called_when_limit_above_load(self):
        calls = []
        controller = FixedLimit(50, upper_bound=100)
        sim, gate, _metrics, loop = build_loop(
            controller, interval=1.0, displace=lambda limit: calls.append(limit) or 0)
        gate.submit(make_txn(1))
        loop.start()
        sim.run(until=2.5)
        assert calls == []


class TestIntervalTunerIntegration:
    def test_tuner_adjusts_interval(self):
        tuner = MeasurementIntervalTuner(target_departures=10, min_interval=0.5,
                                         max_interval=20.0, smoothing=1.0)
        controller = FixedLimit(50, upper_bound=100)
        sim, _gate, metrics, loop = build_loop(controller, interval=1.0, tuner=tuner)
        loop.start()

        def commit_generator():
            while True:
                yield sim.timeout(0.1)
                metrics.record_commit(response_time=0.05)

        sim.process(commit_generator())
        sim.run(until=5.0)
        # ~10 commits/second and a 10-departure target -> ~1 second interval
        assert 0.5 <= loop.interval <= 2.0
        assert loop.samples_taken >= 3
