"""Tests for the dynamic (tracking) experiment harness."""

import math

import pytest

from repro.core.incremental_steps import IncrementalStepsController
from repro.core.parabola import ParabolaController
from repro.experiments.config import ExperimentScale, default_system_params
from repro.experiments.dynamic import (
    jump_scenario,
    run_synthetic_tracking,
    run_tracking_experiment,
    sinusoid_scenario,
)
from repro.tp.params import WorkloadParams
from repro.tp.workload import JumpSchedule, SinusoidSchedule


def tiny_params():
    base = default_system_params(seed=5)
    return base.with_changes(
        n_terminals=60,
        n_cpus=2,
        workload=WorkloadParams(db_size=400, accesses_per_txn=4,
                                query_fraction=0.25, write_fraction=0.5),
    )


def tiny_scale():
    return ExperimentScale(
        stationary_horizon=4.0,
        warmup=1.0,
        offered_loads=(10, 40),
        tracking_horizon=24.0,
        measurement_interval=1.5,
        synthetic_steps=60,
    )


class TestScenarioHelpers:
    def test_jump_scenario_builds_schedule(self):
        parameter, schedule = jump_scenario("accesses", 4, 16, 100.0)
        assert parameter == "accesses"
        assert isinstance(schedule, JumpSchedule)
        assert schedule.value(50.0) == 4
        assert schedule.value(150.0) == 16

    def test_sinusoid_scenario_builds_schedule(self):
        parameter, schedule = sinusoid_scenario("query_fraction", 0.4, 0.2, 100.0)
        assert parameter == "query_fraction"
        assert isinstance(schedule, SinusoidSchedule)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            jump_scenario("page_size", 1, 2, 3.0)


class TestSimulationTracking:
    def test_tracking_run_produces_trace_and_reference(self):
        controller = IncrementalStepsController(initial_limit=5, upper_bound=60,
                                                gamma=3, delta=6)
        result = run_tracking_experiment(
            controller, jump_scenario("accesses", 4, 8, 12.0),
            base_params=tiny_params(), scale=tiny_scale())
        assert result.controller == "incremental-steps"
        assert result.varied_parameter == "accesses"
        assert len(result.trace) == len(result.reference_optima)
        assert len(result.trace) >= 10
        assert result.total_commits > 0
        assert all(optimum > 0 for optimum in result.reference_optima)

    def test_threshold_and_reference_series_align(self):
        controller = ParabolaController(initial_limit=5, upper_bound=60, probe_amplitude=1.0)
        result = run_tracking_experiment(
            controller, jump_scenario("query_fraction", 0.1, 0.6, 12.0),
            base_params=tiny_params(), scale=tiny_scale())
        thresholds = result.threshold_series()
        references = result.reference_series()
        assert len(thresholds) == len(references)
        assert thresholds[0][0] == references[0][0]

    def test_limits_respect_controller_bounds(self):
        controller = IncrementalStepsController(initial_limit=5, lower_bound=2,
                                                upper_bound=30, gamma=3, delta=6)
        result = run_tracking_experiment(
            controller, sinusoid_scenario("write_fraction", 0.5, 0.3, 20.0),
            base_params=tiny_params(), scale=tiny_scale())
        assert all(2 <= limit <= 30 for limit in result.trace.limits)


class TestSyntheticTracking:
    def test_synthetic_run_shape(self):
        controller = ParabolaController(initial_limit=20, upper_bound=400,
                                        probe_amplitude=3.0, max_move=50.0)
        result = run_synthetic_tracking(
            controller, position_schedule=JumpSchedule(100.0, 250.0, 100.0),
            steps=200, noise_std=1.0, seed=1)
        assert len(result.trace) == 200
        assert result.varied_parameter == "synthetic-optimum"
        assert result.reference_optima[0] == 100.0
        assert result.reference_optima[-1] == 250.0

    def test_synthetic_tracking_follows_jump(self):
        controller = ParabolaController(initial_limit=50, upper_bound=600,
                                        probe_amplitude=4.0, forgetting=0.85,
                                        max_move=60.0)
        result = run_synthetic_tracking(
            controller, position_schedule=JumpSchedule(150.0, 400.0, 120.0),
            steps=360, noise_std=2.0, seed=2)
        settled = result.trace.limits[-40:]
        assert sum(settled) / len(settled) == pytest.approx(400.0, rel=0.25)

    def test_default_height_schedule(self):
        controller = IncrementalStepsController(initial_limit=20, upper_bound=300)
        result = run_synthetic_tracking(
            controller, position_schedule=JumpSchedule(50.0, 80.0, 30.0), steps=60)
        assert all(peak == pytest.approx(100.0) for peak in result.reference_peaks)
