#!/usr/bin/env python3
"""Quickstart: adaptive load control on a transaction processing system.

Builds the closed transaction processing model of the paper, attaches the
Parabola Approximation (PA) load controller, runs a short simulation and
prints what the controller did.  Compare against a second run without any
control to see the thrashing the controller prevents.

Run with:  python examples/quickstart.py
"""

from repro.core import ParabolaController
from repro.experiments import default_system_params
from repro.tp import TransactionSystem


def run_without_control(params, horizon):
    """The 'do nothing' configuration of Section 1: admit everything."""
    system = TransactionSystem(params)
    system.run(until=horizon)
    return system


def run_with_pa_controller(params, horizon):
    """Close the feedback loop of Figure 5 with the PA controller."""
    system = TransactionSystem(params)
    controller = ParabolaController(
        initial_limit=10,          # start from an arbitrary threshold
        forgetting=0.9,            # aging coefficient of the RLS estimator
        probe_amplitude=3.0,       # excitation around the estimated optimum
        lower_bound=2,
        upper_bound=params.n_terminals,
    )
    measurement = system.attach_controller(controller, interval=2.0)
    system.run(until=horizon)
    return system, measurement


def main():
    horizon = 60.0
    # a heavy offered load: 400 terminals battering a 4-CPU system
    params = default_system_params(seed=7).with_changes(n_terminals=400)

    print(f"Simulating {params.n_terminals} terminals for {horizon:.0f} seconds "
          f"({params.n_cpus} CPUs, database of {params.workload.db_size} granules, "
          f"k={params.workload.accesses_per_txn} accesses per transaction)\n")

    uncontrolled = run_without_control(params, horizon)
    controlled, measurement = run_with_pa_controller(params, horizon)

    print("                         without control    with PA control")
    rows = [
        ("throughput [txn/s]", "throughput"),
        ("mean response time [s]", "mean_response_time"),
        ("mean concurrency level", "mean_concurrency"),
        ("restarts per commit", "restart_ratio"),
        ("CPU utilisation", "cpu_utilisation"),
    ]
    for label, key in rows:
        left = uncontrolled.summary()[key]
        right = controlled.summary()[key]
        print(f"{label:<25}{left:>15.2f}{right:>19.2f}")

    print(f"\nPA threshold trajectory (sampled every {measurement.interval:.0f}s):")
    series = measurement.trace.limit_series()
    step = max(1, len(series) // 10)
    for time, limit in series[::step]:
        print(f"  t={time:6.1f}s   n* = {limit:6.1f}")

    print("\nThe controller finds the multiprogramming level at which throughput")
    print("peaks and holds the system there; the uncontrolled run admits all 400")
    print("transactions, wastes CPU on certification-failure restarts and thrashes.")


if __name__ == "__main__":
    main()
