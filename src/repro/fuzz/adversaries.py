"""Typed adversary specs: hostile workload patterns as plain picklable data.

An :class:`AdversarySpec` is to the fuzzer what a
:class:`~repro.runner.specs.RunSpec` is to the runner: a frozen, picklable,
JSON-round-trippable description.  Each subclass captures one *attack
pattern* against the paper's adaptive load controllers — a transaction-size
spike, correlated hot-key traffic, an arrival burst, a hostile class mix, a
displacement storm — and :meth:`AdversarySpec.lower` compiles it down to an
ordinary ``RunSpec`` using the existing schedule / mixed-class machinery,
so a candidate runs through exactly the code paths the scenario grid uses.

Every adversary runs *with* an adaptive controller (that is the point: the
fuzzer hunts workloads the controller cannot rescue), and every spec has a
content :meth:`~AdversarySpec.fingerprint` that doubles as its cell id, so
two campaigns that generate the same spec archive the same counterexample
file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Tuple, Type

from repro.core.displacement import DisplacementPolicy, VictimCriterion
from repro.experiments.config import (
    ExperimentScale,
    contention_bound_params,
    default_system_params,
)
from repro.runner.specs import (
    KIND_STATIONARY,
    KIND_TRACKING,
    ControllerSpec,
    RunSpec,
)
from repro.tp.workload import JumpSchedule, TransactionClassSpec

#: adaptive controllers an adversary may be pitted against (the paper's two
#: load-control policies, Section 5/6)
ADAPTIVE_CONTROLLERS = ("incremental_steps", "parabola")

_ADVERSARY_KINDS: Dict[str, Type["AdversarySpec"]] = {}


def register_adversary(cls: Type["AdversarySpec"]) -> Type["AdversarySpec"]:
    """Register an adversary class under its ``kind`` tag (decorator)."""
    kind = cls.kind
    if kind in _ADVERSARY_KINDS:
        raise ValueError(f"adversary kind {kind!r} is already registered")
    _ADVERSARY_KINDS[kind] = cls
    return cls


def adversary_kinds() -> Tuple[str, ...]:
    """All registered adversary kinds, sorted."""
    return tuple(sorted(_ADVERSARY_KINDS))


@dataclass(frozen=True)
class AdversarySpec:
    """Base class: one hostile workload pattern as frozen plain data.

    Subclasses define scalar fields only, set a class-level ``kind`` tag and
    implement :meth:`lower`.  The shared machinery provides JSON round-trip
    (:meth:`to_jsonable` / :func:`adversary_from_jsonable`) and a stable
    content fingerprint.
    """

    kind = "abstract"

    #: adaptive controller the adversary attacks
    controller: str = "incremental_steps"
    #: root seed of the lowered run's random streams
    seed: int = 1

    def __post_init__(self) -> None:
        if self.controller not in ADAPTIVE_CONTROLLERS:
            raise ValueError(
                f"controller must be one of {ADAPTIVE_CONTROLLERS}, "
                f"got {self.controller!r}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        """Encode as plain JSON data (inverse of :func:`adversary_from_jsonable`)."""
        data = {"kind": self.kind}
        data.update(asdict(self))
        return data

    def fingerprint(self) -> str:
        """Stable short content hash; identical specs hash identically."""
        canonical = json.dumps(self.to_jsonable(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=6).hexdigest()

    def cell_id(self) -> str:
        """The lowered cell's id: ``fuzz/<kind>/<fingerprint>``."""
        return f"fuzz/{self.kind}/{self.fingerprint()}"

    def _controller_spec(self) -> ControllerSpec:
        return ControllerSpec.make(self.controller)

    def lower(self, scale: ExperimentScale) -> RunSpec:
        """Compile the adversary into an ordinary runnable cell."""
        raise NotImplementedError


def adversary_from_jsonable(data: dict) -> AdversarySpec:
    """Reconstruct the adversary encoded by :meth:`AdversarySpec.to_jsonable`."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _ADVERSARY_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown adversary kind {kind!r}; available: {', '.join(adversary_kinds())}"
        )
    names = {field.name for field in fields(cls)}
    unexpected = sorted(set(data) - names)
    if unexpected:
        raise ValueError(f"unexpected {kind!r} fields: {unexpected}")
    return cls(**data)


# ----------------------------------------------------------------------
# attack patterns
# ----------------------------------------------------------------------
@register_adversary
@dataclass(frozen=True)
class SizeSpikeAdversary(AdversarySpec):
    """Transaction-size spike: ``k`` jumps mid-run (a hostile Figure 13).

    Lowered to a tracking run on the contention-bound configuration (whose
    optimum *moves* with ``k``) with a :class:`~repro.tp.workload.JumpSchedule`
    on the accesses parameter: the optimum collapses at the jump and the
    controller must walk its admission limit down before thrashing erases
    the post-jump throughput.
    """

    kind = "size_spike"

    #: offered load (terminals)
    n_terminals: int = 300
    #: accesses per transaction before the spike
    before_k: int = 8
    #: accesses per transaction after the spike (the hostile part)
    after_k: int = 32
    #: position of the jump as a fraction of the tracking horizon
    jump_fraction: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.jump_fraction < 1.0:
            raise ValueError(
                f"jump_fraction must be in (0, 1), got {self.jump_fraction}"
            )
        if self.before_k < 1 or self.after_k < 1:
            raise ValueError("before_k and after_k must be >= 1")

    def lower(self, scale: ExperimentScale) -> RunSpec:
        """A tracking cell whose ``k`` schedule jumps at ``jump_fraction``."""
        params = contention_bound_params(seed=self.seed).with_changes(
            n_terminals=self.n_terminals)
        schedule = JumpSchedule(
            before=self.before_k,
            after=min(self.after_k, params.workload.db_size),
            jump_time=self.jump_fraction * scale.tracking_horizon,
        )
        return RunSpec(
            kind=KIND_TRACKING,
            cell_id=self.cell_id(),
            params=params,
            scale=scale,
            controller=self._controller_spec(),
            scenario=("accesses", schedule),
            label=self.kind,
        )


@register_adversary
@dataclass(frozen=True)
class HotKeyAdversary(AdversarySpec):
    """Correlated hot-key traffic: every transaction hits a small hot set.

    The access model is uniform over the database, so correlated traffic
    concentrated on ``hot_set_size`` granules is lowered as a run whose
    *effective* database is the hot set itself (``db_size = hot_set_size``)
    — the contention-equivalent reduction: conflict probabilities depend on
    ``k``/``db_size``, not on which granules form the set.  With a large
    ``k`` against a small hot set and write-heavy updaters, data contention
    thrashes the system at admission levels the controller starts well above.
    """

    kind = "hot_key"

    #: offered load (terminals)
    n_terminals: int = 300
    #: size of the hot set every transaction draws from
    hot_set_size: int = 100
    #: accesses per transaction (clamped to the hot set)
    accesses: int = 12
    #: write probability of the updaters' accesses
    write_fraction: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.hot_set_size < 1:
            raise ValueError(f"hot_set_size must be >= 1, got {self.hot_set_size}")
        if self.accesses < 1:
            raise ValueError(f"accesses must be >= 1, got {self.accesses}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {self.write_fraction}"
            )

    def lower(self, scale: ExperimentScale) -> RunSpec:
        """A stationary cell on the shrunken (hot-set) database."""
        base = default_system_params(seed=self.seed)
        workload = base.workload.with_changes(
            db_size=self.hot_set_size,
            accesses_per_txn=min(self.accesses, self.hot_set_size),
            write_fraction=self.write_fraction,
        )
        params = base.with_changes(n_terminals=self.n_terminals, workload=workload)
        return RunSpec(
            kind=KIND_STATIONARY,
            cell_id=self.cell_id(),
            params=params,
            scale=scale,
            controller=self._controller_spec(),
            label=self.kind,
        )


@register_adversary
@dataclass(frozen=True)
class ArrivalBurstAdversary(AdversarySpec):
    """Arrival burst: many terminals with near-zero think time.

    In the closed model the arrival pressure is ``n_terminals / think_time``;
    shrinking the think time to milliseconds turns every commit into an
    immediate resubmission — a sustained burst that keeps the admission gate
    saturated and punishes a controller whose limit drifts too high.
    """

    kind = "arrival_burst"

    #: offered load (terminals)
    n_terminals: int = 400
    #: mean think time between transactions (seconds; tiny = burst)
    think_time: float = 0.05
    #: accesses per transaction
    accesses: int = 12

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.think_time < 0.0:
            raise ValueError(f"think_time must be non-negative, got {self.think_time}")
        if self.accesses < 1:
            raise ValueError(f"accesses must be >= 1, got {self.accesses}")

    def lower(self, scale: ExperimentScale) -> RunSpec:
        """A stationary cell under sustained arrival pressure."""
        base = default_system_params(seed=self.seed)
        workload = base.workload.with_changes(
            accesses_per_txn=min(self.accesses, base.workload.db_size))
        params = base.with_changes(
            n_terminals=self.n_terminals,
            think_time=self.think_time,
            workload=workload,
        )
        return RunSpec(
            kind=KIND_STATIONARY,
            cell_id=self.cell_id(),
            params=params,
            scale=scale,
            controller=self._controller_spec(),
            label=self.kind,
        )


@register_adversary
@dataclass(frozen=True)
class ClassMixFlipAdversary(AdversarySpec):
    """Hostile class mix: long queries sharing the gate with hot updaters.

    Lowered to a stationary :class:`~repro.tp.workload.MixedClassWorkload`
    cell: a heavy read-only class (``query_k`` accesses) interleaved with
    small write-heavy updaters.  The controller's measurements see the
    *expectation* of the mix (:func:`repro.tp.workload.mixed_class_params`),
    while individual long queries occupy admission slots far longer than
    the mean suggests — the classic way a mix flip starves the gate.
    """

    kind = "class_mix_flip"

    #: offered load (terminals)
    n_terminals: int = 300
    #: weight share of the long-query class, in (0, 1)
    query_weight: float = 0.3
    #: accesses per long query
    query_k: int = 40
    #: accesses per updater transaction
    oltp_k: int = 8
    #: write probability of the updaters' accesses
    oltp_write_fraction: float = 0.8

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.query_weight < 1.0:
            raise ValueError(
                f"query_weight must be in (0, 1), got {self.query_weight}"
            )
        if self.query_k < 1 or self.oltp_k < 1:
            raise ValueError("query_k and oltp_k must be >= 1")
        if not 0.0 < self.oltp_write_fraction <= 1.0:
            raise ValueError(
                "oltp_write_fraction must be in (0, 1], "
                f"got {self.oltp_write_fraction}"
            )

    def workload_classes(self) -> Tuple[TransactionClassSpec, ...]:
        """The mixed-class description the lowered cell runs."""
        return (
            TransactionClassSpec(
                name="oltp",
                weight=1.0 - self.query_weight,
                accesses_per_txn=self.oltp_k,
                write_fraction=self.oltp_write_fraction,
            ),
            TransactionClassSpec(
                name="long-query",
                weight=self.query_weight,
                accesses_per_txn=self.query_k,
            ),
        )

    def lower(self, scale: ExperimentScale) -> RunSpec:
        """A stationary mixed-class cell."""
        params = default_system_params(seed=self.seed).with_changes(
            n_terminals=self.n_terminals)
        return RunSpec(
            kind=KIND_STATIONARY,
            cell_id=self.cell_id(),
            params=params,
            scale=scale,
            controller=self._controller_spec(),
            label=self.kind,
            workload_classes=self.workload_classes(),
        )


@register_adversary
@dataclass(frozen=True)
class DisplacementSpikeAdversary(AdversarySpec):
    """Displacement storm: a size spike with eager displacement enabled.

    Like :class:`SizeSpikeAdversary`, but the lowered cell carries a
    zero-hysteresis :class:`~repro.core.displacement.DisplacementPolicy`:
    every downward correction of the limit aborts running transactions.  A
    controller that oscillates after the spike then displaces the same work
    over and over — the livelock signature the oracle scores as
    ``displaced >> commits``.
    """

    kind = "displacement_spike"

    #: offered load (terminals)
    n_terminals: int = 300
    #: accesses per transaction before the spike
    before_k: int = 8
    #: accesses per transaction after the spike
    after_k: int = 32
    #: position of the jump as a fraction of the tracking horizon
    jump_fraction: float = 0.25
    #: victim-selection rule (a :class:`VictimCriterion` value)
    criterion: str = "youngest"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.jump_fraction < 1.0:
            raise ValueError(
                f"jump_fraction must be in (0, 1), got {self.jump_fraction}"
            )
        if self.before_k < 1 or self.after_k < 1:
            raise ValueError("before_k and after_k must be >= 1")
        VictimCriterion(self.criterion)  # raises ValueError on unknown values

    def lower(self, scale: ExperimentScale) -> RunSpec:
        """A tracking cell with displacement enabled across the spike."""
        params = contention_bound_params(seed=self.seed).with_changes(
            n_terminals=self.n_terminals)
        schedule = JumpSchedule(
            before=self.before_k,
            after=min(self.after_k, params.workload.db_size),
            jump_time=self.jump_fraction * scale.tracking_horizon,
        )
        return RunSpec(
            kind=KIND_TRACKING,
            cell_id=self.cell_id(),
            params=params,
            scale=scale,
            controller=self._controller_spec(),
            scenario=("accesses", schedule),
            label=self.kind,
            displacement=DisplacementPolicy(
                criterion=VictimCriterion(self.criterion), hysteresis=0.0),
        )
