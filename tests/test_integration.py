"""End-to-end integration tests: the paper's headline claims at small scale.

These tests run the full stack (DES kernel, transaction model, optimistic
CC, admission gate, measurement loop, controllers) on configurations small
enough for the test suite, and check the qualitative results of the paper:

1. without control the system thrashes (throughput drops as the offered
   load grows);
2. with either adaptive controller (IS or PA) attached, the heavy-load
   throughput stays close to the system's peak;
3. the feedback controllers do not need to know the workload parameters
   (unlike the Tay rule), yet perform at least comparably under a workload
   change.
"""

import pytest

from repro.core.incremental_steps import IncrementalStepsController
from repro.core.parabola import ParabolaController
from repro.core.static import FixedLimit, NoControl
from repro.experiments.config import ExperimentScale, default_system_params
from repro.experiments.dynamic import jump_scenario, run_tracking_experiment
from repro.experiments.stationary import run_stationary_point, sweep_offered_load
from repro.tp.params import WorkloadParams


@pytest.fixture(scope="module")
def params():
    base = default_system_params(seed=11)
    return base.with_changes(
        n_cpus=2,
        workload=WorkloadParams(db_size=600, accesses_per_txn=6,
                                query_fraction=0.25, write_fraction=0.5),
    )


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale(
        stationary_horizon=10.0,
        warmup=3.0,
        offered_loads=(15, 60, 200),
        tracking_horizon=40.0,
        measurement_interval=1.5,
        synthetic_steps=100,
    )


@pytest.fixture(scope="module")
def uncontrolled_sweep(params, scale):
    return sweep_offered_load(params, scale=scale, include_model_reference=False)


class TestThrashingWithoutControl(object):
    def test_throughput_drops_under_overload(self, uncontrolled_sweep):
        moderate = uncontrolled_sweep.throughput_at(60)
        heavy = uncontrolled_sweep.throughput_at(200)
        assert heavy < 0.85 * moderate

    def test_restart_ratio_explodes_under_overload(self, params, scale):
        light = run_stationary_point(params.with_changes(n_terminals=15),
                                     horizon=scale.stationary_horizon, warmup=scale.warmup)
        heavy = run_stationary_point(params.with_changes(n_terminals=200),
                                     horizon=scale.stationary_horizon, warmup=scale.warmup)
        assert heavy.restart_ratio > 3 * max(light.restart_ratio, 0.05)


class TestControlPreventsThrashing(object):
    @pytest.mark.parametrize("factory", [
        lambda p: IncrementalStepsController(initial_limit=8, beta=1.0, gamma=3, delta=8,
                                             lower_bound=2, upper_bound=p.n_terminals),
        lambda p: ParabolaController(initial_limit=8, probe_amplitude=2.0, forgetting=0.9,
                                     lower_bound=2, upper_bound=p.n_terminals),
    ], ids=["incremental-steps", "parabola"])
    def test_controller_recovers_peak_throughput_at_heavy_load(
            self, params, scale, uncontrolled_sweep, factory):
        heavy_params = params.with_changes(n_terminals=200)
        controlled = run_stationary_point(
            heavy_params, controller_factory=factory,
            horizon=scale.stationary_horizon, warmup=scale.warmup,
            measurement_interval=scale.measurement_interval)
        uncontrolled_heavy = uncontrolled_sweep.throughput_at(200)
        peak_uncontrolled = uncontrolled_sweep.peak().throughput
        # controlled throughput at heavy load beats the uncontrolled system
        assert controlled.throughput > uncontrolled_heavy
        # and reaches a solid fraction of the best the system can do at all
        assert controlled.throughput > 0.7 * peak_uncontrolled

    def test_fixed_limit_tuned_for_the_wrong_workload_underperforms(self, params, scale):
        """A fixed bound tuned for small transactions starves large ones."""
        heavy_params = params.with_changes(
            n_terminals=200,
            workload=params.workload.with_changes(accesses_per_txn=12))
        generous = run_stationary_point(
            heavy_params,
            controller_factory=lambda p: ParabolaController(
                initial_limit=8, probe_amplitude=2.0, lower_bound=2,
                upper_bound=p.n_terminals),
            horizon=scale.stationary_horizon, warmup=scale.warmup,
            measurement_interval=scale.measurement_interval)
        starved = run_stationary_point(
            heavy_params,
            controller_factory=lambda p: FixedLimit(2, upper_bound=p.n_terminals),
            horizon=scale.stationary_horizon, warmup=scale.warmup,
            measurement_interval=scale.measurement_interval)
        assert generous.throughput > starved.throughput


class TestAdaptationToWorkloadChange(object):
    def test_controllers_keep_committing_through_a_jump(self, params, scale):
        jump = jump_scenario("accesses", 4, 10, scale.tracking_horizon / 2)
        for factory in (
                lambda: IncrementalStepsController(initial_limit=8, gamma=3, delta=8,
                                                   lower_bound=2, upper_bound=120),
                lambda: ParabolaController(initial_limit=8, probe_amplitude=2.0,
                                           lower_bound=2, upper_bound=120)):
            result = run_tracking_experiment(
                factory(), jump, base_params=params.with_changes(n_terminals=120),
                scale=scale)
            # commits keep happening in the second half of the run
            second_half = [t for t, thr in zip(result.trace.times, result.trace.throughput)
                           if t > scale.tracking_horizon / 2 and thr > 0]
            assert second_half, "no commits at all after the workload jump"
            assert result.total_commits > 100
