"""Tests for the runner's picklable experiment descriptors."""

import json
import pickle

import pytest

from repro.cc.registry import CCSpec
from repro.core.displacement import DisplacementPolicy, VictimCriterion
from repro.core.incremental_steps import IncrementalStepsController
from repro.core.parabola import ParabolaController
from repro.core.static import FixedLimit, NoControl
from repro.experiments.config import ExperimentScale, default_system_params
from repro.experiments.dynamic import jump_scenario
from repro.runner.specs import (
    KIND_STATIONARY,
    KIND_TRACKING,
    ControllerSpec,
    RunSpec,
    SweepSpec,
    controller_kinds,
    run_spec_from_jsonable,
    run_spec_to_jsonable,
)
from repro.tp.workload import (
    ConstantSchedule,
    JumpSchedule,
    SinusoidSchedule,
    StepSchedule,
    TransactionClassSpec,
)


def _stationary_spec(**overrides):
    settings = dict(
        kind=KIND_STATIONARY,
        cell_id="test/cell/N=50",
        params=default_system_params().with_changes(n_terminals=50),
        scale=ExperimentScale.smoke(),
        controller=None,
        label="test",
    )
    settings.update(overrides)
    return RunSpec(**settings)


class TestControllerSpec:
    def test_make_sorts_options(self):
        first = ControllerSpec.make("parabola", forgetting=0.9, initial_limit=10)
        second = ControllerSpec.make("parabola", initial_limit=10, forgetting=0.9)
        assert first == second
        assert hash(first) == hash(second)

    def test_build_constructs_controller(self):
        params = default_system_params().with_changes(n_terminals=123)
        spec = ControllerSpec.make("parabola", initial_limit=15)
        controller = spec.build(params)
        assert isinstance(controller, ParabolaController)
        assert controller.initial_limit == 15
        # bounds default to the cell's offered load
        assert controller.upper_bound == 123

    def test_build_returns_fresh_instances(self):
        params = default_system_params()
        spec = ControllerSpec.make("incremental_steps")
        assert spec.build(params) is not spec.build(params)
        assert isinstance(spec.build(params), IncrementalStepsController)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown controller kind"):
            ControllerSpec.make("nonsense").build(default_system_params())

    def test_registry_contains_all_section1_policies(self):
        kinds = controller_kinds()
        for kind in ("no_control", "fixed", "tay", "iyer",
                     "incremental_steps", "parabola"):
            assert kind in kinds

    def test_static_kinds(self):
        params = default_system_params()
        assert isinstance(ControllerSpec.make("no_control").build(params), NoControl)
        fixed = ControllerSpec.make("fixed", limit=33).build(params)
        assert isinstance(fixed, FixedLimit)
        assert fixed.limit == 33

    def test_specs_are_picklable(self):
        spec = ControllerSpec.make("parabola", initial_limit=10)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestRunSpec:
    def test_tracking_requires_scenario(self):
        with pytest.raises(ValueError, match="scenario"):
            _stationary_spec(kind=KIND_TRACKING,
                             controller=ControllerSpec.make("parabola"))

    def test_tracking_requires_controller(self):
        scenario = jump_scenario("accesses", 4, 8, jump_time=10.0)
        with pytest.raises(ValueError, match="controller"):
            _stationary_spec(kind=KIND_TRACKING, scenario=scenario)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            _stationary_spec(kind="warp")

    def test_negative_replicate_rejected(self):
        with pytest.raises(ValueError, match="replicate"):
            _stationary_spec(replicate=-1)

    def test_controller_factory_paths(self):
        assert _stationary_spec(controller=None).controller_factory() is None
        spec_controller = _stationary_spec(controller=ControllerSpec.make("parabola"))
        assert isinstance(spec_controller.build_controller(), ParabolaController)

        def factory(params):
            return NoControl(upper_bound=params.n_terminals)

        callable_controller = _stationary_spec(controller=factory)
        assert isinstance(callable_controller.build_controller(), NoControl)

    def test_run_spec_is_picklable(self):
        scenario = jump_scenario("accesses", 4, 8, jump_time=10.0)
        spec = _stationary_spec(kind=KIND_TRACKING, scenario=scenario,
                                controller=ControllerSpec.make("parabola"))
        restored = pickle.loads(pickle.dumps(spec))
        assert restored.cell_id == spec.cell_id
        assert restored.scenario[0] == "accesses"
        assert restored.scenario[1].value(20.0) == 8


class TestSweepSpec:
    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one cell"):
            SweepSpec(name="empty", cells=())

    def test_with_replicates_expands_in_order(self):
        sweep = SweepSpec(name="s", cells=(_stationary_spec(),))
        expanded = sweep.with_replicates(3)
        assert len(expanded) == 3
        assert [cell.replicate for cell in expanded.cells] == [0, 1, 2]
        assert expanded.cell_ids() == sweep.cell_ids()

    def test_with_replicates_one_is_identity(self):
        sweep = SweepSpec(name="s", cells=(_stationary_spec(),))
        assert sweep.with_replicates(1) is sweep

    def test_hand_expanded_sweep_passes_through_replicates_one(self):
        # a sweep built with explicit replicate indices is legal input to
        # run_sweep's default replicates=1 path
        sweep = SweepSpec(name="s", cells=(
            _stationary_spec(replicate=0), _stationary_spec(replicate=1)))
        assert sweep.with_replicates(1) is sweep

    def test_double_expansion_rejected(self):
        sweep = SweepSpec(name="s", cells=(_stationary_spec(),)).with_replicates(2)
        with pytest.raises(ValueError, match="already been expanded"):
            sweep.with_replicates(2)

    def test_duplicate_cell_ids_rejected(self):
        # two different cells sharing an id would be pooled into one
        # aggregate downstream, silently mixing unrelated samples
        with pytest.raises(ValueError, match="duplicate cell"):
            SweepSpec(name="s", cells=(_stationary_spec(), _stationary_spec()))


class TestRunSpecJsonRoundTrip:
    def _tracking_spec(self, **overrides):
        parameter, schedule = jump_scenario(
            parameter="accesses", before=8, after=16, jump_time=10.0)
        settings = dict(
            kind=KIND_TRACKING,
            cell_id="test/tracking/jump",
            params=default_system_params(),
            scale=ExperimentScale.smoke(),
            controller=ControllerSpec.make("incremental_steps", beta=1.5),
            scenario=(parameter, schedule),
            label="tracking",
        )
        settings.update(overrides)
        return RunSpec(**settings)

    def test_stationary_spec_round_trips_exactly(self):
        spec = _stationary_spec(
            controller=ControllerSpec.make("parabola", forgetting=0.8))
        clone = run_spec_from_jsonable(run_spec_to_jsonable(spec))
        assert clone == spec

    def test_tracking_spec_round_trips_exactly(self):
        spec = self._tracking_spec()
        clone = run_spec_from_jsonable(run_spec_to_jsonable(spec))
        assert clone == spec

    def test_every_schedule_type_round_trips(self):
        schedules = (
            ConstantSchedule(8.0),
            JumpSchedule(before=4, after=20, jump_time=12.5),
            StepSchedule(initial=8, steps=[(5.0, 16.0), (10.0, 4.0)]),
            SinusoidSchedule(mean=10.0, amplitude=4.0, period=30.0, phase=2.0),
        )
        for schedule in schedules:
            spec = self._tracking_spec(scenario=("accesses", schedule))
            clone = run_spec_from_jsonable(run_spec_to_jsonable(spec))
            assert clone.scenario[1] == schedule, type(schedule).__name__

    def test_rich_spec_round_trips_exactly(self):
        spec = _stationary_spec(
            controller=ControllerSpec.make("incremental_steps"),
            displacement=DisplacementPolicy(
                criterion=VictimCriterion.QUERIES_FIRST, hysteresis=2.0),
            workload_classes=(
                TransactionClassSpec(name="oltp", weight=3.0,
                                     accesses_per_txn=4, write_fraction=0.6),
                TransactionClassSpec(name="query", weight=1.0,
                                     accesses_per_txn=20),
            ),
            cc=CCSpec.make("occ_forward"),
            scheme_diagnostics=True,
            replicate=2,
        )
        encoded = run_spec_to_jsonable(spec)
        # the encoding itself must be pure JSON: a dump/load cycle is lossless
        decoded = json.loads(json.dumps(encoded))
        clone = run_spec_from_jsonable(decoded)
        assert clone == spec

    def test_encoding_is_json_serialisable_and_stable(self):
        spec = self._tracking_spec()
        first = json.dumps(run_spec_to_jsonable(spec), sort_keys=True)
        second = json.dumps(run_spec_to_jsonable(spec), sort_keys=True)
        assert first == second

    def test_callable_controller_rejected(self):
        spec = _stationary_spec(controller=NoControl)
        with pytest.raises(ValueError, match="ControllerSpec"):
            run_spec_to_jsonable(spec)

    def test_callable_cc_rejected(self):
        def factory(sim):
            raise NotImplementedError

        spec = _stationary_spec(cc=factory)
        with pytest.raises(ValueError, match="CCSpec"):
            run_spec_to_jsonable(spec)

    def test_non_scalar_option_rejected(self):
        spec = _stationary_spec(
            controller=ControllerSpec.make("fixed", limit=[1, 2]))
        with pytest.raises(ValueError, match="JSON scalar"):
            run_spec_to_jsonable(spec)

    def test_unknown_format_rejected(self):
        encoded = run_spec_to_jsonable(_stationary_spec())
        encoded["format"] = 999
        with pytest.raises(ValueError, match="format"):
            run_spec_from_jsonable(encoded)

    def test_unknown_schedule_type_rejected(self):
        encoded = run_spec_to_jsonable(self._tracking_spec())
        encoded["scenario"]["schedule"]["type"] = "sawtooth"
        with pytest.raises(ValueError, match="sawtooth"):
            run_spec_from_jsonable(encoded)


class TestArrivalsOnRunSpec:
    def _arrival_variants(self):
        from repro.tp.arrivals import (
            ClosedArrivals,
            OpenArrivals,
            PartlyOpenArrivals,
        )

        return (
            ClosedArrivals(),
            OpenArrivals(12.0),
            OpenArrivals(SinusoidSchedule(mean=10.0, amplitude=6.0, period=4.0)),
            PartlyOpenArrivals(JumpSchedule(before=5.0, after=20.0, jump_time=6.0),
                               session_alpha=1.5, min_session=1, max_session=20,
                               session_think_time=0.05),
        )

    def test_every_arrival_kind_round_trips_exactly(self):
        for arrivals in self._arrival_variants():
            spec = _stationary_spec(arrivals=arrivals)
            encoded = json.loads(json.dumps(run_spec_to_jsonable(spec)))
            clone = run_spec_from_jsonable(encoded)
            assert clone == spec, type(arrivals).__name__
            assert clone.arrivals == arrivals

    def test_encoder_omits_the_key_when_arrivals_are_closed_by_default(self):
        """Pre-arrivals archives (and the fuzz corpus) must stay
        byte-identical, so the field only appears when set."""
        data = run_spec_to_jsonable(_stationary_spec())
        assert "arrivals" not in data

    def test_decoder_tolerates_archives_predating_arrivals(self):
        data = run_spec_to_jsonable(_stationary_spec())
        assert run_spec_from_jsonable(data).arrivals is None

    def test_unknown_arrival_kind_rejected(self):
        from repro.tp.arrivals import OpenArrivals

        encoded = run_spec_to_jsonable(_stationary_spec(arrivals=OpenArrivals(5.0)))
        encoded["arrivals"]["kind"] = "teleport"
        with pytest.raises(ValueError, match="teleport"):
            run_spec_from_jsonable(encoded)

    def test_arrivals_are_stationary_only(self):
        from repro.tp.arrivals import OpenArrivals

        parameter, schedule = jump_scenario(
            parameter="accesses", before=8, after=16, jump_time=10.0)
        with pytest.raises(ValueError, match="stationary"):
            RunSpec(
                kind=KIND_TRACKING,
                cell_id="test/tracking/open",
                params=default_system_params(),
                scale=ExperimentScale.smoke(),
                controller=ControllerSpec.make("incremental_steps"),
                scenario=(parameter, schedule),
                arrivals=OpenArrivals(5.0),
            )

    def test_workload_class_quotas_round_trip(self):
        spec = _stationary_spec(
            workload_classes=(
                TransactionClassSpec(name="steady", weight=1.0,
                                     accesses_per_txn=8, write_fraction=0.3,
                                     queue_quota=40),
                TransactionClassSpec(name="burst", weight=3.0,
                                     accesses_per_txn=8, write_fraction=0.3,
                                     admission_quota=6, queue_quota=6),
            ),
        )
        encoded = json.loads(json.dumps(run_spec_to_jsonable(spec)))
        assert run_spec_from_jsonable(encoded) == spec

    def test_quota_free_classes_encode_without_quota_keys(self):
        spec = _stationary_spec(
            workload_classes=(
                TransactionClassSpec(name="oltp", weight=1.0,
                                     accesses_per_txn=4),
            ),
        )
        [encoded_class] = run_spec_to_jsonable(spec)["workload_classes"]
        assert "admission_quota" not in encoded_class
        assert "queue_quota" not in encoded_class

    def test_arrival_spec_is_picklable(self):
        for arrivals in self._arrival_variants():
            spec = _stationary_spec(arrivals=arrivals)
            assert pickle.loads(pickle.dumps(spec)) == spec
