"""Section 9, sinusoidal study: both controllers follow gradual changes.

The paper reports that, unlike the jump case where PA is clearly superior,
*both* algorithms were able to follow gradual (sinusoidal) workload
variation.  This benchmark reproduces that finding twice:

* on the synthetic plant (exact reference optimum, fast), where the optimum
  position follows a sinusoid; and
* on the full discrete-event system through the runner's ``sinusoid``
  scenario (IS and PA cells are independent and parallelise across
  workers), where the transaction size varies sinusoidally and the
  reference optimum comes from the analytic OCC model.
"""

from conftest import run_once

from repro.core.incremental_steps import IncrementalStepsController
from repro.core.parabola import ParabolaController
from repro.experiments.dynamic import run_synthetic_tracking
from repro.experiments.report import format_comparison
from repro.experiments.tracking import compute_tracking_metrics
from repro.runner import run_sweep, tracking_results
from repro.tp.workload import SinusoidSchedule


def _synthetic_controllers(upper_bound):
    return {
        "IS": IncrementalStepsController(initial_limit=40, beta=0.5, gamma=8, delta=20,
                                         min_step=4.0, lower_bound=4, upper_bound=upper_bound),
        "PA": ParabolaController(initial_limit=40, forgetting=0.85, probe_amplitude=6.0,
                                 max_move=40.0, lower_bound=4, upper_bound=upper_bound),
    }


def test_sinusoidal_workload_tracking(benchmark, scale, workers, replicates):
    def experiment():
        synthetic = {}
        for name, controller in _synthetic_controllers(400).items():
            result = run_synthetic_tracking(
                controller,
                position_schedule=SinusoidSchedule(mean=100.0, amplitude=40.0,
                                                   period=scale.synthetic_steps / 2.0),
                steps=scale.synthetic_steps, noise_std=2.0, seed=31)
            synthetic[name] = compute_tracking_metrics(
                result, evaluate_after=scale.synthetic_steps * 0.2)
        sweep_result = run_sweep("sinusoid", scale=scale, workers=workers,
                                 replicates=replicates)
        simulated = {
            name: compute_tracking_metrics(
                result, evaluate_after=scale.tracking_horizon * 0.2)
            for name, result in tracking_results(sweep_result).items()
        }
        return synthetic, simulated

    synthetic, simulated = run_once(benchmark, experiment)

    print()
    print("Sinusoidal variation — synthetic plant (exact reference):")
    print(format_comparison(synthetic))
    print()
    print("Sinusoidal variation — discrete-event system (analytic reference):")
    print(format_comparison(simulated))

    for name, metrics in synthetic.items():
        benchmark.extra_info[f"synthetic_{name}_rel_error"] = round(metrics.mean_relative_error, 3)
    for name, metrics in simulated.items():
        benchmark.extra_info[f"simulated_{name}_rel_error"] = round(metrics.mean_relative_error, 3)

    # both controllers follow the gradual change on the synthetic plant:
    # the settled relative tracking error stays moderate
    for name, metrics in synthetic.items():
        assert metrics.mean_relative_error < 0.45, f"{name} lost the sinusoidal optimum"
    # and on the full system both keep committing work near the reference peak
    for name, metrics in simulated.items():
        assert metrics.throughput_ratio > 0.3, f"{name} collapsed under the sinusoidal load"
