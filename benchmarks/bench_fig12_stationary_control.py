"""Figure 12: system throughput with and without control (stationary case).

The paper sweeps the offered load from 100 to 800 terminals under constant
workload parameters and shows two curves: the uncontrolled system, whose
throughput collapses under heavy load, and the controlled system (PA shown;
IS indistinguishable in this case), whose throughput stays at the peak for
every offered load.

The reproduction runs the runner's ``fig12_stationary`` scenario — all
(offered load × controller) cells are independent, so ``REPRO_BENCH_WORKERS``
fans them out over processes and ``REPRO_BENCH_REPLICATES`` adds mean ± CI
columns — and checks the paper's qualitative statements:

* both controllers keep heavy-load throughput close to the peak of the
  uncontrolled curve;
* the difference between PA and IS is small in the stationary case.
"""

from conftest import run_once

from repro.experiments.report import format_sweep_table
from repro.runner import run_sweep, stationary_sweeps


def test_fig12_throughput_with_and_without_control(benchmark, scale, workers, replicates):
    def experiment():
        result = run_sweep("fig12_stationary", scale=scale, workers=workers,
                           replicates=replicates)
        return stationary_sweeps(result)

    sweeps = run_once(benchmark, experiment)
    without = sweeps["without control"]
    with_is = sweeps["IS control"]
    with_pa = sweeps["PA control"]

    print()
    print("Figure 12 — throughput with and without control (stationary)")
    print(format_sweep_table([without, with_is, with_pa]))

    peak = without.peak().throughput
    heaviest = max(point.offered_load for point in without.points)
    benchmark.extra_info["offered_loads"] = list(scale.offered_loads)
    benchmark.extra_info["without_control"] = [round(p.throughput, 2) for p in without.points]
    benchmark.extra_info["is_control"] = [round(p.throughput, 2) for p in with_is.points]
    benchmark.extra_info["pa_control"] = [round(p.throughput, 2) for p in with_pa.points]
    benchmark.extra_info["uncontrolled_peak"] = round(peak, 2)

    # thrashing without control at the heaviest load
    assert without.throughput_at(heaviest) < 0.85 * peak
    # both controllers hold the heavy-load throughput near the peak
    for sweep in (with_is, with_pa):
        assert sweep.throughput_at(heaviest) > without.throughput_at(heaviest)
        assert sweep.throughput_at(heaviest) > 0.7 * peak
    # the controllers are close to each other in the stationary case
    pa_heavy = with_pa.throughput_at(heaviest)
    is_heavy = with_is.throughput_at(heaviest)
    assert abs(pa_heavy - is_heavy) < 0.35 * max(pa_heavy, is_heavy)
