"""Tests for the plain-text report formatting."""

import pytest

from repro.core.types import ControlTrace, IntervalMeasurement
from repro.experiments.dynamic import TrackingResult
from repro.experiments.report import (
    format_comparison,
    format_series_table,
    format_sweep_table,
    format_table,
)
from repro.experiments.stationary import StationaryPoint, StationarySweep
from repro.experiments.tracking import compute_tracking_metrics


def make_point(load, throughput):
    return StationaryPoint(
        offered_load=load, throughput=throughput, mean_response_time=0.2,
        mean_concurrency=load / 2, restart_ratio=0.1, cpu_utilisation=0.8,
        final_limit=float(load), commits=1000)


def make_sweep(label, pairs):
    sweep = StationarySweep(label=label)
    for load, throughput in pairs:
        sweep.points.append(make_point(load, throughput))
    return sweep


def make_tracking_result():
    trace = ControlTrace()
    for time in (1.0, 2.0, 3.0):
        measurement = IntervalMeasurement(
            time=time, interval_length=1.0, throughput=40.0,
            mean_concurrency=20.0, concurrency_at_sample=20.0,
            current_limit=25.0, commits=40)
        trace.append(measurement, 25.0)
    return TrackingResult(controller="pa", varied_parameter="accesses", trace=trace,
                          reference_optima=[22.0, 22.0, 22.0],
                          reference_peaks=[50.0, 50.0, 50.0])


class TestFormatTable:
    def test_headers_and_rows_present(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = table.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4
        assert "2.50" in lines[2]

    def test_column_widths_accommodate_long_cells(self):
        table = format_table(["short"], [["a very long cell value"]])
        header, separator, row = table.splitlines()
        assert len(separator) >= len("a very long cell value")


class TestSweepTable:
    def test_requires_at_least_one_sweep(self):
        with pytest.raises(ValueError):
            format_sweep_table([])

    def test_one_row_per_offered_load(self):
        without = make_sweep("without control", [(100, 50.0), (200, 30.0)])
        with_control = make_sweep("with control", [(100, 52.0), (200, 51.0)])
        table = format_sweep_table([without, with_control])
        lines = table.splitlines()
        assert len(lines) == 2 + 2  # header + separator + two loads
        assert "without control" in lines[0]
        assert "with control" in lines[0]

    def test_missing_load_rendered_as_dash(self):
        without = make_sweep("without control", [(100, 50.0), (200, 30.0)])
        partial = make_sweep("with control", [(100, 52.0)])
        table = format_sweep_table([without, partial])
        assert "-" in table.splitlines()[-1]


class TestSeriesTable:
    def test_contains_threshold_and_reference_columns(self):
        table = format_series_table(make_tracking_result())
        assert "n* (threshold)" in table
        assert "n_opt (reference)" in table
        assert len(table.splitlines()) == 2 + 3

    def test_subsampling(self):
        table = format_series_table(make_tracking_result(), every=2)
        assert len(table.splitlines()) == 2 + 2  # rows at indices 0 and 2

    def test_every_validation(self):
        with pytest.raises(ValueError):
            format_series_table(make_tracking_result(), every=0)


class TestComparisonTable:
    def test_one_row_per_controller(self):
        metrics = compute_tracking_metrics(make_tracking_result())
        table = format_comparison({"IS": metrics, "PA": metrics})
        lines = table.splitlines()
        assert len(lines) == 2 + 2
        assert "IS" in table and "PA" in table
