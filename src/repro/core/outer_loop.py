"""The outer control loop: automatic tuning of the measurement interval.

Section 5: "Tuning does not necessarily mean manual adjustment, it can also
be done automatically by an overlaid, outer control loop that takes
long-term measurements to adjust the parameters of the inner control loop"
and "an estimate should comprise rather hundreds of departures than some
tens".

The tuner implemented here adjusts the measurement interval so each interval
contains approximately ``target_departures`` commits:

* the number of departures needed for a given relative accuracy and
  confidence follows from the coefficient of variation of the departure
  process (:func:`repro.sim.stats.required_observations`), which the tuner
  estimates online from the per-interval throughput series;
* the interval is then ``needed_departures / throughput``, smoothed
  exponentially and clamped to a configurable band so a momentary throughput
  collapse (exactly the situation the controller must react to quickly!)
  cannot stretch the interval without bound.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.types import IntervalMeasurement
from repro.sim.stats import ObservationStats, required_observations


class MeasurementIntervalTuner:
    """Keeps each measurement interval at ~``target_departures`` commits."""

    def __init__(self,
                 target_departures: Optional[int] = None,
                 relative_accuracy: float = 0.1,
                 confidence: float = 0.95,
                 min_interval: float = 0.5,
                 max_interval: float = 60.0,
                 smoothing: float = 0.5):
        """Create the tuner.

        If ``target_departures`` is given it is used directly; otherwise the
        target is derived from ``relative_accuracy`` and ``confidence`` using
        the running estimate of the departure-process coefficient of
        variation.  ``smoothing`` in (0, 1] is the exponential-update weight
        of the new interval proposal (1 = jump immediately).
        """
        if target_departures is not None and target_departures < 1:
            raise ValueError(f"target_departures must be >= 1, got {target_departures}")
        if min_interval <= 0 or max_interval < min_interval:
            raise ValueError(
                f"need 0 < min_interval <= max_interval, got {min_interval}, {max_interval}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.target_departures = target_departures
        self.relative_accuracy = float(relative_accuracy)
        self.confidence = float(confidence)
        self.min_interval = float(min_interval)
        self.max_interval = float(max_interval)
        self.smoothing = float(smoothing)
        self._throughput_stats = ObservationStats()
        self.adjustments = 0

    # ------------------------------------------------------------------
    def _needed_departures(self) -> int:
        if self.target_departures is not None:
            return self.target_departures
        mean = self._throughput_stats.mean
        if self._throughput_stats.count < 3 or mean <= 0:
            # not enough information yet: use the paper's "hundreds rather
            # than tens" guidance as the default
            return 100
        coefficient_of_variation = self._throughput_stats.stddev / mean
        return required_observations(
            max(coefficient_of_variation, 0.1), self.relative_accuracy, self.confidence
        )

    def next_interval(self, current_interval: float,
                      measurement: IntervalMeasurement) -> float:
        """Propose the length of the next measurement interval."""
        self._throughput_stats.add(measurement.throughput)
        throughput = measurement.throughput
        if throughput <= 0:
            # no commits at all: lengthen cautiously, the system may be
            # recovering from an overload the controller just resolved
            proposal = min(self.max_interval, current_interval * 2.0)
        else:
            proposal = self._needed_departures() / throughput
        proposal = min(self.max_interval, max(self.min_interval, proposal))
        new_interval = (1.0 - self.smoothing) * current_interval + self.smoothing * proposal
        new_interval = min(self.max_interval, max(self.min_interval, new_interval))
        if not math.isclose(new_interval, current_interval, rel_tol=1e-9):
            self.adjustments += 1
        return new_interval

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MeasurementIntervalTuner target={self.target_departures} "
            f"band=[{self.min_interval}, {self.max_interval}]>"
        )
