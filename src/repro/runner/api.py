"""The runner's top-level entry point: run a sweep, get ordered results.

:func:`run_sweep` ties the layers together: it resolves a scenario name (or
accepts a ready :class:`~repro.runner.specs.SweepSpec`), expands replicates,
selects a serial or parallel executor from ``workers``, runs every cell,
and aggregates replicates into mean ± confidence-interval summaries.

Converters turn a :class:`SweepResult` back into the result objects the
figure-level code has always consumed
(:class:`~repro.experiments.stationary.StationarySweep` curves and
:class:`~repro.experiments.dynamic.TrackingResult` trajectories), so
benchmarks keep their assertions while execution is delegated here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.experiments.config import ExperimentScale
from repro.runner.cells import CellResult, execute_run_spec
from repro.runner.executor import make_executor
from repro.runner.registry import build_sweep
from repro.runner.replication import CellAggregate, aggregate_cells
from repro.runner.specs import KIND_STATIONARY, KIND_TRACKING, RunSpec, SweepSpec
from repro.tp.params import SystemParams


@dataclass
class SweepResult:
    """Everything one sweep produced, in deterministic cell order."""

    spec: SweepSpec
    #: one entry per executed run (cells × replicates), in spec order
    results: List[CellResult] = field(default_factory=list)
    #: one entry per cell, replicates folded into mean ± CI summaries
    aggregates: List[CellAggregate] = field(default_factory=list)

    @property
    def replicates(self) -> int:
        """Replicates per cell (1 when the sweep was not expanded)."""
        cell_count = len(self.spec.cell_ids())
        return len(self.results) // cell_count if cell_count else 0

    def by_cell(self) -> Dict[str, List[CellResult]]:
        """Results grouped by cell id, in first-appearance order."""
        grouped: Dict[str, List[CellResult]] = {}
        for result in self.results:
            grouped.setdefault(result.cell_id, []).append(result)
        return grouped

    def aggregate(self, cell_id: str) -> CellAggregate:
        """The aggregate of one cell (KeyError if the id is unknown)."""
        for aggregate in self.aggregates:
            if aggregate.cell_id == cell_id:
                return aggregate
        raise KeyError(f"no cell {cell_id!r} in sweep {self.spec.name!r}")

    def labels(self) -> List[str]:
        """Distinct cell labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for cell in self.spec.cells:
            seen.setdefault(cell.label, None)
        return list(seen)


def run_sweep(sweep: Union[str, SweepSpec], *,
              workers: Optional[int] = 0,
              replicates: int = 1,
              scale: Optional[ExperimentScale] = None,
              base_params: Optional[SystemParams] = None,
              executor=None,
              address: Optional[str] = None,
              confidence: float = 0.95,
              **scenario_overrides) -> SweepResult:
    """Run a sweep (by name or spec) and aggregate its replicates.

    ``workers`` selects the executor: 0/1 run serially in-process, ``N>1``
    fan out over ``N`` processes, ``None`` uses every CPU.
    ``address="host:port"`` serves the cells to networked
    ``repro-dist-worker`` processes instead (the executor is owned, and
    closed, by this call; pass a ready ``executor`` — e.g. a
    :class:`~repro.dist.cluster.LocalCluster` — to manage its lifetime
    yourself).  Results are bit-identical between all settings.
    ``scale``, ``base_params`` and extra keyword arguments are forwarded
    to the scenario builder and are only valid when ``sweep`` is a
    scenario name.
    """
    if isinstance(sweep, str):
        spec = build_sweep(sweep, scale=scale, base_params=base_params,
                           **scenario_overrides)
    else:
        if scale is not None or base_params is not None or scenario_overrides:
            raise TypeError(
                "scale/base_params/overrides apply to named scenarios only; "
                "build the SweepSpec with them instead"
            )
        spec = sweep
    expanded = spec.with_replicates(replicates)
    owned_executor = None
    if executor is None:
        executor = owned_executor = make_executor(workers, address=address)
    elif address is not None:
        raise TypeError("pass either executor= or address=, not both")
    try:
        results = executor.execute(execute_run_spec, expanded.cells)
    finally:
        if owned_executor is not None and hasattr(owned_executor, "close"):
            owned_executor.close()
    aggregates = aggregate_cells(results, confidence=confidence)
    return SweepResult(spec=expanded, results=results, aggregates=aggregates)


# ----------------------------------------------------------------------
# converters back to the figure-level result objects
# ----------------------------------------------------------------------
def stationary_sweeps(result: SweepResult,
                      include_model_reference: bool = True) -> Dict[str, object]:
    """Fold a stationary sweep's cells into one curve per controller label.

    Returns ``{label: StationarySweep}`` in first-appearance order.  With a
    single replicate the points are exactly the worker-produced
    :class:`~repro.experiments.stationary.StationaryPoint` objects; with
    several, each point carries the replicate means and the sweep's
    ``aggregates`` map offered load to the full per-metric summaries.

    The analytic reference is *scheme-aware*: locking-family cells
    (``two_phase_locking`` / ``wound_wait`` / ``wait_die``) are referenced
    against Tay's blocking model, optimistic ones against the OCC fixed
    point (see :mod:`repro.analytic.references`); the sweep's
    ``model_reference_name`` records which model filled its
    ``model_reference`` column.
    """
    from repro.analytic.references import reference_model_for
    from repro.experiments.stationary import StationaryPoint, StationarySweep

    specs_by_id: Dict[str, RunSpec] = {}
    for cell in result.spec.cells:
        specs_by_id.setdefault(cell.cell_id, cell)

    sweeps: Dict[str, StationarySweep] = {}
    for aggregate in result.aggregates:
        if aggregate.kind != KIND_STATIONARY:
            continue
        spec = specs_by_id[aggregate.cell_id]
        sweep = sweeps.get(spec.label)
        if sweep is None:
            sweep = StationarySweep(label=spec.label)
            sweeps[spec.label] = sweep
        if aggregate.count == 1:
            point = aggregate.replicates[0].payload
        else:
            point = _mean_stationary_point(StationaryPoint, spec, aggregate)
            sweep.aggregates[spec.params.n_terminals] = aggregate
        sweep.points.append(point)
        if include_model_reference:
            name, model = reference_model_for(spec.params, spec.cc)
            sweep.model_reference_name = name
            # the uncontrolled system operates near the offered load, the
            # controlled one near the model's optimum
            if spec.controller is None:
                reference_mpl = float(spec.params.n_terminals)
            else:
                reference_mpl = model.optimal_mpl()
            sweep.model_reference[spec.params.n_terminals] = model.throughput(reference_mpl)
    return sweeps


def _mean_stationary_point(point_type, spec: RunSpec, aggregate: CellAggregate):
    """A synthetic point carrying the replicate means of every metric."""
    mean = {name: summary.mean for name, summary in aggregate.metrics.items()}
    return point_type(
        offered_load=spec.params.n_terminals,
        throughput=mean["throughput"],
        mean_response_time=mean["mean_response_time"],
        mean_concurrency=mean["mean_concurrency"],
        restart_ratio=mean["restart_ratio"],
        cpu_utilisation=mean["cpu_utilisation"],
        final_limit=mean["final_limit"],
        commits=int(round(mean["commits"])),
        # diagnostics cells report aborts_<reason> / anomalies_<kind>
        # metrics; fold their replicate means back so replicated sweeps
        # keep per-reason and per-anomaly data
        aborts_by_reason={name[len("aborts_"):]: int(round(value))
                          for name, value in mean.items()
                          if name.startswith("aborts_")},
        anomalies={name[len("anomalies_"):]: int(round(value))
                   for name, value in mean.items()
                   if name.startswith("anomalies_")},
        probe_metrics={name: value for name, value in mean.items()
                       if name.startswith("probe_")},
    )


def tracking_results(result: SweepResult) -> Dict[str, object]:
    """The first replicate's trajectory per tracking cell, keyed by label.

    Trajectories of different replicates cannot be averaged sample-by-sample
    (their sampling instants differ once the run diverges), so the full
    :class:`~repro.experiments.dynamic.TrackingResult` of replicate 0
    represents each cell; the scalar mean ± CI summaries remain available
    through :attr:`SweepResult.aggregates`.  A cell is keyed by its label
    only while that is unambiguous (unique, and not the id of another
    cell); otherwise by its unique cell id — no cell is ever silently
    dropped.
    """
    tracked = [aggregate for aggregate in result.aggregates
               if aggregate.kind == KIND_TRACKING]
    label_counts: Dict[str, int] = {}
    for aggregate in tracked:
        if aggregate.label:
            label_counts[aggregate.label] = label_counts.get(aggregate.label, 0) + 1
    cell_ids = {aggregate.cell_id for aggregate in tracked}
    trajectories: Dict[str, object] = {}
    for aggregate in tracked:
        label = aggregate.label
        unambiguous = (label and label_counts[label] == 1
                       and (label == aggregate.cell_id or label not in cell_ids))
        key = label if unambiguous else aggregate.cell_id
        first = min(aggregate.replicates, key=lambda replicate: replicate.replicate)
        trajectories[key] = first.payload
    return trajectories
