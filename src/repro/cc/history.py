"""History-based serializability oracle for concurrency control schemes.

The isolation-testing literature (HISTEX; AWDIT) argues that the way to
trust a *family* of concurrency control schemes is not per-scheme
hand-written assertions but a checker that works on the recorded history:
record what every transaction actually read, wrote and committed, then
decide from the history alone whether the committed transactions are
(conflict-)serializable.  A scheme added to the registry is then certified
by exactly the same oracle as the existing ones.

Two pieces:

* :class:`RecordingConcurrencyControl` — an opt-in decorator around any
  :class:`~repro.cc.base.ConcurrencyControl` that observes the scheme
  through its public surface only (``begin`` / ``access`` / ``try_commit``
  / ``finish`` / ``abort``) and feeds a :class:`HistoryRecorder`.  Reads
  are recorded when they *happen*: immediately for non-blocking schemes,
  at the lock **grant** (not the request) for blocking ones — the wrapper
  registers a callback on the returned wait event and skips requests that
  fail.  Aborted executions leave no trace; only the committed execution
  of each transaction enters the history.
* :func:`check_serializability` — builds the conflict graph over the
  committed executions and reports a cycle if one exists.

**Operation timing model.**  Reads take effect at the recorded grant time.
Writes take effect at the writer's *commit*: optimistic schemes buffer
their writes until commit by definition, and under **strict** 2PL the
exclusive lock is held until commit, so no other transaction can observe
the granule between the write access and the release either way.  Two
operations on the same granule conflict if they come from different
transactions and at least one is a write; the conflict edge points from
the operation that took effect first (ties broken by the deterministic
record sequence number, which follows the engine's processing order).
Committed transactions are serializable iff this graph is acyclic —
:func:`check_serializability` returns the verdict plus a witness cycle
for post-mortems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cc.base import AbortReason, ConcurrencyControl
from repro.sim.engine import Event

#: one read operation: (granule, time it took effect, record sequence)
ReadOp = Tuple[int, float, int]


@dataclass(frozen=True)
class CommittedExecution:
    """The committed execution of one transaction, as recorded."""

    txn_id: int
    #: reads in the order they took effect (granule, time, sequence)
    reads: Tuple[ReadOp, ...]
    #: granules written; they take effect at (commit_time, commit_seq)
    writes: Tuple[int, ...]
    commit_time: float
    commit_seq: int


@dataclass
class HistoryRecorder:
    """Accumulates the committed history of one simulation run."""

    committed: List[CommittedExecution] = field(default_factory=list)
    #: executions that were begun (committed or not) — exposes coverage
    executions: int = 0
    _seq: int = 0
    _reads: Dict[int, List[ReadOp]] = field(default_factory=dict)
    _writes: Dict[int, Set[int]] = field(default_factory=dict)

    def next_seq(self) -> int:
        """A fresh, strictly increasing record sequence number."""
        self._seq += 1
        return self._seq

    def start_execution(self, txn_id: int) -> None:
        """A (re-)execution begins: discard the previous attempt's ops."""
        self.executions += 1
        self._reads[txn_id] = []
        self._writes[txn_id] = set()

    def record_read(self, txn_id: int, item: int, time: float) -> None:
        """A read of ``item`` took effect (immediately or at lock grant)."""
        ops = self._reads.get(txn_id)
        if ops is not None:
            ops.append((item, time, self.next_seq()))

    def record_write_intent(self, txn_id: int, item: int) -> None:
        """The execution will write ``item`` (effective at its commit)."""
        writes = self._writes.get(txn_id)
        if writes is not None:
            writes.add(item)

    def record_commit(self, txn_id: int, time: float) -> None:
        """The current execution committed: freeze it into the history."""
        reads = self._reads.pop(txn_id, [])
        writes = self._writes.pop(txn_id, set())
        self.committed.append(CommittedExecution(
            txn_id=txn_id,
            reads=tuple(reads),
            writes=tuple(sorted(writes)),
            commit_time=time,
            commit_seq=self.next_seq(),
        ))

    def record_abort(self, txn_id: int) -> None:
        """The current execution aborted: it never happened."""
        self._reads.pop(txn_id, None)
        self._writes.pop(txn_id, None)

    def clear(self) -> None:
        """Forget the whole history (a new repetition starts from nothing)."""
        self.committed.clear()
        self.executions = 0
        self._seq = 0
        self._reads.clear()
        self._writes.clear()


class RecordingConcurrencyControl(ConcurrencyControl):
    """Wrap a scheme and record the history it admits (opt-in, tests only).

    Pure observation through the :class:`~repro.cc.base.ConcurrencyControl`
    surface: every call is delegated unchanged, so the wrapped scheme makes
    exactly the decisions it would make unobserved.  (The grant callbacks
    the wrapper registers run at the same simulated instant as the grant
    and do not reorder any event.)
    """

    def __init__(self, inner: ConcurrencyControl, recorder: HistoryRecorder):
        self.inner = inner
        self.recorder = recorder
        self.name = f"recorded({inner.name})"

    # ------------------------------------------------------------------
    def begin(self, txn) -> None:
        self.recorder.start_execution(txn.txn_id)
        self.inner.begin(txn)

    def access(self, txn, item: int, is_write: bool) -> Optional[Event]:
        # delegate first: blocking schemes may raise TransactionAborted
        # (wait-die / a delivered wound), in which case nothing happened
        grant = self.inner.access(txn, item, is_write)
        recorder = self.recorder
        txn_id = txn.txn_id
        if is_write:
            recorder.record_write_intent(txn_id, item)
        if grant is None:
            recorder.record_read(txn_id, item, self.inner.sim.now)
            return None

        def on_grant(event: Event) -> None:
            if event.ok:  # a failed grant is an abort, not a read
                recorder.record_read(txn_id, item, event.sim.now)

        grant.add_callback(on_grant)
        return grant

    def try_commit(self, txn) -> bool:
        return self.inner.try_commit(txn)

    def finish(self, txn) -> None:
        self.inner.finish(txn)
        self.recorder.record_commit(txn.txn_id, self.inner.sim.now)

    def abort(self, txn, reason: AbortReason) -> None:
        self.inner.abort(txn, reason)
        self.recorder.record_abort(txn.txn_id)

    def active_count(self) -> int:
        return self.inner.active_count()

    def reset(self) -> None:
        """Reset scheme AND recorder: repetitions must not share a history.

        Run 1's operation times would otherwise interleave with run 2's
        (the clock restarts) and fabricate cross-run conflict edges —
        harvest ``recorder.committed`` *before* resetting.
        """
        self.inner.reset()
        self.recorder.clear()


@dataclass(frozen=True)
class SerializabilityVerdict:
    """Outcome of a conflict-graph check over a committed history."""

    serializable: bool
    #: a witness cycle of txn_ids (first repeated at the end) if not
    cycle: Tuple[int, ...] = ()
    transactions: int = 0
    edges: int = 0

    def __bool__(self) -> bool:
        return self.serializable


def conflict_graph(history: Sequence[CommittedExecution]) -> Dict[int, Set[int]]:
    """The conflict graph of a committed history (adjacency sets).

    Nodes are txn_ids; an edge ``a -> b`` means an operation of ``a`` took
    effect before a conflicting operation of ``b`` on the same granule,
    so ``a`` must precede ``b`` in any equivalent serial order.
    """
    #: granule -> [(time, seq, txn_id, is_write)]
    ops_by_item: Dict[int, List[Tuple[float, int, int, bool]]] = {}
    for execution in history:
        write_effect = (execution.commit_time, execution.commit_seq)
        for item, time, seq in execution.reads:
            ops_by_item.setdefault(item, []).append(
                (time, seq, execution.txn_id, False))
        for item in execution.writes:
            ops_by_item.setdefault(item, []).append(
                (*write_effect, execution.txn_id, True))

    graph: Dict[int, Set[int]] = {execution.txn_id: set() for execution in history}
    for ops in ops_by_item.values():
        ops.sort()  # by (time, seq): the order the operations took effect
        for index, (_t, _s, earlier_txn, earlier_write) in enumerate(ops):
            for _t2, _s2, later_txn, later_write in ops[index + 1:]:
                if later_txn != earlier_txn and (earlier_write or later_write):
                    graph[earlier_txn].add(later_txn)
    return graph


def check_serializability(
        history: Sequence[CommittedExecution]) -> SerializabilityVerdict:
    """Decide conflict-serializability of a committed history.

    Returns a :class:`SerializabilityVerdict`; when the conflict graph has
    a cycle the verdict carries one witness cycle (txn_ids, the first node
    repeated at the end) so a failing scheme can be debugged from the
    test output.
    """
    graph = conflict_graph(history)
    edge_count = sum(len(successors) for successors in graph.values())

    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    parent: Dict[int, Optional[int]] = {}

    def cycle_from(start: int, end: int) -> Tuple[int, ...]:
        path = [end]
        node = end
        while node != start:
            node = parent[node]
            path.append(node)
        path.reverse()
        return tuple(path) + (path[0],)

    for root in graph:
        if colour[root] != WHITE:
            continue
        parent[root] = None
        stack: List[Tuple[int, List[int]]] = [(root, sorted(graph[root]))]
        colour[root] = GREY
        while stack:
            node, successors = stack[-1]
            if not successors:
                colour[node] = BLACK
                stack.pop()
                continue
            successor = successors.pop(0)
            if colour[successor] == GREY:
                return SerializabilityVerdict(
                    serializable=False,
                    cycle=cycle_from(successor, node),
                    transactions=len(graph),
                    edges=edge_count,
                )
            if colour[successor] == WHITE:
                parent[successor] = node
                colour[successor] = GREY
                stack.append((successor, sorted(graph[successor])))
    return SerializabilityVerdict(
        serializable=True, transactions=len(graph), edges=edge_count)
