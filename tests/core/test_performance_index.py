"""Tests for alternative performance indices (Section 6) and the PA collapse guard."""

import pytest

from repro.analytic.synthetic import DynamicOptimumScenario, SyntheticSystem
from repro.core.controller import (
    effective_utilisation_index,
    inverse_response_time_index,
    throughput_index,
)
from repro.core.incremental_steps import IncrementalStepsController
from repro.core.parabola import ParabolaController
from repro.core.types import IntervalMeasurement
from repro.tp.workload import ConstantSchedule, JumpSchedule


def measurement(throughput=50.0, concurrency=20.0, limit=25.0, commits=100,
                aborts=0, response_time=0.5):
    return IntervalMeasurement(
        time=1.0,
        interval_length=1.0,
        throughput=throughput,
        mean_concurrency=concurrency,
        concurrency_at_sample=concurrency,
        current_limit=limit,
        commits=commits,
        aborts=aborts,
        mean_response_time=response_time,
    )


class TestIndexFunctions:
    def test_throughput_index(self):
        assert throughput_index(measurement(throughput=42.0)) == 42.0

    def test_effective_utilisation_index_penalises_restarts(self):
        clean = effective_utilisation_index(measurement(throughput=50.0, commits=100, aborts=0))
        wasteful = effective_utilisation_index(measurement(throughput=50.0, commits=100, aborts=100))
        assert clean == pytest.approx(50.0)
        assert wasteful == pytest.approx(25.0)

    def test_inverse_response_time_index(self):
        assert inverse_response_time_index(measurement(response_time=0.25)) == pytest.approx(4.0)

    def test_inverse_response_time_falls_back_to_throughput(self):
        empty = measurement(throughput=10.0, response_time=0.0, commits=0)
        assert inverse_response_time_index(empty) == 10.0


class TestControllersWithCustomIndex:
    def test_default_index_is_throughput(self):
        controller = IncrementalStepsController(initial_limit=10)
        assert controller.performance_of(measurement(throughput=33.0)) == 33.0

    def test_is_controller_accepts_custom_index(self):
        controller = IncrementalStepsController(
            initial_limit=10, performance_index=effective_utilisation_index)
        value = controller.performance_of(measurement(throughput=50.0, commits=50, aborts=50))
        assert value == pytest.approx(25.0)

    def test_pa_controller_accepts_custom_index(self):
        controller = ParabolaController(
            initial_limit=10, upper_bound=100,
            performance_index=lambda m: m.throughput * 2.0)
        assert controller.performance_of(measurement(throughput=10.0)) == 20.0

    def test_pa_with_custom_index_still_finds_optimum(self):
        """The index is a monotone transform, so the optimum stays put."""
        scenario = DynamicOptimumScenario.constant(position=60.0, height=100.0)
        controller = ParabolaController(
            initial_limit=10, lower_bound=2, upper_bound=200,
            probe_amplitude=3.0, forgetting=0.9, max_move=30.0,
            performance_index=lambda m: 0.5 * m.throughput)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=0.5, seed=9)
        plant.run(250)
        settled = plant.trace.limits[-50:]
        assert sum(settled) / len(settled) == pytest.approx(60.0, abs=12.0)


class TestCollapseGuard:
    def test_collapse_triggers_strong_backoff(self):
        controller = ParabolaController(initial_limit=100, lower_bound=2, upper_bound=400,
                                        probe_amplitude=0.0, max_move=30.0, forgetting=0.9)
        # healthy samples establish a recent-best throughput
        for index in range(5):
            controller.update(measurement(throughput=100.0, concurrency=100.0,
                                          limit=controller.current_limit))
        limit_before = controller.current_limit
        # throughput collapses while the load is still at the threshold
        controller.update(measurement(throughput=1.0, concurrency=controller.current_limit,
                                      limit=controller.current_limit))
        assert controller.collapse_events == 1
        assert controller.current_limit <= limit_before - 29.0

    def test_no_collapse_when_load_not_realized(self):
        controller = ParabolaController(initial_limit=100, lower_bound=2, upper_bound=400,
                                        probe_amplitude=0.0, max_move=30.0)
        for index in range(5):
            controller.update(measurement(throughput=100.0, concurrency=100.0,
                                          limit=controller.current_limit))
        # the offered load went away: low throughput but low concurrency too
        controller.update(measurement(throughput=1.0, concurrency=2.0,
                                      limit=controller.current_limit))
        assert controller.collapse_events == 0

    def test_collapse_guard_can_be_disabled(self):
        controller = ParabolaController(initial_limit=100, lower_bound=2, upper_bound=400,
                                        probe_amplitude=0.0, collapse_fraction=0.0)
        for index in range(5):
            controller.update(measurement(throughput=100.0, concurrency=100.0,
                                          limit=controller.current_limit))
        controller.update(measurement(throughput=0.0, concurrency=controller.current_limit,
                                      limit=controller.current_limit))
        assert controller.collapse_events == 0

    def test_collapse_parameters_validated(self):
        with pytest.raises(ValueError):
            ParabolaController(collapse_fraction=1.5)
        with pytest.raises(ValueError):
            ParabolaController(best_decay=0.0)

    def test_recovery_from_deep_overload_on_synthetic_plant(self):
        """Figure 8: the optimum drops far below the current threshold."""
        scenario = DynamicOptimumScenario(
            position=JumpSchedule(200.0, 50.0, jump_time=100.0),
            height=ConstantSchedule(100.0),
            overload_decay=2.5)
        controller = ParabolaController(initial_limit=60, lower_bound=2, upper_bound=500,
                                        probe_amplitude=4.0, max_move=40.0, forgetting=0.85)
        plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=2.0, seed=10)
        plant.run(300)
        settled = plant.trace.limits[-50:]
        # the controller walked back out of the dead zone and sits near 50
        assert sum(settled) / len(settled) == pytest.approx(50.0, abs=20.0)
        throughput_tail = plant.trace.throughput[-50:]
        assert sum(throughput_tail) / len(throughput_tail) > 60.0
