"""The measurement process: closing the feedback loop (Section 5, Figure 5).

Every measurement interval ``Δt`` the process:

1. collects the interval counters from the run metrics (commits, aborts,
   conflicts, response times) and the time-averaged load from the admission
   gate;
2. builds an :class:`~repro.core.types.IntervalMeasurement`;
3. hands it to the configured :class:`~repro.core.controller.LoadController`
   and receives the new threshold ``n*``;
4. installs the threshold at the admission gate and, if a displacement
   policy is configured, asks the transaction system to abort enough victims
   to honour the lowered threshold immediately;
5. appends the step to a :class:`~repro.core.types.ControlTrace` (this is
   what the trajectory figures 13/14 are generated from);
6. optionally lets an outer-loop tuner adjust the next interval length.

Choosing ``Δt`` is the stability/responsiveness trade-off discussed in
Section 5: the interval must contain enough departures to filter stochastic
noise ("rather hundreds of departures than some tens") but be short enough
to react to genuine workload changes.  The
:class:`~repro.core.outer_loop.MeasurementIntervalTuner` automates the
choice.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.admission import AdmissionGate
from repro.core.controller import LoadController
from repro.core.types import ControlTrace, IntervalMeasurement
from repro.sim.engine import Simulator
from repro.tp.metrics import RunMetrics


class MeasurementProcess:
    """Periodic sampling and control-loop execution."""

    def __init__(self,
                 sim: Simulator,
                 gate: AdmissionGate,
                 metrics: RunMetrics,
                 controller: LoadController,
                 interval: float,
                 displace: Optional[Callable[[float], int]] = None,
                 interval_tuner: Optional["MeasurementIntervalTunerProtocol"] = None,
                 mean_accesses_provider: Optional[Callable[[float], float]] = None,
                 warmup: float = 0.0):
        """Wire the loop together.

        ``displace`` is an optional callable provided by the transaction
        system; it receives the new limit and returns the number of
        transactions it displaced.  ``mean_accesses_provider`` maps the
        current time to the mean transaction size ``k`` (used by the Tay
        rule controller).  ``warmup`` delays the first sample so the
        controller never reacts to the initial transient.
        """
        if interval <= 0:
            raise ValueError(f"measurement interval must be positive, got {interval}")
        if warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {warmup}")
        self.sim = sim
        self.gate = gate
        self.metrics = metrics
        self.controller = controller
        self.interval = float(interval)
        self.displace = displace
        self.interval_tuner = interval_tuner
        self.mean_accesses_provider = mean_accesses_provider
        self.warmup = float(warmup)
        self.trace = ControlTrace()
        self.samples_taken = 0
        self.total_displaced = 0
        self._process = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install the initial threshold and start the periodic sampling."""
        self.gate.set_limit(self.controller.current_limit)
        self._process = self.sim.process(self._run(), name="measurement-process")

    def _run(self):
        if self.warmup > 0:
            yield self.sim.timeout(self.warmup)
            # throw away whatever accumulated during warm-up
            self.metrics.snapshot_interval()
            self.gate.load_stats.reset(self.sim.now)
        while True:
            interval_start = self.sim.now
            yield self.sim.timeout(self.interval)
            self.sample(interval_start)

    # ------------------------------------------------------------------
    def sample(self, interval_start: Optional[float] = None) -> IntervalMeasurement:
        """Take one sample now, run the controller, enforce the new limit."""
        now = self.sim.now
        if interval_start is None:
            interval_start = self.metrics.interval_start
        length = max(now - interval_start, 1e-12)
        counters = self.metrics.snapshot_interval()
        mean_load = self.gate.load_stats.mean(now)
        self.gate.load_stats.reset(now)
        mean_accesses = None
        if self.mean_accesses_provider is not None:
            mean_accesses = self.mean_accesses_provider(now)

        measurement = IntervalMeasurement(
            time=now,
            interval_length=length,
            throughput=counters.commits / length,
            mean_concurrency=mean_load,
            concurrency_at_sample=self.gate.current_load,
            current_limit=self.gate.limit,
            commits=counters.commits,
            aborts=counters.aborts,
            conflicts=counters.conflicts,
            mean_response_time=counters.mean_response_time(),
            admission_queue_length=self.gate.queue_length,
            mean_accesses_per_txn=mean_accesses,
        )

        new_limit = self.controller.update(measurement)
        self.gate.set_limit(new_limit)
        if self.displace is not None and new_limit < self.gate.current_load:
            self.total_displaced += self.displace(new_limit)
        self.trace.append(measurement, new_limit)
        self.samples_taken += 1

        if self.interval_tuner is not None:
            self.interval = self.interval_tuner.next_interval(self.interval, measurement)
        return measurement


class MeasurementIntervalTunerProtocol:
    """Protocol expected from outer-loop interval tuners (duck-typed)."""

    def next_interval(self, current_interval: float,
                      measurement: IntervalMeasurement) -> float:  # pragma: no cover
        raise NotImplementedError
