"""End-to-end distributed execution tests over real localhost sockets.

The acceptance contract of the ``repro.dist`` subsystem: for any worker
count, join order, or mid-sweep worker crash, a sweep executed through the
:class:`~repro.dist.coordinator.DistributedExecutor` produces results
bit-identical to :class:`~repro.runner.executor.SerialExecutor` — checked
here against both a fresh serial run and the checked-in golden trajectory
fixtures.
"""

import importlib.util
import json
import socket
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dist import protocol
from repro.dist.cluster import launch_local_cluster
from repro.dist.coordinator import DistributedExecutor
from repro.dist.worker import Worker
from repro.experiments.config import ExperimentScale
from repro.runner.api import run_sweep
from repro.runner.cells import execute_run_spec
from repro.runner.errors import CellExecutionError
from repro.runner.executor import SerialExecutor, make_executor
from repro.runner.registry import build_sweep

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

# single source of truth for the canonical golden serialisation: the regen
# tool, loaded by path exactly as tests/golden/test_golden_trajectories.py does
_TOOL_PATH = GOLDEN_DIR.parent.parent / "tools" / "regen_goldens.py"
if "regen_goldens" in sys.modules:
    regen_goldens = sys.modules["regen_goldens"]
else:
    _spec = importlib.util.spec_from_file_location("regen_goldens", _TOOL_PATH)
    regen_goldens = importlib.util.module_from_spec(_spec)
    sys.modules["regen_goldens"] = regen_goldens
    _spec.loader.exec_module(regen_goldens)

_canonical = regen_goldens.canonical_json


@pytest.fixture(scope="module")
def thrashing_spec():
    return build_sweep("thrashing", scale=ExperimentScale.smoke())


@pytest.fixture(scope="module")
def thrashing_serial(thrashing_spec):
    return SerialExecutor().execute(execute_run_spec, thrashing_spec.cells)


def _assert_identical(distributed, serial):
    assert [r.cell_id for r in distributed] == [r.cell_id for r in serial]
    for left, right in zip(serial, distributed):
        # exact equality: the distributed run must be bitwise identical
        assert left.metrics == right.metrics, left.cell_id


class TestLocalClusterEndToEnd:
    def test_two_workers_bitwise_identical_to_serial_and_golden(
            self, thrashing_spec, thrashing_serial):
        with launch_local_cluster(workers=2) as cluster:
            distributed = cluster.execute(execute_run_spec, thrashing_spec.cells)
        _assert_identical(distributed, thrashing_serial)

        # and identical to the checked-in golden trajectory fixture
        golden = json.loads((GOLDEN_DIR / "thrashing.json").read_text())
        assert len(distributed) == len(golden["cells"])
        for result, golden_cell in zip(distributed, golden["cells"]):
            assert result.cell_id == golden_cell["cell_id"]
            assert _canonical(dict(result.metrics)) == \
                _canonical(golden_cell["metrics"])

    @pytest.mark.parametrize("cells_before_crash", [0, 1])
    def test_worker_killed_mid_sweep_completes_identically(self, cells_before_crash):
        spec = build_sweep("fig12_stationary", scale=ExperimentScale.smoke())
        serial = SerialExecutor().execute(execute_run_spec, spec.cells)
        # worker 0 dies abruptly (os._exit) when accepting the cell after
        # its first `cells_before_crash` — a crashed host with work in flight
        with launch_local_cluster(
                workers=2, heartbeat_timeout=5.0,
                fail_after_cells={0: cells_before_crash}) as cluster:
            distributed = cluster.execute(execute_run_spec, spec.cells)
            assert cluster.processes[0].wait(timeout=30) == 17
        _assert_identical(distributed, serial)

    def test_repeated_sweeps_on_one_cluster(self, thrashing_spec, thrashing_serial):
        with launch_local_cluster(workers=2) as cluster:
            first = cluster.execute(execute_run_spec, thrashing_spec.cells)
            second = cluster.execute(execute_run_spec, thrashing_spec.cells)
        _assert_identical(first, thrashing_serial)
        _assert_identical(second, thrashing_serial)

    def test_run_sweep_accepts_a_cluster_as_executor(self, thrashing_spec,
                                                     thrashing_serial):
        with launch_local_cluster(workers=2) as cluster:
            result = run_sweep(thrashing_spec, executor=cluster)
        _assert_identical(result.results, thrashing_serial)
        assert [a.cell_id for a in result.aggregates] == \
            [r.cell_id for r in thrashing_serial]


# ----------------------------------------------------------------------
# in-process workers: exercise the worker loop under coverage and drive
# targeted failure modes deterministically
# ----------------------------------------------------------------------
def _start_thread_worker(address, **options) -> threading.Thread:
    worker = Worker(address, connect_retry=30.0, **options)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return thread


def _explode(item):
    raise ValueError("injected cell failure")


def _slow_identity(value):
    time.sleep(value)
    return value


class TestDistributedExecutorBehaviour:
    def test_empty_items(self):
        with DistributedExecutor("127.0.0.1:0") as executor:
            assert executor.execute(_slow_identity, []) == []

    def test_wait_for_workers_times_out(self):
        with DistributedExecutor("127.0.0.1:0") as executor:
            with pytest.raises(TimeoutError, match="0 of 1 workers"):
                executor.wait_for_workers(1, timeout=0.2)

    def test_cell_error_propagates_with_cell_identity(self, thrashing_spec):
        with DistributedExecutor("127.0.0.1:0") as executor:
            _start_thread_worker(executor.bound_address)
            executor.wait_for_workers(1)
            with pytest.raises(CellExecutionError) as caught:
                executor.execute(_explode, thrashing_spec.cells)
            first_cell = thrashing_spec.cells[0].cell_id
            assert caught.value.cell_id == first_cell
            assert first_cell in str(caught.value)
            assert "injected cell failure" in str(caught.value)
            # the worker survives its cell's error; the executor stays usable
            assert executor.execute(_slow_identity, [0.0, 0.0]) == [0.0, 0.0]

    def test_heartbeats_keep_slow_cells_alive(self):
        # the cell takes 3x the heartbeat timeout; without heartbeats the
        # coordinator would declare the worker dead and requeue forever
        with DistributedExecutor("127.0.0.1:0",
                                 heartbeat_timeout=1.0) as executor:
            _start_thread_worker(executor.bound_address,
                                 heartbeat_interval=0.25)
            executor.wait_for_workers(1)
            assert executor.execute(_slow_identity, [3.0]) == [3.0]

    def test_silent_worker_is_declared_dead_and_cell_reassigned(self):
        # a worker that accepts a cell and then goes silent (no heartbeat,
        # connection still open) must lose the cell to a live worker
        with DistributedExecutor("127.0.0.1:0",
                                 heartbeat_timeout=1.0) as executor:
            host, port = protocol.parse_address(executor.bound_address)
            silent = socket.create_connection((host, port))
            try:
                protocol.send_message(silent, (protocol.MSG_HELLO, "silent"))
                protocol.send_message(silent, (protocol.MSG_READY,))
                executor.wait_for_workers(1)

                collected = {}

                def consume():
                    collected["results"] = executor.execute(
                        _slow_identity, [0.0, 0.0])

                consumer = threading.Thread(target=consume, daemon=True)
                consumer.start()
                # the silent worker receives the first cell... and stalls
                task = protocol.recv_message(silent)
                assert task[0] == protocol.MSG_TASK
                # a live worker joins; after the heartbeat timeout it must
                # inherit the orphaned cell and finish the sweep
                _start_thread_worker(executor.bound_address,
                                     heartbeat_interval=0.25)
                consumer.join(timeout=30)
                assert not consumer.is_alive(), "sweep never completed"
                assert collected["results"] == [0.0, 0.0]
            finally:
                silent.close()

    def test_sweep_with_no_workers_stalls_out(self):
        with DistributedExecutor("127.0.0.1:0",
                                 worker_timeout=0.5) as executor:
            with pytest.raises(RuntimeError, match="no workers connected"):
                executor.execute(_slow_identity, [0.0])

    def test_requeue_refreshes_the_stall_timer(self):
        # regression: _requeue_in_flight used to leave last_progress at the
        # time of the last *result*, so losing the only worker deep into a
        # long cell made the zero-worker stall timer fire before a
        # replacement worker had its full grace period
        from repro.dist.coordinator import _SweepState, _WorkerState

        with DistributedExecutor("127.0.0.1:0", worker_timeout=5.0) as executor:
            sweep = _SweepState(generation=1, function=_slow_identity,
                                items=[0.0])
            sweep.pending.clear()  # the one cell is out with the worker
            worker = _WorkerState(name="doomed", sock=None)
            worker.in_flight = (1, 0)
            stale = time.monotonic() - 100.0
            with executor._state:
                executor._sweep = sweep
                sweep.last_progress = stale
                executor._requeue_in_flight(worker)
                assert list(sweep.pending) == [0]
                # the hand-back counts as progress: the timer restarts now
                assert sweep.last_progress > stale + 50.0
                executor._check_stalled(sweep)  # must not raise
                executor._sweep = None

    def test_replacement_worker_gets_a_full_grace_period_after_a_crash(self):
        # behavioural version: the only worker holds the single cell for
        # longer than worker_timeout and then dies; the requeue must restart
        # the stall clock so a promptly joining replacement finishes the sweep
        with DistributedExecutor("127.0.0.1:0", worker_timeout=1.5,
                                 heartbeat_timeout=30.0) as executor:
            host, port = protocol.parse_address(executor.bound_address)
            doomed = socket.create_connection((host, port))
            try:
                protocol.send_message(doomed, (protocol.MSG_HELLO, "doomed"))
                protocol.send_message(doomed, (protocol.MSG_READY,))
                executor.wait_for_workers(1)

                collected = {}

                def consume():
                    collected["results"] = executor.execute(
                        _slow_identity, [0.0])

                consumer = threading.Thread(target=consume, daemon=True)
                consumer.start()
                task = protocol.recv_message(doomed)
                assert task[0] == protocol.MSG_TASK
                # hold the cell past worker_timeout, then crash: without the
                # fix the stall timer (measuring from sweep start) expires
                # the moment the requeue leaves zero workers connected
                time.sleep(2.0)
            finally:
                doomed.close()
            _start_thread_worker(executor.bound_address)
            consumer.join(timeout=30)
            assert not consumer.is_alive(), "sweep never completed"
            assert collected["results"] == [0.0]

    def test_close_mid_sweep_fails_the_consumer_promptly(self):
        # closing must not leave a blocked consumer waiting out the full
        # worker_timeout; it fails fast with the outstanding cell count
        executor = DistributedExecutor("127.0.0.1:0", worker_timeout=600.0)
        outcome = {}

        def consume():
            try:
                executor.execute(_slow_identity, [0.0])
            except RuntimeError as exc:
                outcome["error"] = str(exc)

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        time.sleep(0.3)
        executor.close()
        consumer.join(timeout=10)
        assert not consumer.is_alive(), "consumer survived close()"
        assert "closed with 1 cells outstanding" in outcome["error"]

    def test_closed_executor_rejects_new_sweeps(self):
        executor = DistributedExecutor("127.0.0.1:0")
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.execute(_slow_identity, [0.0])


class TestConsoleEntryPoints:
    def test_coordinator_main_with_local_workers_and_archive(self, tmp_path, capsys):
        from repro.dist import coordinator

        exit_code = coordinator.main([
            "thrashing", "--scale", "smoke", "--local-workers", "2",
            "--min-workers", "2", "--worker-wait", "60",
            "--archive", str(tmp_path),
        ])
        assert exit_code == 0
        captured = capsys.readouterr()
        # diagnostics are logged to stderr; the result table stays on stdout
        assert "T [txn/s]" in captured.out
        output = captured.out + captured.err
        assert "coordinator listening on" in output
        assert "2 worker(s) connected" in output
        assert "cells/s" in output
        assert "archive written to" in output
        from repro.dist.archive import load_archive

        [artifact] = tmp_path.glob("*.json")
        assert load_archive(artifact)["scenario"] == "thrashing"

    def test_worker_main_serves_until_shutdown(self, capsys):
        from repro.dist import worker

        with DistributedExecutor("127.0.0.1:0") as executor:
            outcome = {}

            def run_main():
                outcome["exit"] = worker.main(
                    ["--connect", executor.bound_address, "--name", "cli-worker"])

            thread = threading.Thread(target=run_main, daemon=True)
            thread.start()
            executor.wait_for_workers(1)
            assert executor.execute(_slow_identity, [0.0, 0.0]) == [0.0, 0.0]
            executor.close()
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert outcome["exit"] == 0
        captured = capsys.readouterr()
        assert "executed 2 cell(s)" in captured.out + captured.err


class TestMakeExecutorSeam:
    def test_address_selects_distributed(self):
        executor = make_executor(address="127.0.0.1:0", heartbeat_timeout=5.0)
        try:
            assert isinstance(executor, DistributedExecutor)
            assert executor.bound_address.startswith("127.0.0.1:")
        finally:
            executor.close()

    def test_distributed_options_require_address(self):
        with pytest.raises(TypeError, match="address"):
            make_executor(workers=2, heartbeat_timeout=5.0)

    def test_run_sweep_address_plumbing(self, thrashing_spec, thrashing_serial):
        # reserve an ephemeral port, point run_sweep at it, and let a
        # retrying worker join once run_sweep's own executor has bound it
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        address = f"127.0.0.1:{port}"
        _start_thread_worker(address)
        result = run_sweep(thrashing_spec, address=address)
        _assert_identical(result.results, thrashing_serial)

    def test_run_sweep_rejects_executor_and_address(self, thrashing_spec):
        with pytest.raises(TypeError, match="not both"):
            run_sweep(thrashing_spec, executor=SerialExecutor(),
                      address="127.0.0.1:0")
