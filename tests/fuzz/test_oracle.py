"""Tests for the failure predicates (the fuzzer's oracle)."""

import pytest

from repro.analytic.references import reference_optimum
from repro.experiments.config import ExperimentScale
from repro.fuzz.adversaries import (
    ClassMixFlipAdversary,
    HotKeyAdversary,
    SizeSpikeAdversary,
)
from repro.fuzz.oracle import FailureThresholds, Verdict, rescue_score, score_run
from repro.tp.workload import mixed_class_params

SCALE = ExperimentScale.smoke()


def hot_key_cell():
    return HotKeyAdversary().lower(SCALE)


class TestThresholds:
    def test_defaults_validate(self):
        thresholds = FailureThresholds()
        assert 0.0 < thresholds.rescue_fraction < 1.0

    @pytest.mark.parametrize("kwargs", [
        {"rescue_fraction": 0.0},
        {"rescue_fraction": 1.0},
        {"livelock_ratio": 0.0},
        {"min_commit_rate": -1.0},
    ])
    def test_out_of_range_values_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FailureThresholds(**kwargs)


class TestRescueScore:
    def test_stationary_cells_score_against_the_analytic_peak(self):
        cell = hot_key_cell()
        name, _optimal, peak = reference_optimum(cell.params, cell.cc)
        fraction, reference = rescue_score(cell, {"throughput": peak / 2.0})
        assert fraction == pytest.approx(0.5)
        assert reference == name

    def test_tracking_cells_reuse_the_throughput_ratio_metric(self):
        cell = SizeSpikeAdversary().lower(SCALE)
        fraction, _ = rescue_score(cell, {"throughput_ratio": 0.42})
        assert fraction == pytest.approx(0.42)

    def test_tracking_cells_without_the_metric_score_zero(self):
        cell = SizeSpikeAdversary().lower(SCALE)
        fraction, _ = rescue_score(cell, {})
        assert fraction == 0.0

    def test_mixed_class_cells_score_against_the_mix_expectation(self):
        cell = ClassMixFlipAdversary().lower(SCALE)
        expected_workload = mixed_class_params(cell.params.workload,
                                               cell.workload_classes)
        _, _, peak = reference_optimum(cell.params, cell.cc,
                                       workload=expected_workload)
        fraction, _ = rescue_score(cell, {"throughput": peak})
        assert fraction == pytest.approx(1.0)


class TestScoreRun:
    def test_healthy_run_passes(self):
        cell = hot_key_cell()
        _, _, peak = reference_optimum(cell.params, cell.cc)
        verdict = score_run(cell, {"throughput": peak * 0.8, "commits": 100.0})
        assert not verdict.failed
        assert verdict.reasons == ()

    def test_rescue_failure_triggers_below_the_fraction(self):
        cell = hot_key_cell()
        _, _, peak = reference_optimum(cell.params, cell.cc)
        verdict = score_run(cell, {"throughput": peak * 0.1, "commits": 10.0})
        assert verdict.failed
        assert "rescue" in verdict.reasons

    def test_livelock_triggers_when_displacement_dwarfs_commits(self):
        cell = hot_key_cell()
        _, _, peak = reference_optimum(cell.params, cell.cc)
        metrics = {"throughput": peak * 0.8, "commits": 10.0, "displaced": 100.0}
        verdict = score_run(cell, metrics)
        assert verdict.reasons == ("livelock",)

    def test_no_displacement_counter_means_no_livelock_verdict(self):
        cell = hot_key_cell()
        _, _, peak = reference_optimum(cell.params, cell.cc)
        verdict = score_run(cell, {"throughput": peak * 0.8, "commits": 10.0})
        assert "livelock" not in verdict.reasons

    def test_collapse_triggers_below_the_minimum_commit_rate(self):
        cell = hot_key_cell()
        verdict = score_run(cell, {"throughput": 0.1, "commits": 1.0})
        assert "collapse" in verdict.reasons

    def test_thresholds_are_honoured(self):
        cell = hot_key_cell()
        _, _, peak = reference_optimum(cell.params, cell.cc)
        strict = FailureThresholds(rescue_fraction=0.9)
        verdict = score_run(cell, {"throughput": peak * 0.8, "commits": 100.0},
                            strict)
        assert verdict.reasons == ("rescue",)

    def test_verdict_round_trips_through_jsonable(self):
        verdict = Verdict(cell_id="fuzz/hot_key/abc", failed=True,
                          reasons=("rescue", "collapse"), throughput=0.1,
                          throughput_fraction=0.05, reference="TayModel")
        data = verdict.to_jsonable()
        assert data["reasons"] == ["rescue", "collapse"]
        assert data["failed"] is True
        assert data["cell_id"] == "fuzz/hot_key/abc"
