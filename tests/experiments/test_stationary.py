"""Tests for the stationary experiment harness (Figures 1 and 12)."""

import pytest

from repro.core.parabola import ParabolaController
from repro.core.static import FixedLimit
from repro.experiments.config import ExperimentScale, default_system_params
from repro.experiments.stationary import (
    StationarySweep,
    run_stationary_point,
    sweep_offered_load,
)
from repro.tp.params import WorkloadParams


def tiny_params(n_terminals=40):
    base = default_system_params(seed=3)
    return base.with_changes(
        n_terminals=n_terminals,
        n_cpus=2,
        workload=WorkloadParams(db_size=400, accesses_per_txn=4,
                                query_fraction=0.25, write_fraction=0.5),
    )


def tiny_scale():
    return ExperimentScale(
        stationary_horizon=4.0,
        warmup=1.0,
        offered_loads=(10, 40, 120),
        tracking_horizon=20.0,
        measurement_interval=1.0,
        synthetic_steps=50,
    )


class TestRunStationaryPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            run_stationary_point(tiny_params(), horizon=0.0)
        with pytest.raises(ValueError):
            run_stationary_point(tiny_params(), warmup=-1.0)

    def test_uncontrolled_point_has_data(self):
        point = run_stationary_point(tiny_params(), horizon=4.0, warmup=1.0)
        assert point.offered_load == 40
        assert point.throughput > 0
        assert point.commits > 0
        assert point.mean_response_time > 0
        assert point.final_limit == float("inf")

    def test_controlled_point_reports_finite_limit(self):
        point = run_stationary_point(
            tiny_params(), controller_factory=lambda p: FixedLimit(5, upper_bound=50),
            horizon=4.0, warmup=1.0)
        assert point.final_limit == 5
        assert point.mean_concurrency <= 5.5

    def test_as_tuple(self):
        point = run_stationary_point(tiny_params(), horizon=2.0, warmup=0.5)
        load, throughput = point.as_tuple()
        assert load == 40.0
        assert throughput == point.throughput


class TestSweep:
    def test_sweep_covers_all_offered_loads(self):
        sweep = sweep_offered_load(tiny_params(), scale=tiny_scale(),
                                   include_model_reference=True)
        assert [point.offered_load for point in sweep.points] == [10, 40, 120]
        assert set(sweep.model_reference) == {10, 40, 120}

    def test_sweep_labels(self):
        uncontrolled = sweep_offered_load(tiny_params(), scale=tiny_scale(),
                                          include_model_reference=False)
        controlled = sweep_offered_load(
            tiny_params(), scale=tiny_scale(), include_model_reference=False,
            controller_factory=lambda p: ParabolaController(
                initial_limit=5, upper_bound=p.n_terminals))
        assert uncontrolled.label == "without control"
        assert controlled.label == "with control"

    def test_curve_sorted_by_load(self):
        sweep = sweep_offered_load(tiny_params(), scale=tiny_scale(),
                                   include_model_reference=False)
        curve = sweep.curve()
        assert [load for load, _ in curve] == sorted(load for load, _ in curve)

    def test_peak_and_throughput_at(self):
        sweep = sweep_offered_load(tiny_params(), scale=tiny_scale(),
                                   include_model_reference=False)
        peak = sweep.peak()
        assert peak.throughput == max(point.throughput for point in sweep.points)
        assert sweep.throughput_at(40) == next(
            point.throughput for point in sweep.points if point.offered_load == 40)
        with pytest.raises(KeyError):
            sweep.throughput_at(999)

    def test_empty_sweep_peak_raises(self):
        with pytest.raises(ValueError):
            StationarySweep(label="empty").peak()

    def test_uncontrolled_heavy_load_thrashes(self):
        """The core phenomenon: more offered load, less throughput."""
        sweep = sweep_offered_load(tiny_params(), scale=tiny_scale(),
                                   include_model_reference=False)
        moderate = sweep.throughput_at(40)
        heavy = sweep.throughput_at(120)
        assert heavy < moderate
