"""Pinned regression: every archived counterexample replays bit-identically.

``tests/fuzz_corpus/`` holds the counterexamples committed from calibrated
fuzz campaigns (see docs/fuzzing.md for the pinning policy).  Each document
carries the full lowered RunSpec and the metrics the failing run produced;
replaying the cell must reproduce those metrics *exactly* — serially and
under the process-parallel executor — so a found controller failure can
never silently disappear or change shape.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    canonical_json,
    corpus_paths,
    load_counterexample,
    replay_counterexample,
)
from repro.fuzz.oracle import score_run
from repro.runner.cells import execute_run_spec
from repro.runner.executor import make_executor

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz_corpus"

CORPUS = corpus_paths(CORPUS_DIR)


def test_the_committed_corpus_is_not_empty():
    # the fuzzer's whole point: at least one counterexample is pinned
    assert CORPUS, f"no archived counterexamples under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
class TestReplay:
    def test_archived_verdict_is_a_failure(self, path):
        counterexample = load_counterexample(path)
        assert counterexample.verdict.failed
        assert counterexample.verdict.reasons

    def test_file_is_in_canonical_form(self, path):
        import json

        data = json.loads(path.read_text(encoding="utf-8"))
        assert canonical_json(data) + "\n" == path.read_text(encoding="utf-8")
        assert path.name == (f"{data['adversary']['kind']}__"
                             f"{load_counterexample(path).adversary.fingerprint()}.json")

    def test_serial_replay_is_bit_identical(self, path):
        counterexample = load_counterexample(path)
        archived, fresh = replay_counterexample(counterexample)
        assert fresh == archived

    def test_parallel_replay_is_bit_identical(self, path):
        counterexample = load_counterexample(path)
        (result,) = make_executor(2).execute(execute_run_spec,
                                             [counterexample.spec])
        assert dict(result.metrics) == dict(counterexample.metrics)

    def test_rescoring_reproduces_the_archived_verdict(self, path):
        counterexample = load_counterexample(path)
        verdict = score_run(counterexample.spec, counterexample.metrics)
        assert verdict == counterexample.verdict
