"""Tests for replicate aggregation (mean ± confidence interval)."""

import math

import pytest

from repro.runner.cells import CellResult
from repro.runner.replication import (
    aggregate_cells,
    aggregate_values,
    t_critical,
)


class TestTCritical:
    def test_known_values(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(4) == pytest.approx(2.776)
        assert t_critical(30) == pytest.approx(2.042)

    def test_breakpoints_beyond_dense_table(self):
        # the textbook df = 40/60/120 rows are hit exactly
        assert t_critical(40) == pytest.approx(2.021)
        assert t_critical(60) == pytest.approx(2.000)
        assert t_critical(120) == pytest.approx(1.980)
        assert t_critical(40, confidence=0.90) == pytest.approx(1.684)
        assert t_critical(120, confidence=0.99) == pytest.approx(2.617)

    def test_interpolation_stays_between_neighbouring_knots(self):
        # df 31..39 interpolate between t(30)=2.042 and t(40)=2.021; the true
        # quantiles (e.g. t(35)=2.030) sit in that band, not at z=1.960
        for df in range(31, 40):
            assert 2.021 < t_critical(df) < 2.042
        assert t_critical(35) == pytest.approx(2.030, abs=2e-3)
        # df 61..119 between t(60) and t(120); t(100)=1.984
        assert t_critical(100) == pytest.approx(1.984, abs=2e-3)

    def test_monotone_decrease_toward_normal_quantile(self):
        # the fix for the old behaviour (z for every df > 30, anticonservative
        # by up to ~4%): the value now decreases monotonically toward z and
        # never dips below it
        for confidence, z_value in ((0.90, 1.645), (0.95, 1.960), (0.99, 2.576)):
            values = [t_critical(df, confidence=confidence)
                      for df in (30, 31, 35, 40, 50, 60, 90, 120, 240, 1000, 10**6)]
            assert values == sorted(values, reverse=True)
            assert all(value > z_value for value in values)
            assert t_critical(10**9, confidence=confidence) == pytest.approx(z_value, abs=1e-6)

    def test_other_confidences(self):
        assert t_critical(4, confidence=0.90) == pytest.approx(2.132)
        assert t_critical(4, confidence=0.99) == pytest.approx(4.604)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="df"):
            t_critical(0)
        with pytest.raises(ValueError, match="confidence"):
            t_critical(5, confidence=0.5)


class TestAggregateValues:
    def test_single_value_has_zero_width(self):
        aggregate = aggregate_values([3.5])
        assert aggregate.mean == 3.5
        assert aggregate.std == 0.0
        assert aggregate.ci_half_width == 0.0
        assert aggregate.count == 1

    def test_known_statistics(self):
        values = [10.0, 12.0, 14.0, 16.0, 18.0]
        aggregate = aggregate_values(values)
        assert aggregate.mean == pytest.approx(14.0)
        # sample std of an arithmetic sequence with step 2: sqrt(10)
        assert aggregate.std == pytest.approx(math.sqrt(10.0))
        expected_half_width = 2.776 * math.sqrt(10.0) / math.sqrt(5)
        assert aggregate.ci_half_width == pytest.approx(expected_half_width)
        assert aggregate.lower == pytest.approx(14.0 - expected_half_width)
        assert aggregate.upper == pytest.approx(14.0 + expected_half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            aggregate_values([])

    def test_format(self):
        assert aggregate_values([2.0]).format() == "2.00"
        formatted = aggregate_values([1.0, 3.0]).format("{:.1f}")
        assert formatted.startswith("2.0 ± ")

    def test_non_finite_observations_do_not_produce_nan(self):
        # uncontrolled cells report final_limit=inf in every replicate
        aggregate = aggregate_values([math.inf, math.inf, math.inf])
        assert aggregate.mean == math.inf
        assert aggregate.std == 0.0
        assert aggregate.ci_half_width == 0.0
        assert "nan" not in aggregate.format()

    def test_identical_observations_render_bare_mean(self):
        assert aggregate_values([5.0, 5.0]).format() == "5.00"


def _result(cell_id, replicate, **metrics):
    return CellResult(cell_id=cell_id, kind="stationary", replicate=replicate,
                      label=cell_id, metrics=metrics)


class TestAggregateCells:
    def test_groups_by_cell_in_first_seen_order(self):
        results = [
            _result("b", 0, throughput=10.0),
            _result("b", 1, throughput=14.0),
            _result("a", 0, throughput=5.0),
        ]
        aggregates = aggregate_cells(results)
        assert [aggregate.cell_id for aggregate in aggregates] == ["b", "a"]
        assert aggregates[0].count == 2
        assert aggregates[0].metric("throughput").mean == pytest.approx(12.0)
        assert aggregates[1].count == 1

    def test_partially_missing_metric_is_kept(self):
        results = [
            _result("a", 0, throughput=10.0, mean_abs_error=2.0),
            _result("a", 1, throughput=12.0),
        ]
        (aggregate,) = aggregate_cells(results)
        assert aggregate.metric("throughput").count == 2
        assert aggregate.metric("mean_abs_error").count == 1
