"""Seeded, deterministic candidate generation.

The generator turns a ``(seed, budget)`` pair into a reproducible stream of
:class:`~repro.fuzz.adversaries.AdversarySpec` candidates: same seed, same
budget → the *identical* candidate list, byte for byte once encoded.  It
rides :class:`~repro.sim.random_streams.RandomStreams`, one named stream
per adversary kind, so the draw sequence of one kind never perturbs the
others (adding a new adversary kind leaves every existing kind's candidate
stream untouched — the same stability argument the simulator's streams
make).

The shape of the search is seeds-then-mutations: candidates round-robin
over the enabled kinds, and each kind draws its parameters from hostile
ranges (small hot sets, large post-jump transaction sizes, near-zero think
times).  Duplicates — by content fingerprint — are skipped, so a campaign
never spends budget running the same cell twice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.fuzz.adversaries import (
    ADAPTIVE_CONTROLLERS,
    AdversarySpec,
    ArrivalBurstAdversary,
    ClassMixFlipAdversary,
    DisplacementSpikeAdversary,
    HotKeyAdversary,
    SizeSpikeAdversary,
    adversary_kinds,
)
from repro.sim.random_streams import RandomStreams

#: victim criteria the displacement adversary draws from
_CRITERIA = ("youngest", "oldest", "least_work", "queries_first")


def _int(rng: np.random.Generator, low: int, high: int) -> int:
    """A python int uniform on the closed range [low, high]."""
    return int(rng.integers(low, high + 1))


def _uniform(rng: np.random.Generator, low: float, high: float) -> float:
    """A python float uniform on [low, high)."""
    return float(rng.uniform(low, high))


def _controller(rng: np.random.Generator) -> str:
    """One of the adaptive controllers, uniformly."""
    return ADAPTIVE_CONTROLLERS[_int(rng, 0, len(ADAPTIVE_CONTROLLERS) - 1)]


def _draw_size_spike(rng: np.random.Generator) -> AdversarySpec:
    return SizeSpikeAdversary(
        controller=_controller(rng),
        seed=_int(rng, 1, 8),
        n_terminals=_int(rng, 200, 400),
        before_k=_int(rng, 4, 8),
        after_k=_int(rng, 24, 64),
        jump_fraction=round(_uniform(rng, 0.2, 0.4), 3),
    )


def _draw_hot_key(rng: np.random.Generator) -> AdversarySpec:
    hot_set = _int(rng, 30, 150)
    return HotKeyAdversary(
        controller=_controller(rng),
        seed=_int(rng, 1, 8),
        n_terminals=_int(rng, 250, 500),
        hot_set_size=hot_set,
        accesses=min(_int(rng, 18, 28), hot_set),
        write_fraction=round(_uniform(rng, 0.8, 1.0), 3),
    )


def _draw_arrival_burst(rng: np.random.Generator) -> AdversarySpec:
    return ArrivalBurstAdversary(
        controller=_controller(rng),
        seed=_int(rng, 1, 8),
        n_terminals=_int(rng, 300, 600),
        think_time=round(_uniform(rng, 0.01, 0.2), 4),
        accesses=_int(rng, 8, 16),
    )


def _draw_class_mix_flip(rng: np.random.Generator) -> AdversarySpec:
    return ClassMixFlipAdversary(
        controller=_controller(rng),
        seed=_int(rng, 1, 8),
        n_terminals=_int(rng, 200, 400),
        query_weight=round(_uniform(rng, 0.1, 0.6), 3),
        query_k=_int(rng, 20, 60),
        oltp_k=_int(rng, 4, 12),
        oltp_write_fraction=round(_uniform(rng, 0.5, 1.0), 3),
    )


def _draw_displacement_spike(rng: np.random.Generator) -> AdversarySpec:
    return DisplacementSpikeAdversary(
        controller=_controller(rng),
        seed=_int(rng, 1, 8),
        n_terminals=_int(rng, 200, 400),
        before_k=_int(rng, 4, 8),
        after_k=_int(rng, 24, 48),
        jump_fraction=round(_uniform(rng, 0.2, 0.4), 3),
        criterion=_CRITERIA[_int(rng, 0, len(_CRITERIA) - 1)],
    )


_DRAWERS: Dict[str, Callable[[np.random.Generator], AdversarySpec]] = {
    "size_spike": _draw_size_spike,
    "hot_key": _draw_hot_key,
    "arrival_burst": _draw_arrival_burst,
    "class_mix_flip": _draw_class_mix_flip,
    "displacement_spike": _draw_displacement_spike,
}


def generate_candidates(seed: int, budget: int,
                        kinds: Optional[Sequence[str]] = None,
                        ) -> List[AdversarySpec]:
    """The deterministic candidate stream of one campaign.

    Returns up to ``budget`` distinct adversary specs (distinct by content
    fingerprint), drawn round-robin over ``kinds`` (default: every
    registered kind, sorted).  The stream is a pure function of ``(seed,
    budget, kinds)``.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if kinds is None:
        kinds = adversary_kinds()
    unknown = sorted(set(kinds) - set(_DRAWERS))
    if unknown:
        raise ValueError(
            f"unknown adversary kinds {unknown}; available: {sorted(_DRAWERS)}"
        )
    if not kinds:
        raise ValueError("at least one adversary kind is required")
    streams = RandomStreams(seed)
    candidates: List[AdversarySpec] = []
    seen = set()
    attempts = 0
    max_attempts = budget * 10
    index = 0
    while len(candidates) < budget and attempts < max_attempts:
        kind = kinds[index % len(kinds)]
        index += 1
        attempts += 1
        candidate = _DRAWERS[kind](streams.stream(f"fuzz-{kind}"))
        fingerprint = candidate.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        candidates.append(candidate)
    return candidates
