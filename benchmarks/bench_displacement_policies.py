"""Displacement policies: enforcing a threshold drop by aborting victims.

Section 4.3 offers two ways to honour a falling threshold ``n*``: admission
control only (wait for departures — the paper's own experiments) or
displacement (abort as many active transactions as necessary, victims
chosen "based on the same criteria as for deadlock breaking").  The
``displacement_policies`` scenario puts the IS controller on a hostile
jump (transaction size 4 -> 16 over a small database, so the tuned load
lands deep in thrashing territory at mid-run) and runs one tracking cell
per victim criterion plus the pure-admission-control baseline.

Checked qualitatively:

* every displacement variant actually displaces (victims > 0) while the
  baseline, by construction, cannot;
* the criteria genuinely differ: they select different victims, so the
  displaced counts are not all identical;
* displacement never collapses useful work: each variant's commit count
  stays within a band of the admission-control baseline.

(Which criterion settles the threshold lowest is noisy at these scales —
the exact trajectories are pinned bitwise by the golden fixture instead.)
"""

from conftest import run_once

from repro.core.displacement import VictimCriterion
from repro.experiments.report import format_aggregate_table
from repro.runner import run_sweep, tracking_results

BASELINE = "no displacement"


def test_displacement_policy_sweep(benchmark, scale, workers, replicates):
    def experiment():
        return run_sweep("displacement_policies", scale=scale, workers=workers,
                         replicates=replicates)

    result = run_once(benchmark, experiment)

    print()
    print("Displacement policies — IS control on a downward jump of the optimum")
    print(format_aggregate_table(result.aggregates, columns=(
        ("commits", "commits"),
        ("displaced", "displaced"),
        ("mean_abs_error", "mean |err|"),
    )))

    labels = [BASELINE] + [criterion.value for criterion in VictimCriterion]
    assert result.labels() == labels

    commits = {}
    displaced_by_label = {}
    for label in labels:
        aggregate = result.aggregate(f"displacement_policies/{label}")
        commits[label] = aggregate.metric("commits").mean
        benchmark.extra_info[f"{label}_commits"] = round(commits[label], 1)
        if label == BASELINE:
            assert "displaced" not in aggregate.metrics
        else:
            displaced = aggregate.metric("displaced").mean
            displaced_by_label[label] = displaced
            benchmark.extra_info[f"{label}_displaced"] = round(displaced, 1)
            assert displaced > 0, f"{label}: the policy never selected a victim"

    # the criteria must actually differ in whom they sacrifice
    assert len(set(displaced_by_label.values())) > 1, (
        f"all criteria displaced identically: {displaced_by_label}")

    # every cell produced a live trajectory through the hostile jump
    for label, trajectory in tracking_results(result).items():
        assert len(trajectory.trace.limits) >= 4, f"{label}: trace too short"
        assert trajectory.total_commits > 0

    # displacement wastes work by design, but must not collapse throughput
    for label in labels[1:]:
        assert commits[label] > 0.7 * commits[BASELINE], (
            f"{label}: displacement destroyed useful work")
