"""The Parabola Approximation (PA) controller — Sections 4.2 and 5.2.

The performance function is approximated as ``P(n) = a0 + a1*n + a2*n^2``.
The coefficients are estimated from recent (n, P) measurement pairs with a
recursive least-squares estimator with exponentially fading memory
(:class:`~repro.core.rls.RecursiveLeastSquares`).  Once a parabola is
available, its maximum is used as the new load threshold:

    n*(t_{i+1}) = -a1 / (2 * a2)          if a2 < 0

If the estimated parabola opens *upward* (``a2 >= 0``) the estimate is
"obviously unreliable and useless" (Section 5.2); the paper mentions that
several recovery options exist.  They are implemented here as the
:class:`RecoveryPolicy` enum:

``HOLD``
    Keep the previous threshold until the estimate becomes usable again.
``STEP``
    Fall back to an IS-like incremental step in the direction of the last
    performance improvement, which also re-excites the estimator.
``RESET``
    Reset the estimator (forget the misleading history) and hold the
    threshold; used when the shape changed abruptly (Figure 8).
``BOUND``
    Clamp to the static lower bound; the safest but least productive option
    when the system might already be deep in the thrashing region.

The paper also notes (Section 9, discussing Figure 14) that the oscillations
of the PA trajectory are *enforced by the algorithm*: a least-squares fit
needs variation in the measurements, so the controller keeps probing around
the estimated optimum.  This is implemented as a deterministic dither that
alternates ``+probe_amplitude`` / ``-probe_amplitude`` around the estimated
optimum; setting the amplitude to zero disables it.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

import numpy as np

from repro.core.controller import LoadController
from repro.core.rls import RecursiveLeastSquares
from repro.core.types import IntervalMeasurement


class RecoveryPolicy(enum.Enum):
    """What to do when the estimated parabola opens upward (Section 5.2)."""

    HOLD = "hold"
    STEP = "step"
    RESET = "reset"
    BOUND = "bound"


class ParabolaController(LoadController):
    """Least-squares parabola fit with maximum-seeking control law."""

    name = "parabola-approximation"

    def __init__(self,
                 initial_limit: float = 10.0,
                 forgetting: float = 0.9,
                 probe_amplitude: float = 2.0,
                 recovery: RecoveryPolicy = RecoveryPolicy.STEP,
                 recovery_step: float = 5.0,
                 lower_bound: float = 1.0,
                 upper_bound: float = 1000.0,
                 min_samples: int = 3,
                 max_move: Optional[float] = None,
                 normalisation: Optional[float] = None,
                 collapse_fraction: float = 0.05,
                 best_decay: float = 0.95,
                 performance_index=None):
        """Create a PA controller.

        ``forgetting`` is the aging coefficient ``a`` of Section 5.2 (choose
        a *small* measurement interval and a *large* ``a`` rather than the
        other way round).  ``min_samples`` is the number of measurements
        required before the fit is trusted at all (a parabola has three free
        coefficients).  ``max_move`` limits how far the threshold may move in
        a single interval (default: a quarter of the admissible range), which
        keeps the loop stable when an early, poorly conditioned fit puts the
        vertex far outside the explored region.  ``normalisation`` scales the
        concurrency level before it enters the regression (default: the
        upper bound), which keeps the three regressor components of
        comparable magnitude and the RLS numerically well conditioned.
        """
        super().__init__(initial_limit=initial_limit, lower_bound=lower_bound,
                         upper_bound=upper_bound, performance_index=performance_index)
        if probe_amplitude < 0:
            raise ValueError(f"probe_amplitude must be non-negative, got {probe_amplitude}")
        if recovery_step < 0:
            raise ValueError(f"recovery_step must be non-negative, got {recovery_step}")
        if min_samples < 3:
            raise ValueError(f"min_samples must be >= 3 for a parabola, got {min_samples}")
        self.estimator = RecursiveLeastSquares(dimension=3, forgetting=forgetting)
        self.probe_amplitude = float(probe_amplitude)
        self.recovery = recovery
        self.recovery_step = float(recovery_step)
        self.min_samples = int(min_samples)
        span = upper_bound - lower_bound if math.isfinite(upper_bound) else 4 * initial_limit
        self.max_move = float(max_move) if max_move is not None else max(1.0, span / 4.0)
        self.normalisation = float(normalisation) if normalisation else max(1.0, float(
            upper_bound if math.isfinite(upper_bound) else 10 * initial_limit))
        if not 0.0 <= collapse_fraction < 1.0:
            raise ValueError(f"collapse_fraction must be in [0, 1), got {collapse_fraction}")
        if not 0.0 < best_decay <= 1.0:
            raise ValueError(f"best_decay must be in (0, 1], got {best_decay}")
        self.collapse_fraction = float(collapse_fraction)
        self.best_decay = float(best_decay)
        self._probe_sign = 1
        self._previous_performance: Optional[float] = None
        self._previous_limit: Optional[float] = None
        self._recent_best = 0.0
        self.upward_parabola_events = 0
        self.collapse_events = 0

    # ------------------------------------------------------------------
    # estimation helpers
    # ------------------------------------------------------------------
    def _regressor(self, concurrency: float) -> np.ndarray:
        scaled = concurrency / self.normalisation
        return np.array([1.0, scaled, scaled * scaled])

    @property
    def coefficients(self) -> np.ndarray:
        """Current (a0, a1, a2) in the *unscaled* concurrency coordinate."""
        a0, a1, a2 = self.estimator.theta
        s = self.normalisation
        return np.array([a0, a1 / s, a2 / (s * s)])

    def estimated_optimum(self) -> Optional[float]:
        """Vertex of the fitted parabola, or None if it opens upward/flat."""
        _a0, a1, a2 = self.coefficients
        if a2 >= 0.0 or not math.isfinite(a2):
            return None
        return -a1 / (2.0 * a2)

    def predicted_performance(self, concurrency: float) -> float:
        """Value of the fitted parabola at ``concurrency``."""
        return self.estimator.predict(self._regressor(concurrency))

    # ------------------------------------------------------------------
    def _propose(self, measurement: IntervalMeasurement) -> float:
        concurrency = measurement.mean_concurrency
        performance = self.performance_of(measurement)
        self.estimator.update(self._regressor(concurrency), performance)
        self._recent_best = max(performance, self._recent_best * self.best_decay)

        limit = self.current_limit
        if self.estimator.samples < self.min_samples:
            proposed = self._bootstrap_step(limit)
        elif self._collapsed(measurement):
            # Figure 8 situation: the threshold is deep in the thrashing
            # region and the measured performance has collapsed.  No fit over
            # such measurements is trustworthy; back off decisively.
            self.collapse_events += 1
            proposed = max(self.lower_bound, limit - max(self.max_move, self.recovery_step))
        else:
            optimum = self.estimated_optimum()
            unreliable = optimum is None
            if not unreliable and self.predicted_performance(optimum) <= 0.0:
                # a downward parabola whose peak is still non-positive can only
                # come from a stretch of (near-)zero measurements: the fit
                # carries no usable information either
                unreliable = True
            if unreliable:
                self.upward_parabola_events += 1
                proposed = self._recover(limit, performance)
            else:
                proposed = self._towards(limit, optimum)
                proposed = self._apply_probe(proposed)

        self._previous_performance = performance
        self._previous_limit = limit
        return proposed

    def _collapsed(self, measurement: IntervalMeasurement) -> bool:
        """True when throughput has collapsed although the load is realized.

        The guard only fires when the system actually runs at (close to) the
        threshold -- a throughput drop caused by the offered load going away
        is not overload and must not trigger a back-off.
        """
        if self._recent_best <= 0.0 or self.collapse_fraction <= 0.0:
            return False
        load_realized = measurement.mean_concurrency >= 0.8 * self.current_limit
        return load_realized and measurement.throughput < self.collapse_fraction * self._recent_best

    def _bootstrap_step(self, limit: float) -> float:
        """Before the fit is trusted, probe upward to generate excitation."""
        step = max(self.recovery_step, self.probe_amplitude, 1.0)
        return limit + step

    def _towards(self, limit: float, optimum: float) -> float:
        """Move towards the estimated optimum, at most ``max_move`` per step."""
        move = optimum - limit
        if abs(move) > self.max_move:
            move = math.copysign(self.max_move, move)
        return limit + move

    def _apply_probe(self, proposed: float) -> float:
        """Alternate around the estimate to keep the regression excited."""
        if self.probe_amplitude == 0.0:
            return proposed
        self._probe_sign = -self._probe_sign
        return proposed + self._probe_sign * self.probe_amplitude

    def _recover(self, limit: float, performance: float) -> float:
        """Section 5.2 countermeasures for an upward-opening parabola."""
        if self.recovery is RecoveryPolicy.HOLD:
            return limit
        if self.recovery is RecoveryPolicy.BOUND:
            return self.lower_bound
        if self.recovery is RecoveryPolicy.RESET:
            self.estimator.reset()
            return limit
        # RecoveryPolicy.STEP: one IS-like move in the direction of the last
        # improvement (default upward when there is no history yet); the
        # deep-overload case of Figure 8 is handled separately by the
        # collapse guard in _propose.
        direction = 1
        if self._previous_performance is not None and self._previous_limit is not None:
            improved = performance >= self._previous_performance
            moved_up = limit >= self._previous_limit
            direction = 1 if improved == moved_up else -1
        return limit + direction * self.recovery_step

    def reset(self) -> None:
        """Forget the fit, the probe phase and the history."""
        super().reset()
        self.estimator.reset()
        self._probe_sign = 1
        self._previous_performance = None
        self._previous_limit = None
        self._recent_best = 0.0
        self.upward_parabola_events = 0
        self.collapse_events = 0
