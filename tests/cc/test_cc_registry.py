"""Tests for the concurrency control registry and CCSpec resolution."""

import pickle

import pytest

from repro.cc import (
    CCSpec,
    TimestampCertification,
    TwoPhaseLocking,
    cc_kinds,
    register_cc,
    resolve_cc,
)
from repro.sim.engine import Simulator


class TestCCSpec:
    def test_make_sorts_options(self):
        left = CCSpec.make("two_phase_locking", victim_policy="oldest")
        right = CCSpec(kind="two_phase_locking",
                       options=(("victim_policy", "oldest"),))
        assert left == right
        assert hash(left) == hash(right)

    def test_build_constructs_fresh_instances(self):
        sim = Simulator()
        spec = CCSpec.make("timestamp_cert")
        first = spec.build(sim)
        second = spec.build(sim)
        assert isinstance(first, TimestampCertification)
        assert first is not second

    def test_build_passes_options(self):
        sim = Simulator()
        scheme = CCSpec.make("two_phase_locking", victim_policy="oldest").build(sim)
        assert isinstance(scheme, TwoPhaseLocking)
        assert scheme.victim_policy == "oldest"

    def test_unknown_kind_raises_with_listing(self):
        with pytest.raises(KeyError, match="timestamp_cert"):
            CCSpec.make("three_phase_locking").build(Simulator())

    def test_specs_pickle_roundtrip(self):
        spec = CCSpec.make("two_phase_locking", victim_policy="fewest_locks")
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestRegistry:
    def test_builtin_kinds_present(self):
        kinds = cc_kinds()
        assert "timestamp_cert" in kinds
        assert "two_phase_locking" in kinds

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_cc("timestamp_cert")(lambda sim: TimestampCertification(sim))


class TestResolveCC:
    def test_none_means_system_default(self):
        assert resolve_cc(None, Simulator()) is None

    def test_spec_resolves_via_registry(self):
        scheme = resolve_cc(CCSpec.make("two_phase_locking"), Simulator())
        assert isinstance(scheme, TwoPhaseLocking)

    def test_callable_factory_supported(self):
        sim = Simulator()
        scheme = resolve_cc(TimestampCertification, sim)
        assert isinstance(scheme, TimestampCertification)
        assert scheme.sim is sim

    def test_ready_instances_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError, match="built fresh"):
            resolve_cc(TimestampCertification(sim), sim)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError, match="CCSpec"):
            resolve_cc("timestamp_cert", Simulator())


class TestRunSpecCCValidation:
    def test_runspec_rejects_non_spec_cc(self):
        from repro.experiments.config import (
            ExperimentScale,
            default_system_params,
        )
        from repro.runner.specs import RunSpec

        with pytest.raises(TypeError, match="cc must be"):
            RunSpec(kind="stationary", cell_id="x",
                    params=default_system_params(),
                    scale=ExperimentScale.smoke(),
                    cc="timestamp_cert")
