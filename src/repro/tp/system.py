"""The closed transaction processing system (Section 7, Figure 11).

The physical model is a closed queueing network in which ``N`` statistically
identical transactions circulate:

* a set of ``N`` terminals where transactions are started after an
  exponentially distributed think time;
* an admission gate (the load-control "gate" of Figure 5) in front of the
  processing system;
* a homogeneous multiprocessor (``m`` CPUs) serving one shared FCFS queue;
* a disk subsystem with constant service times and no contention (a pure
  delay);
* the concurrency control scheme, by default optimistic timestamp
  certification.

The execution of a transaction consists of ``k + 2`` phases: an
initialization phase, ``k`` phases with gradually increasing data set size
(one granule accessed per phase, each phase using the CPU and then the
disk), and a final phase for commit processing.  When certification fails
the transaction is aborted and restarted from scratch (its reads and writes
are repeated), which is precisely the mechanism by which data contention is
converted into resource contention and, beyond the optimal concurrency
level, into thrashing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.cc.base import AbortReason, ConcurrencyControl, TransactionAborted
from repro.cc.timestamp_cert import TimestampCertification
from repro.core.admission import AdmissionGate, AdmissionShed
from repro.core.controller import LoadController
from repro.core.displacement import DisplacementPolicy
from repro.core.measurement import MeasurementProcess
from repro.core.outer_loop import MeasurementIntervalTuner
from repro.sim import trace as sim_trace
from repro.sim.engine import Interrupt, Process, Simulator
from repro.sim.random_streams import RandomStreams
from repro.sim.resources import Resource
from repro.tp.arrivals import SESSION_THINK_STREAM, ArrivalProcess, ClosedArrivals
from repro.tp.metrics import RunMetrics
from repro.tp.params import SystemParams
from repro.tp.transaction import Transaction
from repro.tp.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.obs.probes import ProbeSet


#: outcome values returned by a transaction lifecycle process
COMMITTED = "committed"
DISPLACED = "displaced"


class TransactionSystem:
    """The complete closed model: terminals, gate, CPUs, disks, CC scheme."""

    def __init__(self,
                 params: SystemParams,
                 sim: Optional[Simulator] = None,
                 streams: Optional[RandomStreams] = None,
                 workload: Optional[Workload] = None,
                 cc: Optional[ConcurrencyControl] = None,
                 gate: Optional[AdmissionGate] = None,
                 displacement: Optional[DisplacementPolicy] = None,
                 resubmit_displaced: bool = True,
                 probes: Optional["ProbeSet"] = None,
                 arrivals: Optional[ArrivalProcess] = None):
        self.params = params
        #: how transactions enter the system: None/ClosedArrivals = the
        #: paper's N-terminal closed model, otherwise an open or partly-open
        #: source (see repro.tp.arrivals) replaces the terminal processes
        self.arrivals = arrivals
        self.sim = sim or Simulator()
        self.streams = streams or RandomStreams(params.seed)
        self.workload = workload or Workload.constant(params.workload, self.streams)
        self.cc = cc or TimestampCertification(self.sim)
        self.gate = gate or AdmissionGate(self.sim)
        self.displacement = displacement
        self.resubmit_displaced = resubmit_displaced
        self.metrics = RunMetrics(self.sim)
        self.cpus = Resource(self.sim, params.n_cpus, name="cpu")
        #: txn_id -> (transaction, lifecycle process) for admitted transactions
        self._active: Dict[int, Tuple[Transaction, Process]] = {}
        self._terminal_processes: List[Process] = []
        self._started = False
        self.measurement: Optional[MeasurementProcess] = None
        #: trajectory tracer in effect when the system was built (usually None;
        #: the golden harness installs one via repro.sim.trace.tracing)
        self._tracer = sim_trace.active_tracer()
        #: in-sim probe set (usually None; the runner builds one from
        #: RunSpec.probes) — same zero-cost slot pattern as the tracer
        self._probes = probes
        if probes is not None:
            probes.bind(self)
        # lazily bound per-name RNG generators: the think/cpu/restart draws
        # are per-phase hot-path calls, so the stream-registry lookup is paid
        # once per run instead of once per draw (draw order is unchanged)
        self._think_rng = None
        self._cpu_rng = None
        self._restart_rng = None

    # ------------------------------------------------------------------
    # wiring and execution
    # ------------------------------------------------------------------
    def attach_controller(self,
                          controller: LoadController,
                          interval: float = 5.0,
                          warmup: float = 0.0,
                          interval_tuner: Optional[MeasurementIntervalTuner] = None) -> MeasurementProcess:
        """Close the feedback loop of Figure 5 around this system.

        Returns the measurement process so callers can inspect its control
        trace after the run.  Must be called before :meth:`start`.
        """
        if self._started:
            raise RuntimeError("attach_controller must be called before start()")
        self.measurement = MeasurementProcess(
            sim=self.sim,
            gate=self.gate,
            metrics=self.metrics,
            controller=controller,
            interval=interval,
            warmup=warmup,
            displace=self.displace_to if self.displacement is not None else None,
            interval_tuner=interval_tuner,
            mean_accesses_provider=lambda now: float(
                self.workload.params_at(now).accesses_per_txn
            ),
        )
        return self.measurement

    def start(self) -> None:
        """Create the source processes (and the measurement loop, if any).

        Closed arrivals (``arrivals=None`` or :class:`ClosedArrivals`) run
        the paper's ``N`` terminal processes; open and partly-open arrivals
        run a single source process instead.
        """
        if self._started:
            raise RuntimeError("the system has already been started")
        self._started = True
        if self.measurement is not None:
            self.measurement.start()
        if self._probes is not None and self._probes.wants_sampling:
            # the sampler draws no RNG and mutates no model state, so its
            # extra heap events leave the model trajectory untouched
            self.sim.process(self._probes.sampler(), name="probe-sampler")
        if self.arrivals is None or isinstance(self.arrivals, ClosedArrivals):
            for terminal_id in range(self.params.n_terminals):
                process = self.sim.process(
                    self._terminal(terminal_id), name=f"terminal-{terminal_id}"
                )
                self._terminal_processes.append(process)
        else:
            self.sim.process(self._arrival_source(), name="arrival-source")

    def run(self, until: float) -> float:
        """Start (if necessary) and run the simulation until ``until``."""
        if not self._started:
            self.start()
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # displacement support (invoked by the measurement process)
    # ------------------------------------------------------------------
    def active_transactions(self) -> List[Transaction]:
        """Transactions currently admitted to the processing system."""
        return [txn for txn, _process in self._active.values()]

    def displace_to(self, new_limit: float) -> int:
        """Abort enough active transactions to honour ``new_limit`` now."""
        if self.displacement is None:
            return 0
        victims = self.displacement.select_victims(self.active_transactions(), new_limit)
        displaced = 0
        for victim in victims:
            entry = self._active.get(victim.txn_id)
            if entry is None:
                continue
            _txn, process = entry
            if process.is_alive:
                process.interrupt(TransactionAborted(AbortReason.DISPLACEMENT, "displaced"))
                displaced += 1
        return displaced

    # ------------------------------------------------------------------
    # model processes
    # ------------------------------------------------------------------
    def _terminal(self, terminal_id: int) -> Generator:
        """One terminal: think, submit, wait for admission, run, repeat."""
        params = self.params
        think_mean = params.think_time
        while True:
            if think_mean > 0:
                rng = self._think_rng
                if rng is None:
                    rng = self._think_rng = self.streams.stream("think-time")
                think = float(rng.exponential(think_mean))
                if think > 0:
                    yield self.sim.timeout(think)
            txn = self.workload.next_transaction(self.sim.now, terminal_id)
            self.metrics.record_submission()
            if self._tracer is not None:
                self._tracer.record(self.sim.now, sim_trace.SUBMIT, txn.txn_id)
            yield from self._submit_and_process(txn)

    def _arrival_source(self) -> Generator:
        """Open/partly-open source: spawn a session at every arrival instant.

        Sessions run as independent processes (an open source never waits
        for earlier work), so a congested system keeps receiving arrivals —
        the load shape that makes shedding, rather than queueing, the only
        defence against sustained overload.
        """
        arrivals = self.arrivals
        streams = self.streams
        session_id = 0
        while True:
            gap = arrivals.next_interarrival(streams, self.sim.now)
            if gap > 0:
                yield self.sim.timeout(gap)
            size = arrivals.session_size(streams)
            self.sim.process(
                self._session(session_id, size), name=f"session-{session_id}"
            )
            session_id += 1

    def _session(self, session_id: int, size: int) -> Generator:
        """One arriving session: submit ``size`` transactions, then leave."""
        think_mean = self.arrivals.session_think_time
        for index in range(size):
            if index and think_mean > 0:
                think = float(self.streams.exponential(SESSION_THINK_STREAM, think_mean))
                if think > 0:
                    yield self.sim.timeout(think)
            txn = self.workload.next_transaction(self.sim.now, session_id)
            self.metrics.record_submission()
            if self._tracer is not None:
                self._tracer.record(self.sim.now, sim_trace.SUBMIT, txn.txn_id)
            yield from self._submit_and_process(txn)

    def _submit_and_process(self, txn: Transaction) -> Generator:
        """Submit ``txn`` to the gate and run it until commit (or final abort).

        A submission shed by a tenant queue quota ends here: the failed
        admission event raises :class:`AdmissionShed` at the ``yield``, the
        shed is booked, and the transaction never enters the system (so no
        ``depart`` either).
        """
        while True:
            # per-attempt enqueue timestamp: a displaced-then-resubmitted
            # transaction re-enters the queue *now*, so its waiting-time
            # statistic must not include the previous attempt's in-system
            # residence (response time keeps the original submitted_at)
            enqueued_at = self.sim.now
            try:
                yield self.gate.submit(txn)
            except AdmissionShed:
                self.metrics.record_shed(txn.tenant)
                self.metrics.record_admission_queue(self.gate.queue_length)
                if self._tracer is not None:
                    self._tracer.record(self.sim.now, sim_trace.SHED, txn.txn_id,
                                        txn.tenant)
                return
            self.metrics.record_admission(self.sim.now - enqueued_at)
            self.metrics.record_concurrency(self.gate.current_load)
            self.metrics.record_admission_queue(self.gate.queue_length)
            if self._tracer is not None:
                self._tracer.record(self.sim.now, sim_trace.ADMIT, txn.txn_id)

            lifecycle = self.sim.process(
                self._transaction_lifecycle(txn), name=f"txn-{txn.txn_id}"
            )
            self._active[txn.txn_id] = (txn, lifecycle)
            outcome = yield lifecycle
            self._active.pop(txn.txn_id, None)
            self.gate.depart(txn)
            self.metrics.record_concurrency(self.gate.current_load)
            if self._tracer is not None:
                self._tracer.record(self.sim.now, sim_trace.DEPART, txn.txn_id, outcome)

            if outcome == COMMITTED:
                return
            if outcome == DISPLACED and self.resubmit_displaced:
                # the transaction keeps its original submission time so the
                # displacement penalty shows up in its response time
                continue
            return

    def _transaction_lifecycle(self, txn: Transaction) -> Generator:
        """Run one admitted transaction to commit, restarting as needed."""
        params = self.params
        sim = self.sim
        cpus = self.cpus
        cc_access = self.cc.access
        cpu_access = params.cpu_per_access
        disk_access = params.disk_per_access
        probes = self._probes
        while True:
            txn.start_execution(sim.now)
            self.cc.begin(txn)
            try:
                # initialization phase
                yield from self._phase(params.cpu_init, disk_access)
                # k access phases with gradually increasing data set size;
                # the phase body is inlined (see _phase) -- this loop runs
                # k times per execution and dominates the transaction path
                for item, is_write in zip(txn.items, txn.write_flags):
                    grant = cc_access(txn, item, is_write)
                    if grant is not None:
                        if probes is None:
                            yield grant
                        else:
                            waited_from = sim.now
                            yield grant
                            probes.observe_lock_wait(sim.now - waited_from)
                    if cpu_access > 0:
                        request = cpus.request()
                        try:
                            yield request
                            demand = self._cpu_demand(cpu_access)
                            if demand > 0:
                                yield sim.timeout(demand)
                        finally:
                            request.cancel()
                    if disk_access > 0:
                        yield sim.timeout(disk_access)
                # commit processing phase
                yield from self._phase(params.cpu_commit, params.disk_commit)

                if self.cc.try_commit(txn):
                    self.cc.finish(txn)
                    txn.committed_at = self.sim.now
                    self.metrics.record_commit(
                        txn.committed_at - txn.submitted_at, txn.last_conflicts,
                        tenant=txn.tenant,
                    )
                    if probes is not None:
                        probes.observe_commit_residence(
                            txn.committed_at - txn.execution_started_at)
                    if self._tracer is not None:
                        self._tracer.record(self.sim.now, sim_trace.COMMIT, txn.txn_id)
                    return COMMITTED

                # certification failed: abort this execution and restart
                self.cc.abort(txn, AbortReason.CERTIFICATION)
                self.metrics.record_abort(AbortReason.CERTIFICATION, txn.last_conflicts)
                if self._tracer is not None:
                    self._tracer.record(self.sim.now, sim_trace.ABORT, txn.txn_id,
                                        AbortReason.CERTIFICATION.name)
                txn.record_restart()
                yield from self._restart_delay()

            except TransactionAborted as aborted:
                # blocking CC made this transaction a deadlock victim
                self.cc.abort(txn, aborted.reason)
                self.metrics.record_abort(aborted.reason)
                if self._tracer is not None:
                    self._tracer.record(self.sim.now, sim_trace.ABORT, txn.txn_id,
                                        aborted.reason.name)
                txn.record_restart()
                yield from self._restart_delay()

            except Interrupt as interrupt:
                # displacement by the load controller
                reason = AbortReason.DISPLACEMENT
                cause = interrupt.cause
                if isinstance(cause, TransactionAborted):
                    reason = cause.reason
                self.cc.abort(txn, reason)
                self.metrics.record_abort(reason)
                if self._tracer is not None:
                    self._tracer.record(self.sim.now, sim_trace.ABORT, txn.txn_id,
                                        reason.name)
                txn.record_restart()
                return DISPLACED

    def _phase(self, cpu_mean: float, disk_time: float) -> Generator:
        """One execution phase: CPU burst at the multiprocessor, then disk I/O."""
        if cpu_mean > 0:
            request = self.cpus.request()
            try:
                yield request
                demand = self._cpu_demand(cpu_mean)
                if demand > 0:
                    yield self.sim.timeout(demand)
            finally:
                request.cancel()
        if disk_time > 0:
            yield self.sim.timeout(disk_time)

    def _cpu_demand(self, mean: float) -> float:
        if self.params.stochastic_cpu:
            rng = self._cpu_rng
            if rng is None:
                rng = self._cpu_rng = self.streams.stream("cpu-demand")
            return float(rng.exponential(mean))
        return mean

    def _restart_delay(self) -> Generator:
        delay_mean = self.params.restart_delay
        if delay_mean > 0:
            rng = self._restart_rng
            if rng is None:
                rng = self._restart_rng = self.streams.stream("restart-delay")
            yield self.sim.timeout(float(rng.exponential(delay_mean)))

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Key run-level quantities for quick inspection and reports."""
        return {
            "time": self.sim.now,
            "commits": float(self.metrics.commits),
            "throughput": self.metrics.throughput(),
            "mean_response_time": self.metrics.mean_response_time(),
            "mean_concurrency": self.gate.mean_load(),
            "restart_ratio": self.metrics.restart_ratio,
            "conflict_ratio": self.metrics.conflict_ratio,
            "cpu_utilisation": self.cpus.utilisation(),
            "current_limit": self.gate.limit,
            "schedule_clamped": float(self.workload.schedule_clamped),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TransactionSystem N={self.params.n_terminals} cpus={self.params.n_cpus} "
            f"cc={self.cc.name} t={self.sim.now:.1f}>"
        )
