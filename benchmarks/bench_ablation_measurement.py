"""Ablation (Section 5.2 / Figure 6): measurement interval vs. aging.

The paper argues that for the PA estimator it is "better to choose a small
Δt and a large a instead of a large Δt and small a": both give the estimator
the same amount of information, but the short-interval/strong-aging variant
reacts faster to genuine changes.

The ablation compares the two memory shapes on the synthetic plant with a
jumping optimum, holding the information content roughly constant:

* long intervals, no aging  (Δt = 5 units, a = 0)  --> one update per 5 steps
  with the unweighted mean of the 5 performance samples;
* short intervals, strong aging (Δt = 1 unit, a = 0.8).

The short-interval variant must settle on the new optimum faster.
"""

from conftest import run_once

from repro.analytic.synthetic import DynamicOptimumScenario, SyntheticSystem
from repro.core.parabola import ParabolaController
from repro.core.types import IntervalMeasurement
from repro.experiments.report import format_table
from repro.tp.workload import ConstantSchedule, JumpSchedule


def _run_aggregated(steps, aggregate, forgetting, seed, jump_step):
    """Drive PA with measurements aggregated over ``aggregate`` plant steps."""
    scenario = DynamicOptimumScenario(
        position=JumpSchedule(60.0, 160.0, jump_time=float(jump_step)),
        height=ConstantSchedule(100.0))
    controller = ParabolaController(initial_limit=40, forgetting=forgetting,
                                    probe_amplitude=4.0, max_move=40.0,
                                    lower_bound=2, upper_bound=400)
    plant = SyntheticSystem(scenario, controller, interval=1.0, noise_std=2.0, seed=seed)
    # run the plant manually so several steps can be folded into one update
    errors = []
    pending = []
    for step in range(steps):
        plant.time += plant.interval
        function = plant.scenario.function_at(plant.time)
        load = plant.realized_load(controller.current_limit)
        performance = max(0.0, function.value(load) + float(plant.rng.normal(0, plant.noise_std)))
        pending.append((load, performance))
        if len(pending) == aggregate:
            mean_load = sum(l for l, _ in pending) / aggregate
            mean_perf = sum(p for _, p in pending) / aggregate
            measurement = IntervalMeasurement(
                time=plant.time, interval_length=float(aggregate), throughput=mean_perf,
                mean_concurrency=mean_load, concurrency_at_sample=mean_load,
                current_limit=controller.current_limit, commits=int(mean_perf * aggregate))
            controller.update(measurement)
            pending = []
        if step > jump_step:
            errors.append(abs(controller.current_limit - plant.scenario.optimum_at(plant.time)))
    # mean error over the post-jump half and the time to get within 20%
    settle = next((index for index, error in enumerate(errors) if error < 0.2 * 160.0), None)
    mean_error = sum(errors) / len(errors) if errors else float("inf")
    return mean_error, (settle if settle is not None else len(errors))


def test_ablation_interval_vs_aging(benchmark, scale):
    steps = max(scale.synthetic_steps, 200)
    jump_step = steps // 2

    def experiment():
        rows = {}
        # long interval, no aging: aggregate 5 plant steps, forgetting = 1.0
        rows["long interval, a=0"] = _run_aggregated(steps, aggregate=5, forgetting=1.0,
                                                     seed=41, jump_step=jump_step)
        # short interval, strong aging: every step, forgetting = 0.8
        rows["short interval, a=0.8"] = _run_aggregated(steps, aggregate=1, forgetting=0.8,
                                                        seed=41, jump_step=jump_step)
        return rows

    rows = run_once(benchmark, experiment)

    print()
    print("Ablation — estimator memory shape (Figure 6 discussion)")
    print(format_table(["variant", "mean |error| after jump", "steps to reach 20% band"],
                       [[name, error, settle] for name, (error, settle) in rows.items()]))

    for name, (error, settle) in rows.items():
        benchmark.extra_info[f"{name} mean_error"] = round(error, 2)
        benchmark.extra_info[f"{name} settle_steps"] = settle

    short = rows["short interval, a=0.8"]
    long = rows["long interval, a=0"]
    # the paper's recommendation: the short-interval / strong-aging variant
    # recovers from the jump at least as fast as the long-interval variant
    assert short[1] <= long[1]
