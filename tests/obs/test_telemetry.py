"""Structured run telemetry: spans, sinks, and executor integration."""

import json
import os

import pytest

from repro.experiments.config import ExperimentScale
from repro.obs.telemetry import (
    TELEMETRY_ENV,
    TelemetrySink,
    active_sink,
    emit,
    install_sink,
    set_worker_name,
    telemetry_to,
    worker_name,
)
from repro.runner.api import run_sweep


def read_jsonl(path):
    with open(path, encoding="utf-8") as stream:
        return [json.loads(line) for line in stream if line.strip()]


@pytest.fixture(autouse=True)
def isolated_telemetry(monkeypatch):
    """Keep sink and name state from leaking between tests."""
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    install_sink(None)
    set_worker_name(None)
    yield
    install_sink(None)
    set_worker_name(None)


class TestSinkPlumbing:
    def test_emit_without_a_sink_is_a_no_op(self, tmp_path):
        assert active_sink() is None
        emit("sweep", cells=3)  # must not raise or create files
        assert list(tmp_path.iterdir()) == []

    def test_telemetry_to_routes_spans_to_the_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with telemetry_to(str(path)):
            assert os.environ[TELEMETRY_ENV] == str(path)
            emit("sweep", cells=2, duration=0.5)
        assert active_sink() is None
        [record] = read_jsonl(path)
        assert record["span"] == "sweep"
        assert record["cells"] == 2

    def test_env_var_alone_activates_a_sink(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV, str(path))
        sink = active_sink()
        assert isinstance(sink, TelemetrySink)
        assert sink is active_sink()  # cached per path
        emit("probe")
        sink.close()
        assert [r["span"] for r in read_jsonl(path)] == ["probe"]

    def test_lines_are_canonical_json(self, tmp_path):
        path = tmp_path / "canon.jsonl"
        with telemetry_to(str(path)):
            emit("sweep", zeta=1, alpha=2)
        [line] = path.read_text().splitlines()
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))


class TestWorkerAttribution:
    def test_default_name_is_hostname_pid(self):
        assert worker_name().endswith(f"-{os.getpid()}")

    def test_set_worker_name_overrides_and_restores(self):
        set_worker_name("cli-worker")
        assert worker_name() == "cli-worker"
        set_worker_name(None)
        assert worker_name().endswith(f"-{os.getpid()}")

    def test_every_span_carries_worker_and_timestamp(self, tmp_path):
        path = tmp_path / "attr.jsonl"
        set_worker_name("attributed")
        with telemetry_to(str(path)):
            emit("cell_execute", cell_id="a", duration=0.1)
        [record] = read_jsonl(path)
        assert record["worker"] == "attributed"
        assert isinstance(record["ts"], float)


#: the stable schema of executor spans, with volatile values normalised out
CELL_EXECUTE_KEYS = {"span", "worker", "ts", "cell_id", "replicate", "kind",
                     "duration"}
SWEEP_KEYS = {"span", "worker", "ts", "executor", "workers", "cells",
              "duration"}


class TestExecutorSpans:
    def _run(self, tmp_path, workers):
        path = tmp_path / "run.jsonl"
        with telemetry_to(str(path)):
            result = run_sweep("thrashing", scale=ExperimentScale.smoke(),
                               workers=workers)
        return result, read_jsonl(path)

    def test_serial_sweep_emits_one_span_per_cell_plus_a_sweep_span(self, tmp_path):
        result, records = self._run(tmp_path, workers=0)
        cells = [r for r in records if r["span"] == "cell_execute"]
        [sweep] = [r for r in records if r["span"] == "sweep"]
        assert len(cells) == len(result.results)
        assert sweep["executor"] == "serial"
        assert sweep["cells"] == len(result.results)
        for record in cells:
            assert set(record) == CELL_EXECUTE_KEYS
            assert record["kind"] == "stationary"
        assert set(sweep) == SWEEP_KEYS
        assert sorted(r["cell_id"] for r in cells) == sorted(
            cell.cell_id for cell in result.results)

    def test_workers2_spans_reach_the_same_file_via_the_environment(self, tmp_path):
        result, records = self._run(tmp_path, workers=2)
        cells = [r for r in records if r["span"] == "cell_execute"]
        [sweep] = [r for r in records if r["span"] == "sweep"]
        assert sweep["executor"] == "parallel"
        assert sweep["workers"] == 2
        assert len(cells) == len(result.results)
        for record in cells:
            assert set(record) == CELL_EXECUTE_KEYS
        # the child processes attribute their own spans
        assert all(record["worker"] for record in cells)

    def test_untelemetered_runs_write_nothing(self, tmp_path):
        run_sweep("thrashing", scale=ExperimentScale.smoke(), workers=0)
        assert list(tmp_path.iterdir()) == []


class TestTelemetryDoesNotPerturb:
    def test_telemetered_metrics_equal_untelemetered_metrics(self, tmp_path):
        plain = run_sweep("thrashing", scale=ExperimentScale.smoke(), workers=0)
        with telemetry_to(str(tmp_path / "t.jsonl")):
            telemetered = run_sweep("thrashing", scale=ExperimentScale.smoke(),
                                    workers=0)
        assert [dict(c.metrics) for c in plain.results] \
            == [dict(c.metrics) for c in telemetered.results]


class TestDistSpans:
    def test_dist_cluster_emits_coordinator_and_worker_spans(self, tmp_path):
        from repro.dist.cluster import launch_local_cluster
        from repro.runner.registry import build_sweep

        path = tmp_path / "dist.jsonl"
        spec = build_sweep("thrashing", scale=ExperimentScale.smoke())
        with telemetry_to(str(path)):
            with launch_local_cluster(workers=2) as cluster:
                result = run_sweep(spec, executor=cluster)
        records = read_jsonl(path)
        spans = {record["span"] for record in records}
        assert {"worker_join", "dispatch", "cell_result",
                "cell_execute"} <= spans
        dispatches = [r for r in records if r["span"] == "dispatch"]
        assert len(dispatches) == len(result.results)
        for record in dispatches:
            assert record["queue_wait"] >= 0.0
            assert record["peer"]
        cell_results = [r for r in records if r["span"] == "cell_result"]
        assert len(cell_results) == len(result.results)
        executes = [r for r in records if r["span"] == "cell_execute"]
        assert len(executes) == len(result.results)
        # the remote workers wrote their own spans into the shared file
        assert {r["worker"] for r in executes} \
            == {r["peer"] for r in dispatches}
