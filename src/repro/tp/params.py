"""Parameter records for the transaction processing model.

Two dataclasses configure a run:

* :class:`SystemParams` -- the *physical* model: number of terminals, think
  time, multiprocessor size, CPU demands per phase, constant disk service
  time, restart handling.
* :class:`WorkloadParams` -- the *logical* model: database size, accesses
  per transaction ``k``, query fraction and write-access fraction.

The defaults are chosen so that, like the configurations derived from the
customer traces of Yu et al. (1987) that the paper reports using, the system
saturates its processors at a moderate multiprogramming level and enters
data-contention thrashing well inside the studied load range (offered loads
of 100-800 terminals).  The absolute values are not the paper's (those were
never published); what matters for the reproduction is the *shape* of the
load/throughput function: linear under light load, saturating, then
decreasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class WorkloadParams:
    """Logical (data access) characteristics of the workload."""

    #: number of granules in the database (``D`` in the paper)
    db_size: int = 4000
    #: number of granules accessed per transaction (``k`` in the paper)
    accesses_per_txn: int = 8
    #: fraction of transactions that are read-only queries
    query_fraction: float = 0.25
    #: probability that an access of an *updater* is a write
    write_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.db_size < 1:
            raise ValueError(f"db_size must be >= 1, got {self.db_size}")
        if not 1 <= self.accesses_per_txn <= self.db_size:
            raise ValueError(
                "accesses_per_txn must be between 1 and db_size, got "
                f"{self.accesses_per_txn} (db_size={self.db_size})"
            )
        if not 0.0 <= self.query_fraction <= 1.0:
            raise ValueError(f"query_fraction must be in [0, 1], got {self.query_fraction}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(f"write_fraction must be in [0, 1], got {self.write_fraction}")

    def with_changes(self, **changes) -> "WorkloadParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SystemParams:
    """Physical configuration of the closed transaction processing system."""

    #: number of terminals = number of circulating transactions (``N``)
    n_terminals: int = 200
    #: mean think time at the terminal between transactions (seconds)
    think_time: float = 1.0
    #: number of processors serving the shared CPU queue
    n_cpus: int = 4
    #: mean CPU demand of the initialization phase (seconds)
    cpu_init: float = 0.005
    #: mean CPU demand of each of the k access phases (seconds)
    cpu_per_access: float = 0.005
    #: mean CPU demand of the commit phase (seconds)
    cpu_commit: float = 0.005
    #: constant disk service time per access phase (seconds, no contention)
    disk_per_access: float = 0.02
    #: constant disk service time for the commit (log write, seconds)
    disk_commit: float = 0.02
    #: mean delay before a restarted execution begins (seconds)
    restart_delay: float = 0.01
    #: whether CPU demands are exponentially distributed (True) or constant
    stochastic_cpu: bool = True
    #: root seed for all random streams of the run
    seed: int = 1
    #: logical workload parameters
    workload: WorkloadParams = field(default_factory=WorkloadParams)

    def __post_init__(self) -> None:
        if self.n_terminals < 1:
            raise ValueError(f"n_terminals must be >= 1, got {self.n_terminals}")
        if self.n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {self.n_cpus}")
        for name in ("think_time", "cpu_init", "cpu_per_access", "cpu_commit",
                     "disk_per_access", "disk_commit", "restart_delay"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    def with_changes(self, **changes) -> "SystemParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # derived quantities used by the analytic models and for sanity checks
    # ------------------------------------------------------------------
    @property
    def cpu_demand_per_execution(self) -> float:
        """Total mean CPU seconds one execution consumes (no restarts)."""
        k = self.workload.accesses_per_txn
        return self.cpu_init + k * self.cpu_per_access + self.cpu_commit

    @property
    def disk_demand_per_execution(self) -> float:
        """Total disk seconds one execution spends (constant, uncontended)."""
        k = self.workload.accesses_per_txn
        return k * self.disk_per_access + self.disk_commit

    @property
    def max_cpu_throughput(self) -> float:
        """Upper bound on commit rate imposed by CPU capacity alone."""
        demand = self.cpu_demand_per_execution
        if demand == 0:
            return float("inf")
        return self.n_cpus / demand

    def saturation_mpl(self) -> float:
        """Multiprogramming level at which the CPUs saturate (rough estimate).

        Below this level the system is in phase I of figure 1 (underload):
        each transaction's residence time is approximately its uncontended
        service time, so the number of transactions needed to keep all
        processors busy is ``n_cpus * (total residence / CPU demand)``.
        """
        demand = self.cpu_demand_per_execution
        if demand == 0:
            return float("inf")
        residence = demand + self.disk_demand_per_execution
        return self.n_cpus * residence / demand
