"""Parallel experiment orchestration.

The paper's evaluation is a grid of independent simulation cells — offered
load × controller × scenario × replicate.  This package turns that grid
into data (:mod:`~repro.runner.specs`), executes it serially or over
``multiprocessing`` workers with deterministic, common-random-numbers seed
discipline (:mod:`~repro.runner.executor`, :mod:`~repro.runner.cells`),
folds replicated runs into mean ± confidence-interval summaries
(:mod:`~repro.runner.replication`), and names the paper's experiments so a
whole figure is one call (:mod:`~repro.runner.registry`,
:func:`~repro.runner.api.run_sweep`).

The two invariants everything here is built around:

* **determinism** — a cell's results depend only on its spec (parameters,
  seed, replicate index), never on which worker ran it, how many workers
  there are, or in which order cells finish;
* **independence** — replicate streams are derived per (seed, replicate,
  stream name), so replicates are statistically independent while the
  common-random-numbers structure across controllers is preserved.
"""

from repro.cc.registry import CCSpec, cc_kinds, register_cc
from repro.runner.api import (
    SweepResult,
    run_sweep,
    stationary_sweeps,
    tracking_results,
)
from repro.runner.cells import CellResult, execute_run_spec, replicate_streams
from repro.runner.errors import (
    CellErrorContext,
    CellExecutionError,
    describe_item,
    run_with_cell_context,
)
from repro.runner.executor import ParallelExecutor, SerialExecutor, make_executor
from repro.runner.registry import (
    ScenarioDefinition,
    available_scenarios,
    build_sweep,
    get_scenario,
    register_scenario,
)
from repro.runner.replication import (
    CellAggregate,
    MetricAggregate,
    aggregate_cells,
    aggregate_values,
    t_critical,
)
from repro.runner.specs import (
    KIND_STATIONARY,
    KIND_TRACKING,
    ControllerSpec,
    RunSpec,
    SweepSpec,
    controller_kinds,
    register_controller,
)

__all__ = [
    "SweepResult",
    "run_sweep",
    "stationary_sweeps",
    "tracking_results",
    "CellResult",
    "execute_run_spec",
    "replicate_streams",
    "CellErrorContext",
    "CellExecutionError",
    "describe_item",
    "run_with_cell_context",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "ScenarioDefinition",
    "available_scenarios",
    "build_sweep",
    "get_scenario",
    "register_scenario",
    "CellAggregate",
    "MetricAggregate",
    "aggregate_cells",
    "aggregate_values",
    "t_critical",
    "KIND_STATIONARY",
    "KIND_TRACKING",
    "ControllerSpec",
    "CCSpec",
    "RunSpec",
    "SweepSpec",
    "cc_kinds",
    "controller_kinds",
    "register_cc",
    "register_controller",
]
